//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --bin repro              # everything
//! cargo run -p bench --bin repro -- --table1  # one experiment
//! ```

use bench::report::print_table;
use bench::*;

fn want(args: &[String], flag: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == flag)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("server-photonics reproduction of \"A case for server-scale photonic connectivity\" (HotNets '24)");

    if want(&args, "--fig3a") {
        let r = run_fig3a();
        print_table(
            "Fig 3a: MZI switch time response",
            &["metric", "value"],
            &[
                vec![
                    "fitted tau".into(),
                    format!("{:.3} us", r.fitted_tau_s * 1e6),
                ],
                vec![
                    "99% settle (reconfiguration)".into(),
                    format!("{:.2} us", r.t99_s * 1e6),
                ],
                vec!["paper".into(), "3.7 us".into()],
            ],
        );
        println!("  amplitude trace (10 samples of {}):", r.trace.len());
        for (t, v) in r.trace.downsample(10).points() {
            println!("    t={:7.3}us  amplitude={v:.4}", t * 1e6);
        }
    }

    if want(&args, "--fig3b") {
        let r = run_fig3b(100_000);
        print_table(
            "Fig 3b: reticle stitch loss distribution (100k stitches)",
            &["metric", "value"],
            &[
                vec!["mean".into(), format!("{:.3} dB", r.mean_db)],
                vec!["p95".into(), format!("{:.3} dB", r.p95_db)],
                vec!["paper crossing loss".into(), "0.25 dB".into()],
            ],
        );
        println!("{}", r.histogram.ascii(48));
    }

    if want(&args, "--table1") {
        let n = 8e9;
        let rows = run_table1(n);
        print_table(
            "Table 1: ReduceScatter cost, Slice-1 (4x2x1, p=8), N = 8 GB",
            &[
                "interconnect",
                "alpha",
                "r",
                "beta bytes",
                "beta vs optimal",
                "measured",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.label.into(),
                        format!("{}a", r.alpha_steps),
                        format!("{}", r.reconfigs),
                        format!("{:.3e}", r.beta_bytes),
                        format!("{:.2}x", r.beta_bytes / (n - n / 8.0)),
                        format!("{}", r.measured),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!("  paper: electrical (N-N/p)(3b), optics (N-N/p)(b); 7a vs 7a+r");
    }

    if want(&args, "--table2") {
        let n = 16e9;
        let rows = run_table2(n);
        let bound = (n - n / 4.0) + (n / 4.0 - n / 16.0);
        print_table(
            "Table 2: ReduceScatter cost, Slice-3 (4x4x1, D=2), N = 16 GB",
            &[
                "interconnect",
                "alpha",
                "r",
                "beta bytes",
                "beta vs optimal",
                "measured",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.label.into(),
                        format!("{}a", r.alpha_steps),
                        format!("{}", r.reconfigs),
                        format!("{:.3e}", r.beta_bytes),
                        format!("{:.2}x", r.beta_bytes / bound),
                        format!("{}", r.measured),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!("  paper: electrical pays 1.5x the optics beta (3b vs 2b per stage)");
    }

    if want(&args, "--fig5c") {
        let rows = run_fig5c();
        print_table(
            "Fig 5c: bandwidth utilization per slice (Fig 5b packing)",
            &["slice", "shape", "electrical", "optical"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        r.shape.to_string(),
                        format!("{:.0}%", r.electrical * 100.0),
                        format!("{:.0}%", r.optical * 100.0),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!("  paper: sub-rack slices lose up to 66% electrically; optics reaches 100%");
        for r in &rows {
            let e = (r.electrical * 24.0).round() as usize;
            let elec = format!("[{}{}]", "#".repeat(e), " ".repeat(24 - e));
            let opt = format!("[{}]", "#".repeat(24));
            println!("  {:<8} elec {elec:<24} opt {opt}", r.name);
        }
    }

    if want(&args, "--fig6a") {
        let r = run_fig6a();
        print_table(
            "Fig 6a: electrical repair, single rack",
            &["metric", "value"],
            &[
                vec!["free chips evaluated".into(), r.candidates.to_string()],
                vec![
                    "congestion-free options".into(),
                    r.clean_options.to_string(),
                ],
                vec![
                    "mean foreign chips per repair".into(),
                    format!("{:.1}", r.mean_foreign),
                ],
                vec!["paper".into(), "impossible without congestion".into()],
            ],
        );
    }

    if want(&args, "--fig6b") {
        let r = run_fig6b();
        print_table(
            "Fig 6b: electrical repair, across racks",
            &["metric", "value"],
            &[
                vec!["free chips evaluated".into(), r.candidates.to_string()],
                vec![
                    "congestion-free options".into(),
                    r.clean_options.to_string(),
                ],
                vec![
                    "mean foreign chips per repair".into(),
                    format!("{:.1}", r.mean_foreign),
                ],
                vec![
                    "paper".into(),
                    "any new traffic will cause congestion".into(),
                ],
            ],
        );
    }

    if want(&args, "--fig6a") {
        let rows = run_interference(&[1e8, 1e9, 8e9]);
        print_table(
            "Fig 6a extension: co-ring slowdown from electrical repair",
            &["repair volume", "electrical slowdown", "optical slowdown"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.0e} B", r.repair_bytes),
                        format!("{:.2}x", r.electrical_slowdown),
                        format!("{:.2}x", r.optical_slowdown),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want(&args, "--fig7") {
        let r = run_fig7();
        print_table(
            "Fig 7: optical circuit repair + blast radius",
            &["metric", "value"],
            &[
                vec!["repair circuits".into(), r.circuits.to_string()],
                vec!["setup latency".into(), format!("{}", r.setup)],
                vec![
                    "blast radius, rack migration".into(),
                    format!("{} chips", r.blast_migration),
                ],
                vec![
                    "blast radius, optical repair".into(),
                    format!("{} chips", r.blast_optical),
                ],
                vec![
                    "reduction".into(),
                    format!("{}x", r.blast_migration / r.blast_optical),
                ],
            ],
        );
    }

    if want(&args, "--capability") {
        let c = run_capability();
        print_table(
            "Section 3 capability summary (validated on a full wafer)",
            &["capability", "model", "paper"],
            &[
                vec![
                    "accelerators per wafer".into(),
                    c.tiles.to_string(),
                    "32".into(),
                ],
                vec![
                    "lasers per tile".into(),
                    c.lambdas_per_tile.to_string(),
                    "16".into(),
                ],
                vec![
                    "rate per wavelength".into(),
                    format!("{} Gbps", c.gbps_per_lambda),
                    "224 Gbps".into(),
                ],
                vec![
                    "waveguides per tile".into(),
                    c.waveguides_per_edge.to_string(),
                    ">10,000".into(),
                ],
                vec![
                    "reconfiguration".into(),
                    format!("{:.1} us", c.reconfig_us),
                    "3.7 us".into(),
                ],
                vec![
                    "crossing loss".into(),
                    format!("{} dB", c.crossing_db),
                    "0.25 dB".into(),
                ],
                vec![
                    "tile egress".into(),
                    format!("{} Gbps", c.tile_egress_gbps),
                    "-".into(),
                ],
                vec![
                    "worst-path margin".into(),
                    format!("{:.1} dB", c.worst_margin_db),
                    "closes".into(),
                ],
            ],
        );
    }

    if want(&args, "--ablations") {
        let sizes: Vec<f64> = (2..=11).map(|i| 10f64.powi(i)).collect();
        let pts = run_crossover(&sizes);
        print_table(
            "Ablation (a): reconfiguration-delay crossover (Slice-1 ring RS)",
            &["buffer", "electrical", "optical", "winner"],
            &pts.iter()
                .map(|p| {
                    vec![
                        format!("{:.0e} B", p.n_bytes),
                        format!("{}", p.electrical),
                        format!("{}", p.optical),
                        if p.optics_wins {
                            "optics"
                        } else {
                            "electrical"
                        }
                        .into(),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let pts = run_controllers(&[1, 4, 16, 64, 256]);
        print_table(
            "Ablation (b): centralized vs decentralized circuit control",
            &["requests", "central mean", "decentralized mean"],
            &pts.iter()
                .map(|p| {
                    vec![
                        p.requests.to_string(),
                        format!("{}", p.central_mean),
                        format!("{}", p.decentral_mean),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let pts = run_fiber_coverage(&[1, 2, 4, 8, 16]);
        print_table(
            "Ablation (c): fibers per bundle vs repairs covered",
            &["fibers/bundle", "repairs covered"],
            &pts.iter()
                .map(|p| {
                    vec![
                        p.fibers_per_bundle.to_string(),
                        p.repairs_covered.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let (sub, redirect, naive) = run_subdivided(48e9);
        print_table(
            "Ablation (d): subdivided simultaneous dims [41] vs redirection",
            &["scheme", "beta bytes"],
            &[
                vec!["naive electrical bucket".into(), format!("{naive:.3e}")],
                vec!["subdivided simultaneous".into(), format!("{sub:.3e}")],
                vec!["photonic redirection".into(), format!("{redirect:.3e}")],
            ],
        );
        println!("  paper: subdivision matches but does not beat redirection");

        let pts = run_all_to_all(&[1e4, 1e6, 1e8, 1e10]);
        print_table(
            "Ablation (f): all-to-all (section 5's hard case), Slice-1",
            &[
                "buffer",
                "electrical",
                "congested rounds",
                "optical (7r)",
                "winner",
            ],
            &pts.iter()
                .map(|p| {
                    vec![
                        format!("{:.0e} B", p.n_bytes),
                        format!("{}", p.electrical),
                        p.congested_rounds.to_string(),
                        format!("{}", p.optical),
                        if p.optics_wins {
                            "optics"
                        } else {
                            "electrical"
                        }
                        .into(),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let r = run_placement(500, 0xF1C);
        print_table(
            "Ablation (g): multi-tenant placement (500 jobs, first-fit)",
            &["metric", "value"],
            &[
                vec!["jobs accepted".into(), r.accepted.to_string()],
                vec!["jobs rejected".into(), r.rejected.to_string()],
                vec![
                    "mean occupancy".into(),
                    format!("{:.0}%", r.mean_occupancy * 100.0),
                ],
                vec![
                    "mean electrical utilization".into(),
                    format!("{:.0}%", r.mean_electrical_utilization * 100.0),
                ],
                vec![
                    "mean optical utilization".into(),
                    format!("{:.0}%", r.mean_optical_utilization * 100.0),
                ],
            ],
        );

        let rows = run_campaign_comparison();
        print_table(
            "Ablation (k): 30-day availability, 8 racks, chip MTBF ~9 months",
            &["policy", "failures", "disturbed chip-hours", "availability"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.label.into(),
                        r.failures.to_string(),
                        format!("{:.3}", r.disturbed_chip_hours),
                        format!("{:.9}", r.availability),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let rows = run_recal_tradeoff();
        print_table(
            "Ablation (j): MZI drift vs recalibration interval",
            &["interval", "downtime", "worst drift penalty"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.1e} s", r.interval_s),
                        format!("{:.4}%", r.downtime * 100.0),
                        format!("{:.4} dB", r.penalty_db),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let rows = run_recovery();
        print_table(
            "Ablation (i): fault recovery latency",
            &["scheme", "recovery"],
            &rows
                .iter()
                .map(|r| vec![r.label.into(), format!("{}", r.recovery)])
                .collect::<Vec<_>>(),
        );

        let (e4, o4) = run_multirack_utilization(4);
        print_table(
            "Fig 5c addendum: a 4-rack slice (4x4x16) via OCS composition",
            &["interconnect", "utilization"],
            &[
                vec!["electrical".into(), format!("{:.0}%", e4 * 100.0)],
                vec!["optical".into(), format!("{:.0}%", o4 * 100.0)],
            ],
        );

        let rows = run_host_policies(2_000, 4_096, 8);
        print_table(
            "Ablation (h): circuit-switched host stack (2000 x 4 kB, 8 peers)",
            &["policy", "mean latency", "reconfigs", "goodput"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.label.into(),
                        format!("{:.2} us", r.mean_latency_s * 1e6),
                        r.reconfigs.to_string(),
                        format!("{:.1} Gbps", r.goodput_gbps),
                    ]
                })
                .collect::<Vec<_>>(),
        );

        let pts = run_moe_sweep(&[2, 4, 8, 16]);
        print_table(
            "Ablation (e): MoE warm-circuit cache (16 experts, top-2)",
            &["live circuits", "reconfig fraction", "hit rate"],
            &pts.iter()
                .map(|p| {
                    vec![
                        p.cache.to_string(),
                        format!("{:.2}%", p.reconfig_fraction * 100.0),
                        format!("{:.2}", p.hit_rate),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
}
