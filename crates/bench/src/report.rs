//! Plain-text table rendering for the `repro` binary.

/// Print an aligned text table: `headers` then `rows`, columns padded to
/// the widest cell.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity must match headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        println!("  {}", line.join("  "));
    };
    fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    println!("  {}", "-".repeat(total));
    for row in rows {
        fmt_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_without_panicking() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        print_table("bad", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
