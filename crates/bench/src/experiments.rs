//! The experiment harness: one function per table/figure of the paper.
//!
//! Each function returns structured data; the `repro` binary renders it as
//! text and `EXPERIMENTS.md` records paper-vs-measured. Criterion benches
//! call the same functions so the numbers in the report and the benchmarks
//! cannot drift apart.

use collectives::{
    bucket_reduce_scatter, bucket_reduce_scatter_cost, execute, ring_reduce_scatter,
    ring_reduce_scatter_cost, snake_order, subdivided_cost, CostParams, Mode,
};
use desim::{Histogram, SimDuration, TimeSeries};
use lightpath::{CircuitRequest, TileCoord, Wafer, WaferConfig};
use phy::{fit_settling_tau, Mzi, MziParams, MziState, StitchModel};
use resilience::{analyze, blast_radius, fig6a, fig6b, optical_repair, PhotonicRack, RepairPolicy};
use topo::{Cluster, Coord3, Dim, Shape3, Slice, Torus};

/// The rack shape every experiment runs against.
pub const RACK: Shape3 = Shape3::rack_4x4x4();

// ---------------------------------------------------------------- Fig 3a --

/// Fig 3a: the MZI switch step response.
pub struct Fig3a {
    /// Normalized amplitude trace (seconds, amplitude).
    pub trace: TimeSeries,
    /// Fitted settling time constant of the trace (paper: τ ≈ 1.2 µs with
    /// a ±0.94 µs error bar).
    pub fitted_tau_s: f64,
    /// Time at which the amplitude first reaches 99 % — the
    /// reconfiguration latency (paper: 3.7 µs).
    pub t99_s: f64,
}

/// Run the Fig 3a experiment: drive a settled bar-state MZI to cross and
/// record the bright-port amplitude.
pub fn run_fig3a() -> Fig3a {
    let mut mzi = Mzi::new(MziParams::default(), MziState::Bar);
    let trace = mzi.step_response_trace(MziState::Cross, 25e-9, 10e-6);
    // The trace settles to 1 (normalized): fit the straight region of the
    // semilog settling plot, as the paper's scope-trace fit does.
    let fitted_tau_s =
        fit_settling_tau(trace.points(), 1.0, 0.01, 0.5).expect("the switching trace settles");
    let t99_s = trace.first_crossing(0.99).expect("trace settles");
    Fig3a {
        trace,
        fitted_tau_s,
        t99_s,
    }
}

// ---------------------------------------------------------------- Fig 3b --

/// Fig 3b: the reticle stitch-loss distribution.
pub struct Fig3b {
    /// Binned losses over [0, 0.8) dB, 40 bins — the paper's axis range.
    pub histogram: Histogram,
    /// Mean loss, dB.
    pub mean_db: f64,
    /// 95th percentile, dB.
    pub p95_db: f64,
}

/// Run the Fig 3b experiment: Monte-Carlo sample `n` stitches.
pub fn run_fig3b(n: usize) -> Fig3b {
    let histogram = StitchModel::default().loss_distribution(n, 0.8, 40, 0x00F1_63B0);
    let mean_db = histogram.stats().mean();
    let p95_db = histogram.quantile(0.95).unwrap_or(f64::NAN);
    Fig3b {
        histogram,
        mean_db,
        p95_db,
    }
}

// --------------------------------------------------------------- Table 1 --

/// One row of Table 1 / Table 2: a mode's symbolic and measured cost.
pub struct CostRow {
    /// Row label ("Electrical" / "Optics").
    pub label: &'static str,
    /// α steps.
    pub alpha_steps: u32,
    /// Reconfigurations.
    pub reconfigs: u32,
    /// β-weighted bytes (bytes × bandwidth multiplier).
    pub beta_bytes: f64,
    /// Measured completion time from the desim executor.
    pub measured: SimDuration,
    /// Closed-form prediction.
    pub predicted: SimDuration,
}

/// Table 1: ReduceScatter on Slice-1 (4×2×1, p = 8), electrical vs optics.
pub fn run_table1(n_bytes: f64) -> Vec<CostRow> {
    let params = CostParams::default();
    let torus = Torus::new(RACK);
    let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
    let members = snake_order(&slice);
    let mut rows = Vec::new();
    for (label, mode) in [
        ("Electrical", Mode::Electrical),
        ("Optics", Mode::OpticalFullSteer),
    ] {
        let sched = ring_reduce_scatter(&members, n_bytes, mode, RACK, &torus, &params);
        let sym = sched.symbolic_cost(&params);
        let closed = ring_reduce_scatter_cost(members.len(), n_bytes, mode, RACK);
        debug_assert!((sym.beta_bytes - closed.beta_bytes).abs() < 1e-3);
        let measured = execute(&sched, &params).total;
        rows.push(CostRow {
            label,
            alpha_steps: sym.alpha_steps,
            reconfigs: sym.reconfigs,
            beta_bytes: sym.beta_bytes,
            measured,
            predicted: sym.total(&params),
        });
    }
    rows
}

/// Table 2: ReduceScatter on Slice-3 (4×4×1, D = 2, two stages).
pub fn run_table2(n_bytes: f64) -> Vec<CostRow> {
    let params = CostParams::default();
    let torus = Torus::new(RACK);
    let slice = Slice::new(3, Coord3::new(0, 0, 1), Shape3::new(4, 4, 1));
    let dims = [Dim::X, Dim::Y];
    let mut rows = Vec::new();
    for (label, mode) in [
        ("Electrical", Mode::Electrical),
        ("Optics", Mode::OpticalStaticSplit),
    ] {
        let sched = bucket_reduce_scatter(&slice, &dims, n_bytes, mode, RACK, &torus, &params);
        let sym = sched.symbolic_cost(&params);
        let closed = bucket_reduce_scatter_cost(&[4, 4], n_bytes, mode, RACK);
        debug_assert!((sym.beta_bytes - closed.beta_bytes).abs() < 1e-3);
        let measured = execute(&sched, &params).total;
        rows.push(CostRow {
            label,
            alpha_steps: sym.alpha_steps,
            reconfigs: sym.reconfigs,
            beta_bytes: sym.beta_bytes,
            measured,
            predicted: sym.total(&params),
        });
    }
    rows
}

// ---------------------------------------------------------------- Fig 5c --

/// One bar pair of Fig 5c.
pub struct UtilizationRow {
    /// Slice label.
    pub name: String,
    /// Slice shape.
    pub shape: Shape3,
    /// Electrical bandwidth utilization (0..1).
    pub electrical: f64,
    /// Optical (redirected) utilization (0..1).
    pub optical: f64,
}

/// Fig 5c: per-slice bandwidth utilization under the Fig 5b packing.
pub fn run_fig5c() -> Vec<UtilizationRow> {
    let slices = [
        Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1)),
        Slice::new(2, Coord3::new(0, 2, 0), Shape3::new(4, 2, 1)),
        Slice::new(3, Coord3::new(0, 0, 1), Shape3::new(4, 4, 1)),
        Slice::new(4, Coord3::new(0, 0, 2), Shape3::new(4, 4, 2)),
    ];
    slices
        .iter()
        .map(|s| UtilizationRow {
            name: format!("Slice-{}", s.id.0),
            shape: s.extent,
            electrical: s.utilization_electrical(RACK),
            optical: s.utilization_optical(),
        })
        .collect()
}

// ------------------------------------------------------------- Fig 6a/6b --

/// Summary of an electrical repair analysis.
pub struct Fig6 {
    /// Free chips evaluated.
    pub candidates: usize,
    /// Congestion-free repair options found (paper: 0).
    pub clean_options: usize,
    /// Mean foreign chips a repair would forward through.
    pub mean_foreign: f64,
}

/// Fig 6a: single-rack electrical repair.
pub fn run_fig6a() -> Fig6 {
    let s = fig6a();
    let a = analyze(&s.occ, &s.victim, s.failed);
    summarize_fig6(&a)
}

/// Fig 6b: cross-rack electrical repair.
pub fn run_fig6b() -> Fig6 {
    let s = fig6b();
    let a = analyze(s.cluster.occupancy(), &s.victim, s.failed);
    summarize_fig6(&a)
}

fn summarize_fig6(a: &resilience::ElectricalRepairAnalysis) -> Fig6 {
    let mean_foreign = a
        .attempts
        .iter()
        .map(|x| x.foreign_traversals.len() as f64)
        .sum::<f64>()
        / a.attempts.len().max(1) as f64;
    Fig6 {
        candidates: a.attempts.len(),
        clean_options: a.clean_options,
        mean_foreign,
    }
}

// ----------------------------------------------------------------- Fig 7 --

/// Fig 7: optical repair outcome plus the blast-radius comparison.
pub struct Fig7 {
    /// Circuits established for the repair.
    pub circuits: usize,
    /// Setup latency (one parallel reconfiguration).
    pub setup: SimDuration,
    /// Blast radius of the TPUv4 rack-migration baseline, chips.
    pub blast_migration: usize,
    /// Blast radius of the optical repair, chips.
    pub blast_optical: usize,
}

/// Run the Fig 7 experiment on the Fig 6a scenario.
pub fn run_fig7() -> Fig7 {
    let scenario = fig6a();
    let mut rack = PhotonicRack::new(1);
    let report = optical_repair(
        &mut rack,
        &scenario.victim,
        scenario.failed,
        scenario.free[0],
    )
    .expect("optical repair succeeds");
    let cluster = Cluster::tpu_v4(2);
    let migration = blast_radius(
        RepairPolicy::RackMigration,
        &cluster,
        &scenario.victim,
        scenario.failed,
        0,
    );
    let optical = blast_radius(
        RepairPolicy::OpticalCircuits,
        &cluster,
        &scenario.victim,
        scenario.failed,
        0,
    );
    Fig7 {
        circuits: report.circuits,
        setup: report.setup,
        blast_migration: migration.chips_disturbed,
        blast_optical: optical.chips_disturbed,
    }
}

// ------------------------------------------------------------ Capability --

/// §3's capability summary, validated end-to-end on a full wafer.
pub struct Capability {
    /// Tiles on the wafer.
    pub tiles: usize,
    /// Lasers (λ) per tile.
    pub lambdas_per_tile: usize,
    /// Per-λ rate, Gb/s.
    pub gbps_per_lambda: f64,
    /// Waveguide capacity per tile edge.
    pub waveguides_per_edge: u32,
    /// Measured reconfiguration latency, µs.
    pub reconfig_us: f64,
    /// Crossing loss, dB.
    pub crossing_db: f64,
    /// Margin of the worst-case (corner-to-corner, 16-λ) circuit, dB.
    pub worst_margin_db: f64,
    /// Aggregate bandwidth of one tile's egress, Gb/s.
    pub tile_egress_gbps: f64,
}

/// Build a full 32-tile wafer and verify every §3 capability claim.
pub fn run_capability() -> Capability {
    let mut wafer = Wafer::new(WaferConfig::lightpath_32());
    let rep = wafer
        .establish(CircuitRequest::new(
            TileCoord::new(0, 0),
            TileCoord::new(3, 7),
            16,
        ))
        .expect("corner-to-corner at full bandwidth");
    let cfg = wafer.config();
    Capability {
        tiles: cfg.tiles(),
        lambdas_per_tile: cfg.wdm.channels,
        gbps_per_lambda: cfg.wdm.rate.0,
        waveguides_per_edge: cfg.waveguides_per_edge,
        reconfig_us: rep.setup.as_micros_f64(),
        crossing_db: phy::CROSSING_LOSS_DB,
        worst_margin_db: rep.link.margin.0,
        tile_egress_gbps: cfg.wdm.aggregate_rate().0,
    }
}

// -------------------------------------------------------------- Ablation --

/// One point of the buffer-size crossover sweep (ablation a).
pub struct CrossoverPoint {
    /// Buffer size, bytes.
    pub n_bytes: f64,
    /// Electrical completion time.
    pub electrical: SimDuration,
    /// Optical completion time (incl. the 3.7 µs reconfiguration).
    pub optical: SimDuration,
    /// True when optics wins.
    pub optics_wins: bool,
}

/// Ablation (a): sweep buffer size to find where redirection starts paying
/// for its reconfiguration latency (§5's "appropriate trade-off between
/// optical reconfiguration delay and end-to-end performance").
pub fn run_crossover(sizes: &[f64]) -> Vec<CrossoverPoint> {
    let params = CostParams::default();
    let torus = Torus::new(RACK);
    let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
    let members = snake_order(&slice);
    sizes
        .iter()
        .map(|&n| {
            let e = execute(
                &ring_reduce_scatter(&members, n, Mode::Electrical, RACK, &torus, &params),
                &params,
            )
            .total;
            let o = execute(
                &ring_reduce_scatter(&members, n, Mode::OpticalFullSteer, RACK, &torus, &params),
                &params,
            )
            .total;
            CrossoverPoint {
                n_bytes: n,
                electrical: e,
                optical: o,
                optics_wins: o < e,
            }
        })
        .collect()
}

/// Ablation (d): the subdivided simultaneous baseline vs redirection on a
/// full-rack slice. Returns (subdivided β bytes, redirection β bytes,
/// naive-electrical β bytes).
pub fn run_subdivided(n_bytes: f64) -> (f64, f64, f64) {
    let sub = subdivided_cost(&[4, 4, 4], n_bytes, RACK);
    let redirect = bucket_reduce_scatter_cost(&[4, 4, 4], n_bytes, Mode::OpticalFullSteer, RACK);
    let naive = bucket_reduce_scatter_cost(&[4, 4, 4], n_bytes, Mode::Electrical, RACK);
    (sub.beta_bytes, redirect.beta_bytes, naive.beta_bytes)
}

/// One point of the controller-scaling sweep (ablation b).
pub struct ControllerPoint {
    /// Concurrent circuit requests.
    pub requests: usize,
    /// Centralized mean setup latency.
    pub central_mean: SimDuration,
    /// Decentralized mean setup latency.
    pub decentral_mean: SimDuration,
}

/// Ablation (b): centralized vs decentralized control-plane latency as the
/// request batch grows (§5's scalability argument).
pub fn run_controllers(batch_sizes: &[usize]) -> Vec<ControllerPoint> {
    let params = route::ControlParams::default();
    batch_sizes
        .iter()
        .map(|&n| {
            let requests: Vec<route::controllers::Request> = (0..n)
                .map(|i| ((0, (i % 8) as u8), (3, ((i + 3) % 8) as u8)))
                .collect();
            let c = route::central_setup(4, 8, &requests, &params);
            let d = route::decentralized_setup(4, 8, &requests, 1000, &params);
            ControllerPoint {
                requests: n,
                central_mean: c.mean_latency,
                decentral_mean: d.mean_latency,
            }
        })
        .collect()
}

/// One point of the MoE warm-circuit sweep (ablation of §5's dynamic
/// traffic challenge).
pub struct MoePoint {
    /// Live-circuit cache size.
    pub cache: usize,
    /// Fraction of time lost to reconfiguration.
    pub reconfig_fraction: f64,
    /// Circuit cache hit rate.
    pub hit_rate: f64,
}

/// Sweep the warm-circuit budget for MoE inference.
pub fn run_moe_sweep(caches: &[usize]) -> Vec<MoePoint> {
    caches
        .iter()
        .map(|&cache| {
            let r = route::run_moe(
                &route::MoeParams {
                    max_live_circuits: cache,
                    batches: 20_000,
                    ..route::MoeParams::default()
                },
                0xA03,
            );
            MoePoint {
                cache,
                reconfig_fraction: r.reconfig_fraction,
                hit_rate: r.hit_rate,
            }
        })
        .collect()
}

/// One point of the fiber-coverage sweep (ablation c).
pub struct FiberPoint {
    /// Fibers per inter-server bundle.
    pub fibers_per_bundle: u32,
    /// Concurrent failures repaired before the fiber plant exhausts.
    pub repairs_covered: usize,
}

/// Ablation (c): how much fiber the rack needs per failure coverage level.
/// Repairs are repeated optical splices of the Fig 6a failure against
/// distinct spare chips until any resource runs out.
pub fn run_fiber_coverage(bundle_sizes: &[u32]) -> Vec<FiberPoint> {
    bundle_sizes
        .iter()
        .map(|&cap| {
            let scenario = fig6a();
            let mut rack = PhotonicRack::with_fiber_capacity(1, cap);
            let mut covered = 0;
            for &spare in &scenario.free {
                match optical_repair(&mut rack, &scenario.victim, scenario.failed, spare) {
                    Ok(_) => covered += 1,
                    Err(_) => break,
                }
            }
            FiberPoint {
                fibers_per_bundle: cap,
                repairs_covered: covered,
            }
        })
        .collect()
}

/// One point of the all-to-all sweep (ablation f).
pub struct AllToAllPoint {
    /// Buffer per chip, bytes.
    pub n_bytes: f64,
    /// Electrical completion (multi-hop routes, congestion charged).
    pub electrical: SimDuration,
    /// Electrical congested rounds.
    pub congested_rounds: usize,
    /// Optical completion (clean matchings, r per round).
    pub optical: SimDuration,
    /// True when optics wins.
    pub optics_wins: bool,
}

/// Ablation (f): the §5 hard case — rotation all-to-all on Slice-1 under
/// both interconnects, across buffer sizes.
pub fn run_all_to_all(sizes: &[f64]) -> Vec<AllToAllPoint> {
    let params = CostParams::default();
    let torus = Torus::new(RACK);
    let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
    let members = snake_order(&slice);
    sizes
        .iter()
        .map(|&n| {
            let es = collectives::all_to_all(&members, n, Mode::Electrical, RACK, &torus, &params);
            let e = execute(&es, &params);
            let os =
                collectives::all_to_all(&members, n, Mode::OpticalFullSteer, RACK, &torus, &params);
            let o = execute(&os, &params);
            AllToAllPoint {
                n_bytes: n,
                electrical: e.total,
                congested_rounds: e.congested_rounds,
                optical: o.total,
                optics_wins: o.total < e.total,
            }
        })
        .collect()
}

/// Ablation (g): the multi-tenant placement simulation — time-averaged
/// stranded bandwidth over a realistic arrival mix.
pub fn run_placement(jobs: usize, seed: u64) -> workloads::PlacementReport {
    let stream = workloads::generate(jobs, &workloads::ArrivalParams::default(), seed);
    workloads::simulate(RACK, &stream)
}

/// One row of the host-stack policy comparison (ablation h).
pub struct HostPolicyRow {
    /// Policy label.
    pub label: &'static str,
    /// Mean message latency, seconds.
    pub mean_latency_s: f64,
    /// Circuit re-points performed.
    pub reconfigs: u64,
    /// Delivered goodput, Gb/s.
    pub goodput_gbps: f64,
}

/// Ablation (h): circuit-switched host stack policies (§5's "new host
/// networking software stacks") over a scattered small-message workload.
pub fn run_host_policies(messages: usize, msg_bytes: u64, peers: u32) -> Vec<HostPolicyRow> {
    use hostnet::{simulate, CircuitPolicy, HostParams, Message, PeerId};
    let params = HostParams::default();
    let workload: Vec<Message> = (0..messages)
        .map(|i| Message {
            dst: PeerId(i as u32 % peers),
            bytes: msg_bytes,
            enqueued: desim::SimTime::from_ps(i as u64 * 200_000), // 200 ns apart
        })
        .collect();
    let policies = [
        ("per-message", CircuitPolicy::PerMessage),
        ("hold-open", CircuitPolicy::HoldOpen),
        (
            "batch 256kB/50us",
            CircuitPolicy::Batch {
                threshold_bytes: 256 * 1024,
                max_delay: desim::SimDuration::from_us(50),
            },
        ),
    ];
    policies
        .iter()
        .map(|&(label, policy)| {
            let r = simulate(policy, params, &workload);
            HostPolicyRow {
                label,
                mean_latency_s: r.latency.mean(),
                reconfigs: r.reconfigs,
                goodput_gbps: r.goodput_gbps,
            }
        })
        .collect()
}

/// Ablation (i): recovery latency after a bus fault — 1+1 protected
/// failover vs reactive re-route (controller decision + establish).
pub struct RecoveryRow {
    /// Scheme label.
    pub label: &'static str,
    /// Time from fault to restored traffic.
    pub recovery: SimDuration,
}

/// Compare protection schemes on a loaded wafer.
pub fn run_recovery() -> Vec<RecoveryRow> {
    use route::{establish_protected, ControlParams};
    let mut wafer = Wafer::new(WaferConfig::lightpath_32());
    let mut pair = establish_protected(&mut wafer, TileCoord::new(0, 0), TileCoord::new(3, 5), 4)
        .expect("protected pair");
    // 1+1 failover: one reconfiguration, no control-plane round trip.
    let failover = pair.failover();

    // Reactive re-route: the centralized controller must notice, decide
    // (global scan), and then establish a fresh circuit (r).
    let ctrl = ControlParams::default();
    let decision = ctrl.decision_base + ctrl.decision_per_edge * 52; // 4×8 grid edges
    let reroute = decision + SimDuration::from_secs_f64(phy::thermal::RECONFIG_LATENCY_S);

    vec![
        RecoveryRow {
            label: "1+1 protected failover",
            recovery: failover,
        },
        RecoveryRow {
            label: "reactive re-route (central)",
            recovery: reroute,
        },
    ]
}

/// An extra Fig 5c row: a multi-rack slice composed via the OCS spans full
/// extents in every dimension and recovers full electrical utilization —
/// the paper's observation that only multi-rack slices avoid stranding.
pub fn run_multirack_utilization(racks: usize) -> (f64, f64) {
    let cluster = Cluster::tpu_v4(racks);
    let shape = cluster.occupancy().shape();
    let slice = Slice::new(1, Coord3::new(0, 0, 0), shape);
    (
        slice.utilization_electrical(shape),
        slice.utilization_optical(),
    )
}

/// E6 extension: the measured co-ring slowdown an electrical repair causes
/// (max-min fair flows), vs 1.0 for optical circuits.
pub struct InterferenceRow {
    /// Repair volume streamed to the spare, bytes.
    pub repair_bytes: f64,
    /// Surviving-ring slowdown under electrical repair.
    pub electrical_slowdown: f64,
    /// Slowdown under optical repair (dedicated circuits).
    pub optical_slowdown: f64,
}

/// Sweep repair volumes on the Fig 6a scenario.
pub fn run_interference(repair_sizes: &[f64]) -> Vec<InterferenceRow> {
    let scenario = fig6a();
    let spare = Coord3::new(3, 3, 3);
    repair_sizes
        .iter()
        .map(|&b| {
            let r = resilience::measure_interference(&scenario, spare, 1e9, b);
            InterferenceRow {
                repair_bytes: b,
                electrical_slowdown: r.electrical_slowdown,
                optical_slowdown: r.optical_slowdown,
            }
        })
        .collect()
}

/// Ablation (j): drift vs recalibration — the holdover trade-off.
pub struct RecalRow {
    /// Recalibration interval, seconds.
    pub interval_s: f64,
    /// Link downtime fraction spent recalibrating.
    pub downtime: f64,
    /// Worst-case drift penalty before recalibration, dB.
    pub penalty_db: f64,
}

/// Sweep recalibration intervals for the default drift model.
pub fn run_recal_tradeoff() -> Vec<RecalRow> {
    let drift = phy::DriftModel {
        sigma_rad_per_sqrt_s: 0.05,
    };
    let intervals: Vec<SimDuration> = (0..8)
        .map(|i| SimDuration::from_micros_f64(100.0 * 10f64.powi(i)))
        .collect();
    phy::recal_tradeoff(&drift, &intervals)
        .into_iter()
        .map(|p| RecalRow {
            interval_s: p.interval.as_secs_f64(),
            downtime: p.downtime_fraction,
            penalty_db: p.worst_penalty_db,
        })
        .collect()
}

/// Ablation (k): 30-day availability campaign under each repair policy.
pub struct CampaignRow {
    /// Policy label.
    pub label: &'static str,
    /// Failures over the horizon.
    pub failures: u32,
    /// Chip-hours of disturbed work.
    pub disturbed_chip_hours: f64,
    /// Availability (1 − disturbed / capacity).
    pub availability: f64,
}

/// Run the failure campaign for migration vs optical repair.
pub fn run_campaign_comparison() -> Vec<CampaignRow> {
    let params = resilience::CampaignParams::default();
    [
        ("rack migration", resilience::RepairPolicy::RackMigration),
        (
            "optical circuits",
            resilience::RepairPolicy::OpticalCircuits,
        ),
    ]
    .into_iter()
    .map(|(label, policy)| {
        let r = resilience::run_campaign(policy, &params);
        CampaignRow {
            label,
            failures: r.failures,
            disturbed_chip_hours: r.disturbed_chip_seconds / 3600.0,
            availability: r.availability,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_reproduces_3_7us() {
        let r = run_fig3a();
        assert!(
            (r.t99_s * 1e6 - 3.7).abs() < 0.1,
            "t99 {} µs",
            r.t99_s * 1e6
        );
        // Fitted τ within the paper's own (wide) fit band: 1.2 ± 0.94 µs.
        assert!(
            r.fitted_tau_s > 0.26e-6 && r.fitted_tau_s < 2.14e-6,
            "tau {}",
            r.fitted_tau_s
        );
    }

    #[test]
    fn fig3b_distribution_is_low_loss() {
        let r = run_fig3b(20_000);
        assert!((0.15..0.35).contains(&r.mean_db), "mean {}", r.mean_db);
        assert!(r.p95_db < 0.8, "p95 {}", r.p95_db);
        assert_eq!(r.histogram.underflow(), 0);
    }

    #[test]
    fn table1_shows_3x() {
        let rows = run_table1(8e9);
        assert_eq!(rows[0].alpha_steps, 7);
        assert_eq!(rows[1].reconfigs, 1);
        let ratio = rows[0].beta_bytes / rows[1].beta_bytes;
        assert!((ratio - 3.0).abs() < 1e-9);
        // Executor agrees with the closed form up to per-round picosecond
        // rounding.
        for r in &rows {
            let diff = r.measured.as_secs_f64() - r.predicted.as_secs_f64();
            assert!(diff.abs() < 1e-9, "{}: {diff}", r.label);
        }
    }

    #[test]
    fn table2_shows_1_5x() {
        let rows = run_table2(16e9);
        let ratio = rows[0].beta_bytes / rows[1].beta_bytes;
        assert!((ratio - 1.5).abs() < 1e-9);
        assert_eq!(rows[1].reconfigs, 2);
    }

    #[test]
    fn fig5c_matches_paper_fractions() {
        let rows = run_fig5c();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].electrical - 1.0 / 3.0).abs() < 1e-12); // Slice-1
        assert!((rows[1].electrical - 1.0 / 3.0).abs() < 1e-12); // Slice-2
        assert!((rows[2].electrical - 2.0 / 3.0).abs() < 1e-12); // Slice-3
        assert!((rows[3].electrical - 2.0 / 3.0).abs() < 1e-12); // Slice-4
        assert!(rows.iter().all(|r| r.optical == 1.0));
    }

    #[test]
    fn fig6_experiments_find_zero_clean_options() {
        assert_eq!(run_fig6a().clean_options, 0);
        assert_eq!(run_fig6b().clean_options, 0);
    }

    #[test]
    fn fig7_shrinks_blast_radius_16x() {
        let r = run_fig7();
        assert_eq!(r.blast_migration / r.blast_optical, 16);
        assert!((r.setup.as_micros_f64() - 3.7).abs() < 1e-9);
        assert_eq!(r.circuits, 8);
    }

    #[test]
    fn capability_claims_hold() {
        let c = run_capability();
        assert_eq!(c.tiles, 32);
        assert_eq!(c.lambdas_per_tile, 16);
        assert_eq!(c.gbps_per_lambda, 224.0);
        assert_eq!(c.waveguides_per_edge, 10_000);
        assert!((c.reconfig_us - 3.7).abs() < 1e-9);
        assert_eq!(c.crossing_db, 0.25);
        assert!(c.worst_margin_db > 0.0);
        assert_eq!(c.tile_egress_gbps, 3584.0);
    }

    #[test]
    fn crossover_exists_and_is_monotone() {
        let sizes: Vec<f64> = (0..10).map(|i| 10f64.powi(i + 2)).collect();
        let points = run_crossover(&sizes);
        // Small buffers: electrical wins; large: optics wins.
        assert!(!points.first().unwrap().optics_wins);
        assert!(points.last().unwrap().optics_wins);
        // Once optics wins it keeps winning (monotone crossover).
        let first_win = points.iter().position(|p| p.optics_wins).unwrap();
        assert!(points[first_win..].iter().all(|p| p.optics_wins));
    }

    #[test]
    fn all_to_all_ablation_shapes() {
        let pts = run_all_to_all(&[1e4, 1e9]);
        assert!(!pts[0].optics_wins, "10 kB: reconfig storm dominates");
        assert!(pts[1].optics_wins, "1 GB: bandwidth + clean matchings win");
        assert!(
            pts[1].congested_rounds > 0,
            "electrical all-to-all congests"
        );
    }

    #[test]
    fn placement_strands_electrical_bandwidth() {
        let r = run_placement(300, 0xF1C);
        assert!(r.accepted > 0);
        assert!(r.mean_optical_utilization > r.mean_electrical_utilization);
    }

    #[test]
    fn host_policy_ordering() {
        let rows = run_host_policies(500, 4_096, 8);
        let per = &rows[0];
        let batch = &rows[2];
        assert!(batch.reconfigs < per.reconfigs / 4, "batching amortizes r");
        assert!(batch.goodput_gbps > per.goodput_gbps);
    }

    #[test]
    fn recovery_failover_is_much_faster() {
        let rows = run_recovery();
        assert!(rows[0].recovery < rows[1].recovery);
        assert!((rows[0].recovery.as_micros_f64() - 3.7).abs() < 1e-9);
    }

    #[test]
    fn multirack_slices_recover_full_electrical_utilization() {
        let (e, o) = run_multirack_utilization(4);
        assert_eq!(e, 1.0, "full-extent multi-rack slice");
        assert_eq!(o, 1.0);
    }

    #[test]
    fn interference_grows_with_repair_volume() {
        let rows = run_interference(&[1e8, 1e9, 8e9]);
        assert!(rows[0].electrical_slowdown >= 1.0);
        assert!(rows[2].electrical_slowdown > rows[0].electrical_slowdown);
        assert!(rows.iter().all(|r| r.optical_slowdown == 1.0));
    }

    #[test]
    fn recal_tradeoff_is_monotone_in_both_axes() {
        let rows = run_recal_tradeoff();
        for w in rows.windows(2) {
            assert!(w[1].downtime <= w[0].downtime + 1e-15);
            assert!(w[1].penalty_db >= w[0].penalty_db - 1e-15);
        }
    }

    #[test]
    fn campaign_favors_optical_by_orders_of_magnitude() {
        let rows = run_campaign_comparison();
        assert_eq!(rows[0].failures, rows[1].failures);
        assert!(rows[1].availability > rows[0].availability);
        assert!(rows[1].disturbed_chip_hours < rows[0].disturbed_chip_hours / 1e5);
    }

    #[test]
    fn subdivided_matches_redirection() {
        let (sub, redirect, naive) = run_subdivided(48e9);
        assert!((sub - redirect).abs() < 1e-3);
        assert!((naive / sub - 3.0).abs() < 1e-9);
    }
}
