//! Messages and per-destination queues for the circuit-switched host stack.

use desim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifier of a peer accelerator the host can open circuits to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

/// One application message awaiting transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Destination peer.
    pub dst: PeerId,
    /// Payload size, bytes.
    pub bytes: u64,
    /// When the application enqueued it.
    pub enqueued: SimTime,
}

/// Completion record for a delivered message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// The message delivered.
    pub message: Message,
    /// When the last byte arrived.
    pub completed: SimTime,
}

impl Delivery {
    /// Queueing + circuit-setup + transmission latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.saturating_since(self.message.enqueued)
    }
}

/// FIFO of messages bound for one peer.
#[derive(Debug, Clone, Default)]
pub struct PeerQueue {
    q: VecDeque<Message>,
    /// Total bytes currently queued.
    bytes: u64,
}

impl PeerQueue {
    /// Empty queue.
    pub fn new() -> Self {
        PeerQueue::default()
    }

    /// Enqueue a message.
    pub fn push(&mut self, m: Message) {
        self.bytes += m.bytes;
        self.q.push_back(m);
    }

    /// Dequeue the oldest message.
    pub fn pop(&mut self) -> Option<Message> {
        let m = self.q.pop_front()?;
        self.bytes -= m.bytes;
        Some(m)
    }

    /// Messages waiting.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Total queued bytes.
    pub fn queued_bytes(&self) -> u64 {
        self.bytes
    }

    /// Peek at the head without dequeuing.
    pub fn head(&self) -> Option<&Message> {
        self.q.front()
    }

    /// Drain every queued message.
    pub fn drain(&mut self) -> Vec<Message> {
        self.bytes = 0;
        self.q.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(bytes: u64) -> Message {
        Message {
            dst: PeerId(1),
            bytes,
            enqueued: SimTime::ZERO,
        }
    }

    #[test]
    fn queue_fifo_and_byte_accounting() {
        let mut q = PeerQueue::new();
        assert!(q.is_empty());
        q.push(msg(100));
        q.push(msg(200));
        assert_eq!(q.len(), 2);
        assert_eq!(q.queued_bytes(), 300);
        assert_eq!(q.head().unwrap().bytes, 100);
        assert_eq!(q.pop().unwrap().bytes, 100);
        assert_eq!(q.queued_bytes(), 200);
        assert_eq!(q.pop().unwrap().bytes, 200);
        assert!(q.pop().is_none());
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn drain_empties() {
        let mut q = PeerQueue::new();
        for i in 1..=5 {
            q.push(msg(i));
        }
        let all = q.drain();
        assert_eq!(all.len(), 5);
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn delivery_latency() {
        let d = Delivery {
            message: Message {
                dst: PeerId(0),
                bytes: 1,
                enqueued: SimTime::from_ps(1_000),
            },
            completed: SimTime::from_ps(5_000),
        };
        assert_eq!(d.latency().as_ps(), 4_000);
    }
}
