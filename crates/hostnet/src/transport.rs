//! The circuit-switched transport: one transmit circuit, policies for when
//! to re-point it.
//!
//! "Server-scale optics will necessitate the development of new host
//! networking software stacks optimized for circuit-switching as opposed to
//! today's packetized data transmission" (§5). The defining constraint is
//! the 3.7 µs reconfiguration: a host that re-points its circuit per
//! message drowns small messages in setup latency, while batching amortizes
//! `r` at the price of queueing delay. This module simulates a single
//! host's transmitter under three policies and measures the trade-off.

use crate::message::{Delivery, Message, PeerId, PeerQueue};
use desim::{Engine, OnlineStats, QuantileEstimator, SimDuration, SimTime};
use phy::units::Gbps;
use std::collections::BTreeMap;

/// When the transmitter re-points its circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CircuitPolicy {
    /// Open a fresh circuit for every message (the packet-switched habit —
    /// pays `r` per message).
    PerMessage,
    /// Keep the current circuit until traffic for another peer waits;
    /// consecutive messages to the same peer ride the open circuit free.
    HoldOpen,
    /// Accumulate per-peer batches; flush a peer once it has at least
    /// `threshold_bytes` queued or its oldest message has waited
    /// `max_delay`.
    Batch {
        /// Flush threshold, bytes.
        threshold_bytes: u64,
        /// Oldest-message age bound.
        max_delay: SimDuration,
    },
}

/// Transmitter hardware parameters.
#[derive(Debug, Clone, Copy)]
pub struct HostParams {
    /// Circuit bandwidth once open (a full 16-λ tile egress by default).
    pub rate: Gbps,
    /// Circuit re-point latency (MZI reconfiguration).
    pub reconfig: SimDuration,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams {
            rate: Gbps(16.0 * 224.0),
            reconfig: SimDuration::from_secs_f64(phy::thermal::RECONFIG_LATENCY_S),
        }
    }
}

/// Measured behaviour of a policy over a workload.
#[derive(Debug, Clone)]
pub struct TransportReport {
    /// Messages delivered (always the full workload).
    pub delivered: usize,
    /// Message latency statistics, seconds.
    pub latency: OnlineStats,
    /// Streaming p99 latency estimate, seconds.
    pub p99_latency_s: f64,
    /// Circuit re-points performed.
    pub reconfigs: u64,
    /// Completion time of the last delivery.
    pub makespan: SimDuration,
    /// Delivered payload over makespan, Gb/s.
    pub goodput_gbps: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TxState {
    /// No circuit open.
    Idle,
    /// Circuit open to a peer and not transmitting.
    Open(PeerId),
    /// Busy until the stored instant (circuit open to the peer).
    Busy(PeerId, SimTime),
}

struct Host {
    queues: BTreeMap<PeerId, PeerQueue>,
    state: TxState,
    policy: CircuitPolicy,
    params: HostParams,
    deliveries: Vec<Delivery>,
    reconfigs: u64,
}

impl Host {
    /// The peer whose head-of-line message is oldest and *eligible* under
    /// the policy (Batch only flushes ripe queues unless forced by age).
    fn next_peer(&self, now: SimTime) -> Option<PeerId> {
        let mut best: Option<(SimTime, PeerId)> = None;
        for (&peer, q) in &self.queues {
            let Some(head) = q.head() else { continue };
            let ripe = match self.policy {
                CircuitPolicy::PerMessage | CircuitPolicy::HoldOpen => true,
                CircuitPolicy::Batch {
                    threshold_bytes,
                    max_delay,
                } => {
                    q.queued_bytes() >= threshold_bytes
                        || now.saturating_since(head.enqueued) >= max_delay
                }
            };
            if ripe && best.is_none_or(|(t, _)| head.enqueued < t) {
                best = Some((head.enqueued, peer));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Earliest future instant at which a Batch queue ripens by age.
    fn next_ripen(&self, now: SimTime) -> Option<SimTime> {
        let CircuitPolicy::Batch { max_delay, .. } = self.policy else {
            return None;
        };
        self.queues
            .values()
            .filter_map(|q| q.head())
            .map(|h| h.enqueued + max_delay)
            .filter(|&t| t > now)
            .min()
    }
}

fn pump(host: &mut Host, engine: &mut Engine<Host>) {
    // Only start new work when the transmitter is free.
    if let TxState::Busy(_, until) = host.state {
        if engine.now() < until {
            return;
        }
    }
    let now = engine.now();
    let Some(peer) = host.next_peer(now) else {
        // Nothing eligible: for Batch, wake when the oldest head ripens.
        if let Some(t) = host.next_ripen(now) {
            engine.schedule_at(t, pump);
        }
        if !matches!(host.state, TxState::Busy(..)) {
            host.state = match host.state {
                TxState::Busy(p, _) | TxState::Open(p) => TxState::Open(p),
                TxState::Idle => TxState::Idle,
            };
        }
        return;
    };

    // Circuit setup cost.
    let needs_reconfig = match (host.policy, host.state) {
        (CircuitPolicy::PerMessage, _) => true,
        (_, TxState::Open(p)) | (_, TxState::Busy(p, _)) => p != peer,
        (_, TxState::Idle) => true,
    };
    let setup = if needs_reconfig {
        host.reconfigs += 1;
        host.params.reconfig
    } else {
        SimDuration::ZERO
    };

    // What to send: one message, or (Batch) the whole queue.
    let batch = match host.policy {
        CircuitPolicy::Batch { .. } => host.queues.get_mut(&peer).expect("peer exists").drain(),
        _ => vec![host
            .queues
            .get_mut(&peer)
            .expect("peer exists")
            .pop()
            .expect("head exists")],
    };
    let bytes: u64 = batch.iter().map(|m| m.bytes).sum();
    let tx_time = SimDuration::from_secs_f64(host.params.rate.transfer_secs(bytes));
    let done = now + setup + tx_time;
    host.state = TxState::Busy(peer, done);
    engine.schedule_at(done, move |h: &mut Host, e| {
        for m in &batch {
            h.deliveries.push(Delivery {
                message: *m,
                completed: e.now(),
            });
        }
        h.state = TxState::Open(peer);
        pump(h, e);
    });
}

/// Simulate `workload` (messages in arrival order) under one policy.
pub fn simulate(
    policy: CircuitPolicy,
    params: HostParams,
    workload: &[Message],
) -> TransportReport {
    let mut engine: Engine<Host> = Engine::new();
    let mut host = Host {
        queues: BTreeMap::new(),
        state: TxState::Idle,
        policy,
        params,
        deliveries: Vec::new(),
        reconfigs: 0,
    };
    for &m in workload {
        engine.schedule_at(m.enqueued, move |h: &mut Host, e| {
            h.queues.entry(m.dst).or_default().push(m);
            pump(h, e);
        });
    }
    engine.run(&mut host);
    assert_eq!(
        host.deliveries.len(),
        workload.len(),
        "transport must deliver everything"
    );

    let mut latency = OnlineStats::new();
    let mut p99 = QuantileEstimator::new(0.99);
    for d in &host.deliveries {
        let l = d.latency().as_secs_f64();
        latency.push(l);
        p99.push(l);
    }
    let makespan = host
        .deliveries
        .iter()
        .map(|d| d.completed)
        .max()
        .unwrap_or(SimTime::ZERO)
        .since_origin();
    let total_bytes: u64 = workload.iter().map(|m| m.bytes).sum();
    let goodput_gbps = if makespan > SimDuration::ZERO {
        total_bytes as f64 * 8.0 / makespan.as_secs_f64() / 1e9
    } else {
        0.0
    };
    TransportReport {
        delivered: host.deliveries.len(),
        latency,
        p99_latency_s: p99.estimate().unwrap_or(0.0),
        reconfigs: host.reconfigs,
        makespan,
        goodput_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;

    /// `n` messages of `bytes` each, to `peers` peers round-robin, arriving
    /// every `gap`.
    fn workload(n: usize, bytes: u64, peers: u32, gap: SimDuration) -> Vec<Message> {
        (0..n)
            .map(|i| Message {
                dst: PeerId(i as u32 % peers),
                bytes,
                enqueued: SimTime::ZERO + gap * i as u64,
            })
            .collect()
    }

    #[test]
    fn single_message_timing_is_exact() {
        let params = HostParams::default();
        let w = workload(1, 448_000, 1, SimDuration::ZERO); // 448 kB at 448 GB/s = 1 µs
        let r = simulate(CircuitPolicy::PerMessage, params, &w);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.reconfigs, 1);
        let expect = 3.7e-6 + 1e-6;
        assert!((r.latency.mean() - expect).abs() < 1e-12);
    }

    #[test]
    fn hold_open_amortizes_same_peer_traffic() {
        let params = HostParams::default();
        // 100 back-to-back small messages to ONE peer.
        let w = workload(100, 1_000, 1, SimDuration::ZERO);
        let per = simulate(CircuitPolicy::PerMessage, params, &w);
        let hold = simulate(CircuitPolicy::HoldOpen, params, &w);
        assert_eq!(per.reconfigs, 100);
        assert_eq!(hold.reconfigs, 1, "one setup, then the circuit stays");
        assert!(hold.makespan < per.makespan);
        assert!(hold.latency.mean() < per.latency.mean());
    }

    #[test]
    fn hold_open_still_pays_on_peer_switches() {
        let params = HostParams::default();
        // Alternating arrivals: the oldest-head scheduler chases the
        // alternation, switching the circuit for every message.
        let w = workload(50, 1_000, 2, SimDuration::from_ns(100));
        let hold = simulate(CircuitPolicy::HoldOpen, params, &w);
        assert_eq!(hold.reconfigs, 50);
        // With simultaneous arrivals the scheduler drains per peer instead:
        // only one switch.
        let w0 = workload(50, 1_000, 2, SimDuration::ZERO);
        let hold0 = simulate(CircuitPolicy::HoldOpen, params, &w0);
        assert_eq!(hold0.reconfigs, 2);
    }

    #[test]
    fn batching_cuts_reconfigs_for_scattered_traffic() {
        let params = HostParams::default();
        let w = workload(200, 10_000, 4, SimDuration::from_ns(100));
        let hold = simulate(CircuitPolicy::HoldOpen, params, &w);
        let batch = simulate(
            CircuitPolicy::Batch {
                threshold_bytes: 100_000,
                max_delay: SimDuration::from_us(50),
            },
            params,
            &w,
        );
        assert!(
            batch.reconfigs < hold.reconfigs / 2,
            "batching amortizes: {} vs {}",
            batch.reconfigs,
            hold.reconfigs
        );
        assert!(batch.makespan <= hold.makespan);
    }

    #[test]
    fn batch_max_delay_bounds_latency() {
        let params = HostParams::default();
        // A single tiny message: never reaches the threshold, must flush by
        // age.
        let w = workload(1, 100, 1, SimDuration::ZERO);
        let max_delay = SimDuration::from_us(20);
        let r = simulate(
            CircuitPolicy::Batch {
                threshold_bytes: 1_000_000,
                max_delay,
            },
            params,
            &w,
        );
        assert_eq!(r.delivered, 1);
        let lat = r.latency.mean();
        assert!(lat >= max_delay.as_secs_f64());
        assert!(
            lat < max_delay.as_secs_f64() + 5e-6,
            "age flush fired: {lat}"
        );
    }

    #[test]
    fn everything_is_delivered_under_random_traffic() {
        let params = HostParams::default();
        let mut rng = SimRng::seed_from_u64(7);
        let w: Vec<Message> = (0..500)
            .map(|_| Message {
                dst: PeerId(rng.gen_range_u64(8) as u32),
                bytes: 100 + rng.gen_range_u64(1_000_000),
                enqueued: SimTime::from_ps(rng.gen_range_u64(1_000_000_000)),
            })
            .collect();
        let mut sorted = w.clone();
        sorted.sort_by_key(|m| m.enqueued);
        for policy in [
            CircuitPolicy::PerMessage,
            CircuitPolicy::HoldOpen,
            CircuitPolicy::Batch {
                threshold_bytes: 500_000,
                max_delay: SimDuration::from_us(100),
            },
        ] {
            let r = simulate(policy, params, &sorted);
            assert_eq!(r.delivered, 500, "{policy:?}");
            assert!(r.goodput_gbps > 0.0);
            assert!(r.latency.min().unwrap() >= 0.0);
            assert!(r.p99_latency_s >= r.latency.mean() * 0.5);
            assert!(r.p99_latency_s <= r.latency.max().unwrap() + 1e-12);
        }
    }

    #[test]
    fn goodput_approaches_line_rate_for_large_messages() {
        let params = HostParams::default();
        // 100 MB messages: setup is negligible.
        let w = workload(20, 100_000_000, 1, SimDuration::ZERO);
        let r = simulate(CircuitPolicy::HoldOpen, params, &w);
        assert!(
            r.goodput_gbps > 0.99 * params.rate.0,
            "goodput {} vs line {}",
            r.goodput_gbps,
            params.rate.0
        );
    }
}
