//! # hostnet — a circuit-switched host networking stack
//!
//! The §5 software challenge made concrete: "server-scale optics will
//! necessitate the development of new host networking software stacks
//! optimized for circuit-switching as opposed to today's packetized data
//! transmission."
//!
//! A host transmitter owns one optical circuit at a time; re-pointing it
//! costs the 3.7 µs MZI reconfiguration. [`transport::simulate`] runs a
//! message workload under three policies —
//!
//! * [`CircuitPolicy::PerMessage`] — the packet-switched habit, `r` per
//!   message;
//! * [`CircuitPolicy::HoldOpen`] — circuits persist across same-peer
//!   messages;
//! * [`CircuitPolicy::Batch`] — per-peer coalescing with an age bound,
//!   amortizing `r` against queueing delay —
//!
//! and reports latency statistics, reconfiguration counts, and goodput, so
//! the r-amortization trade-off (§5's "appropriate trade-off between
//! optical reconfiguration delay and end-to-end performance") can be
//! measured rather than asserted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod transport;

pub use message::{Delivery, Message, PeerId, PeerQueue};
pub use transport::{simulate, CircuitPolicy, HostParams, TransportReport};
