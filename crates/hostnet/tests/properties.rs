//! Property-based tests of the circuit-switched transport: conservation,
//! causality, and policy dominance under arbitrary workloads.

use desim::{SimDuration, SimTime};
use hostnet::{simulate, CircuitPolicy, HostParams, Message, PeerId};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = Vec<Message>> {
    prop::collection::vec((0u32..6, 1u64..1_000_000, 0u64..10_000_000), 1..80).prop_map(|v| {
        let mut msgs: Vec<Message> = v
            .into_iter()
            .map(|(dst, bytes, at_ns)| Message {
                dst: PeerId(dst),
                bytes,
                enqueued: SimTime::from_ps(at_ns * 1_000),
            })
            .collect();
        msgs.sort_by_key(|m| m.enqueued);
        msgs
    })
}

fn policies() -> [CircuitPolicy; 3] {
    [
        CircuitPolicy::PerMessage,
        CircuitPolicy::HoldOpen,
        CircuitPolicy::Batch {
            threshold_bytes: 100_000,
            max_delay: SimDuration::from_us(50),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every message is delivered exactly once, with non-negative latency,
    /// under every policy.
    #[test]
    fn delivery_conservation(w in workload_strategy()) {
        for policy in policies() {
            let r = simulate(policy, HostParams::default(), &w);
            prop_assert_eq!(r.delivered, w.len(), "{:?}", policy);
            prop_assert!(r.latency.min().unwrap_or(0.0) >= 0.0);
            prop_assert!(r.goodput_gbps >= 0.0);
        }
    }

    /// Hold-open never performs more reconfigurations than per-message.
    #[test]
    fn hold_open_dominates_per_message_reconfigs(w in workload_strategy()) {
        let params = HostParams::default();
        let per = simulate(CircuitPolicy::PerMessage, params, &w);
        let hold = simulate(CircuitPolicy::HoldOpen, params, &w);
        prop_assert!(hold.reconfigs <= per.reconfigs);
        prop_assert_eq!(per.reconfigs as usize, w.len());
        // And never a later makespan.
        prop_assert!(hold.makespan <= per.makespan);
    }

    /// The makespan is at least the serial transmission bound
    /// (Σ bytes / rate) and the latency mean is bounded by the makespan.
    #[test]
    fn makespan_bounds(w in workload_strategy()) {
        let params = HostParams::default();
        let total_bytes: u64 = w.iter().map(|m| m.bytes).sum();
        let tx_floor = params.rate.transfer_secs(total_bytes);
        for policy in policies() {
            let r = simulate(policy, params, &w);
            let first_arrival = w[0].enqueued.as_secs_f64();
            prop_assert!(
                r.makespan.as_secs_f64() + 1e-12 >= first_arrival + tx_floor,
                "{policy:?}: makespan below the serial transmission floor"
            );
            prop_assert!(r.latency.max().unwrap() <= r.makespan.as_secs_f64() + 1e-12);
        }
    }
}
