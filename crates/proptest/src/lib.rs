//! # proptest (offline shim)
//!
//! A deterministic, dependency-free re-implementation of the subset of the
//! [proptest](https://docs.rs/proptest) API this workspace uses. The build
//! environment has no registry access, so the real crate cannot be fetched;
//! this shim keeps every `tests/properties.rs` file source-compatible:
//!
//! * `proptest! { ... }` with an optional leading
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`
//! * strategies: integer/float ranges, `Just`, `any::<T>()`, tuples,
//!   `prop::collection::vec`, `.prop_map`, `prop_oneof![..]`
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!
//! Unlike the real proptest there is **no shrinking**: a failing case
//! reports its case index and the deterministic seed so it can be replayed.
//! Generation is seeded per test name (FNV-1a of the identifier) XORed with
//! `PROPTEST_SEED` when set, so runs are reproducible by default and
//! steerable when debugging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The `proptest::prelude` the test files import wholesale.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define deterministic property tests.
///
/// Mirrors proptest's macro shape: any number of `fn name(pat in strategy,
/// ...) { body }` items, each optionally attributed (`#[test]`, doc
/// comments), with an optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __rejected: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __cfg.cases {
                    let __outcome = (|__rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                        $body
                        Ok(())
                    })(&mut __rng);
                    match __outcome {
                        Ok(()) => __case += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            if __rejected > __cfg.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({})",
                                    stringify!($name),
                                    __rejected
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name),
                            __case,
                            __rng.initial_seed(),
                            msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Property-test assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms = ::std::vec::Vec::new();
        $(let arms = $crate::strategy::__push_arm(arms, $strat);)+
        $crate::strategy::Union::new(arms)
    }};
}
