//! Deterministic case runner state: configuration, RNG, and case outcomes.

use std::fmt;

/// How many cases a property runs (and how patient `prop_assume!` is).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Successful cases required for the property to pass.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject(&'static str),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(cond) => write!(f, "rejected by assumption `{cond}`"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// SplitMix64 generator: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    seed: u64,
}

impl TestRng {
    /// Deterministic RNG for a named test: FNV-1a of the test name, XORed
    /// with the `PROPTEST_SEED` environment variable when present.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.trim().parse::<u64>() {
                h ^= v;
            }
        }
        TestRng { state: h, seed: h }
    }

    /// The seed this generator started from (for failure replay).
    pub fn initial_seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("beta");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::for_test("unit");
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
