//! Value-generation strategies: the object-safe [`Strategy`] trait and the
//! combinators the workspace's property tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object-safe: combinators carry `where Self: Sized` so
/// `Box<dyn Strategy<Value = T>>` works (needed by [`crate::prop_oneof!`]).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics when empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Box an arm onto a [`Union`] arm list. A generic fn (not an `as` cast) so
/// type inference unifies every arm's `Value` before integer literals
/// default — `prop_oneof![Just(2usize), Just(4)]` infers `4: usize`.
#[doc(hidden)]
pub fn __push_arm<S>(
    mut arms: Vec<Box<dyn Strategy<Value = S::Value>>>,
    arm: S,
) -> Vec<Box<dyn Strategy<Value = S::Value>>>
where
    S: Strategy + 'static,
{
    arms.push(Box::new(arm));
    arms
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy generating any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                let span = (e - s + 1) as u64;
                (s + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (self.end() - self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (1u64..=4).generate(&mut r);
            assert!((1..=4).contains(&w));
            let f = (-2.0f64..3.0).generate(&mut r);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut r = rng();
        let s = (1usize..4, 1usize..4).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((11..34).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            Box::new(Just(1u32)) as Box<dyn Strategy<Value = u32>>,
            Box::new(Just(2u32)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn just_clones() {
        let mut r = rng();
        assert_eq!(Just(vec![1, 2]).generate(&mut r), vec![1, 2]);
    }
}
