//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `inner`-generated elements.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    inner: S,
    size: SizeRange,
}

/// `prop::collection::vec(element, size)`: vectors whose length falls in
/// `size` (a `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(inner: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        inner,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.inner.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut r = TestRng::for_test("vec-bounds");
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 7usize);
        assert_eq!(exact.generate(&mut r).len(), 7);
    }
}
