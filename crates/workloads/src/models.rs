//! A catalogue of ML models and the collective buffer sizes they induce.
//!
//! The paper's motivation (§2): models no longer fit in one accelerator, so
//! training/inference distribute across chips and synchronize gradients or
//! activations with collectives whose buffer size N is set by the model.
//! These entries give the experiments realistic N values; the cost model
//! only ever sees bytes.

/// Bytes per parameter for common training number formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// 32-bit floats.
    F32,
    /// 16-bit floats (fp16/bf16).
    F16,
    /// 8-bit formats.
    F8,
}

impl Dtype {
    /// Size of one element, bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Dtype::F32 => 4,
            Dtype::F16 => 2,
            Dtype::F8 => 1,
        }
    }
}

/// A model whose gradients are synchronized with AllReduce.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Trainable parameters.
    pub parameters: u64,
    /// Gradient number format.
    pub dtype: Dtype,
    /// For MoE models: expert count and top-k gating (dense models: None).
    pub moe: Option<(usize, usize)>,
}

impl ModelSpec {
    /// Bytes of one full-gradient AllReduce buffer.
    pub fn gradient_bytes(&self) -> u64 {
        self.parameters * self.dtype.bytes()
    }

    /// Per-chip buffer when gradients are sharded over `chips` data-parallel
    /// workers (e.g. with ZeRO-style partitioning).
    pub fn sharded_bytes(&self, chips: usize) -> u64 {
        assert!(chips >= 1);
        self.gradient_bytes() / chips as u64
    }
}

/// The catalogue used across examples and benches.
pub fn catalogue() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "resnet50",
            parameters: 25_600_000,
            dtype: Dtype::F32,
            moe: None,
        },
        ModelSpec {
            name: "gpt2-xl",
            parameters: 1_500_000_000,
            dtype: Dtype::F16,
            moe: None,
        },
        ModelSpec {
            name: "llama-70b",
            parameters: 70_000_000_000,
            dtype: Dtype::F16,
            moe: None,
        },
        ModelSpec {
            name: "gpt3-175b",
            parameters: 175_000_000_000,
            dtype: Dtype::F16,
            moe: None,
        },
        ModelSpec {
            name: "mt-nlg-530b",
            parameters: 530_000_000_000,
            dtype: Dtype::F16,
            moe: None,
        },
        ModelSpec {
            name: "switch-moe-1.6t",
            parameters: 1_600_000_000_000,
            dtype: Dtype::F16,
            moe: Some((64, 1)),
        },
        ModelSpec {
            name: "mixtral-8x7b",
            parameters: 46_700_000_000,
            dtype: Dtype::F16,
            moe: Some((8, 2)),
        },
    ]
}

/// Look a model up by name.
pub fn by_name(name: &str) -> Option<ModelSpec> {
    catalogue().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_nonempty_and_unique() {
        let cat = catalogue();
        assert!(cat.len() >= 5);
        let mut names: Vec<_> = cat.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn gradient_sizes() {
        let gpt3 = by_name("gpt3-175b").unwrap();
        assert_eq!(gpt3.gradient_bytes(), 350_000_000_000); // 350 GB at fp16
        let resnet = by_name("resnet50").unwrap();
        assert_eq!(resnet.gradient_bytes(), 102_400_000);
    }

    #[test]
    fn sharding_divides() {
        let m = by_name("llama-70b").unwrap();
        assert_eq!(m.sharded_bytes(8), m.gradient_bytes() / 8);
        assert_eq!(m.sharded_bytes(1), m.gradient_bytes());
    }

    #[test]
    fn moe_models_are_flagged() {
        assert!(by_name("mixtral-8x7b").unwrap().moe.is_some());
        assert!(by_name("gpt3-175b").unwrap().moe.is_none());
        assert!(by_name("nonexistent").is_none());
    }
}
