//! Synthetic distributed-training jobs.
//!
//! A training iteration alternates compute with a gradient AllReduce over
//! the job's slice; "accelerators remain idle during training for large
//! fractions of the time waiting for inter-accelerator communication to
//! complete" (§2) — this module makes that fraction measurable under each
//! interconnect mode.

use collectives::{
    bucket_all_reduce, execute, ring_all_reduce, snake_order, CostParams, Mode, Schedule,
};
use desim::SimDuration;
use topo::{Dim, Shape3, Slice, Torus};

use crate::models::ModelSpec;

/// How the job lays its AllReduce onto the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveStrategy {
    /// One ring over every chip (snake order) — what a sub-rack slice is
    /// reduced to electrically (Table 1).
    SingleRing,
    /// The multi-dimensional bucket algorithm over the slice's usable
    /// dimensions (Table 2).
    Bucket,
}

/// A data-parallel training job on one slice.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    /// The model being trained.
    pub model: ModelSpec,
    /// The slice it runs on.
    pub slice: Slice,
    /// Compute time per iteration (forward + backward), excluding
    /// communication.
    pub compute: SimDuration,
    /// Iterations to run.
    pub iterations: u32,
    /// Collective layout.
    pub strategy: CollectiveStrategy,
}

/// Per-iteration and whole-job timing under one interconnect mode.
#[derive(Debug, Clone, Copy)]
pub struct JobTiming {
    /// Communication time of one iteration's AllReduce.
    pub comm_per_iter: SimDuration,
    /// Total job time: iterations × (compute + comm).
    pub total: SimDuration,
    /// Fraction of wall-clock spent communicating.
    pub comm_fraction: f64,
}

impl TrainingJob {
    /// The AllReduce schedule of one iteration under `mode`.
    pub fn schedule(&self, mode: Mode, rack: Shape3, params: &CostParams) -> Schedule {
        let torus = Torus::new(rack);
        let n = self.model.gradient_bytes() as f64;
        match self.strategy {
            CollectiveStrategy::SingleRing => {
                ring_all_reduce(&snake_order(&self.slice), n, mode, rack, &torus, params)
            }
            CollectiveStrategy::Bucket => {
                let dims: Vec<Dim> = self.slice.active_dims();
                bucket_all_reduce(&self.slice, &dims, n, mode, rack, &torus, params)
            }
        }
    }

    /// Execute one iteration's collective and derive whole-job timing.
    pub fn timing(&self, mode: Mode, rack: Shape3, params: &CostParams) -> JobTiming {
        let schedule = self.schedule(mode, rack, params);
        let comm = execute(&schedule, params).total;
        let per_iter = self.compute + comm;
        let total = per_iter * self.iterations as u64;
        JobTiming {
            comm_per_iter: comm,
            total,
            comm_fraction: comm.as_secs_f64() / per_iter.as_secs_f64().max(f64::MIN_POSITIVE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::by_name;
    use topo::Coord3;

    const RACK: Shape3 = Shape3::rack_4x4x4();

    fn job() -> TrainingJob {
        TrainingJob {
            model: by_name("gpt2-xl").unwrap(),
            slice: Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1)),
            compute: SimDuration::from_ms(20),
            iterations: 100,
            strategy: CollectiveStrategy::SingleRing,
        }
    }

    #[test]
    fn optics_cuts_comm_fraction() {
        let params = CostParams::default();
        let j = job();
        let elec = j.timing(Mode::Electrical, RACK, &params);
        let opt = j.timing(Mode::OpticalFullSteer, RACK, &params);
        assert!(opt.comm_per_iter < elec.comm_per_iter);
        assert!(opt.comm_fraction < elec.comm_fraction);
        assert!(opt.total < elec.total);
        // β ratio approaches 3× for this 3 GB buffer.
        let ratio = elec.comm_per_iter.as_secs_f64() / opt.comm_per_iter.as_secs_f64();
        assert!(ratio > 2.5, "comm speedup {ratio}");
    }

    #[test]
    fn bucket_strategy_runs_on_2d_slice() {
        let params = CostParams::default();
        let j = TrainingJob {
            slice: Slice::new(3, Coord3::new(0, 0, 1), Shape3::new(4, 4, 1)),
            strategy: CollectiveStrategy::Bucket,
            ..job()
        };
        let elec = j.timing(Mode::Electrical, RACK, &params);
        let opt = j.timing(Mode::OpticalStaticSplit, RACK, &params);
        let ratio = elec.comm_per_iter.as_secs_f64() / opt.comm_per_iter.as_secs_f64();
        assert!((ratio - 1.5).abs() < 0.05, "Table 2's 1.5×, got {ratio}");
    }

    #[test]
    fn total_accumulates_iterations() {
        let params = CostParams::default();
        let j = job();
        let t = j.timing(Mode::Electrical, RACK, &params);
        let expect = (j.compute + t.comm_per_iter) * 100;
        assert_eq!(t.total, expect);
        assert!(t.comm_fraction > 0.0 && t.comm_fraction < 1.0);
    }
}
