//! Multi-tenant rack placement simulation.
//!
//! Drives the first-fit slice allocator with the arrival stream of
//! [`crate::arrivals`] on the desim kernel: jobs arrive, hold a slice for
//! their duration, and depart. The simulation measures what the paper's
//! §4.1 argument predicts operationally: a rack packed with sub-rack
//! tenants strands a large share of its electrical bandwidth that photonic
//! redirection would recover.

use crate::arrivals::JobRequest;
use desim::{Engine, SimDuration, SimTime};
use topo::{Occupancy, Shape3, SliceId};

/// Which allocator the simulation drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest-origin placement.
    FirstFit,
    /// Snuggest placement (keeps free space contiguous).
    BestFit,
}

/// Outcome of a placement simulation.
#[derive(Debug, Clone, Copy)]
pub struct PlacementReport {
    /// Jobs that got a slice.
    pub accepted: u32,
    /// Jobs rejected for lack of space.
    pub rejected: u32,
    /// Time-averaged fraction of chips occupied.
    pub mean_occupancy: f64,
    /// Time-averaged electrically usable bandwidth fraction across occupied
    /// chips (Fig 5c's metric, averaged over the run).
    pub mean_electrical_utilization: f64,
    /// The same with photonic redirection (1.0 for every communicating
    /// slice).
    pub mean_optical_utilization: f64,
    /// Simulated horizon.
    pub horizon: SimDuration,
}

struct Model {
    occ: Occupancy,
    accepted: u32,
    rejected: u32,
    /// Integrals over time of (occupied chips, elec-weighted chips,
    /// optical-weighted chips), plus the last sample instant.
    occ_integral: f64,
    elec_integral: f64,
    opt_integral: f64,
    last: SimTime,
}

impl Model {
    fn sample(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        if dt > 0.0 {
            let shape = self.occ.shape();
            let total = shape.volume() as f64;
            let mut occupied = 0.0;
            let mut elec = 0.0;
            let mut opt = 0.0;
            for s in self.occ.slices() {
                occupied += s.chips() as f64;
                elec += s.chips() as f64 * s.utilization_electrical(shape);
                opt += s.chips() as f64 * s.utilization_optical();
            }
            self.occ_integral += dt * occupied / total;
            if occupied > 0.0 {
                self.elec_integral += dt * elec / occupied;
                self.opt_integral += dt * opt / occupied;
            } else {
                // An empty rack strands nothing; count it as neutral by
                // carrying the previous ratios forward implicitly (skip).
            }
        }
        self.last = now;
    }
}

/// Run the placement simulation over `jobs` on a rack of `shape` with the
/// first-fit allocator.
pub fn simulate(shape: Shape3, jobs: &[JobRequest]) -> PlacementReport {
    simulate_with_policy(shape, jobs, PlacementPolicy::FirstFit)
}

/// [`simulate`] with an explicit allocator policy.
pub fn simulate_with_policy(
    shape: Shape3,
    jobs: &[JobRequest],
    policy: PlacementPolicy,
) -> PlacementReport {
    let mut engine: Engine<Model> = Engine::new();
    let mut model = Model {
        occ: Occupancy::new(shape),
        accepted: 0,
        rejected: 0,
        occ_integral: 0.0,
        elec_integral: 0.0,
        opt_integral: 0.0,
        last: SimTime::ZERO,
    };

    for (i, job) in jobs.iter().enumerate() {
        let shape_req = job.shape;
        let duration = job.duration;
        engine.schedule_at(job.arrival, move |m: &mut Model, e| {
            m.sample(e.now());
            let placed = match policy {
                PlacementPolicy::FirstFit => m.occ.place_first_fit(i as u32, shape_req),
                PlacementPolicy::BestFit => m.occ.place_best_fit(i as u32, shape_req),
            };
            match placed {
                Ok(_) => {
                    m.accepted += 1;
                    e.schedule_in(duration, move |m: &mut Model, e| {
                        m.sample(e.now());
                        m.occ.remove(SliceId(i as u32)).expect("job holds a slice");
                    });
                }
                Err(_) => m.rejected += 1,
            }
        });
    }
    engine.run(&mut model);
    let horizon = engine.now().since_origin();
    let secs = horizon.as_secs_f64().max(f64::MIN_POSITIVE);
    // Utilization integrals only accumulated over non-empty spans; use the
    // busy time as their denominator.
    let busy = model.occ_integral; // ∫ occupancy dt, a lower bound on busy time
    let busy_secs = if busy > 0.0 { secs } else { f64::MIN_POSITIVE };
    PlacementReport {
        accepted: model.accepted,
        rejected: model.rejected,
        mean_occupancy: model.occ_integral / secs,
        mean_electrical_utilization: model.elec_integral / busy_secs,
        mean_optical_utilization: model.opt_integral / busy_secs,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{generate, ArrivalParams};

    fn params_busy() -> ArrivalParams {
        ArrivalParams {
            mean_interarrival: SimDuration::from_secs(30),
            mean_duration: SimDuration::from_secs(3_600),
            small_job_skew: 1.0,
        }
    }

    #[test]
    fn simulation_accounts_every_job() {
        let jobs = generate(200, &params_busy(), 8);
        let r = simulate(Shape3::rack_4x4x4(), &jobs);
        assert_eq!(r.accepted + r.rejected, 200);
        assert!(r.accepted > 0);
        assert!(r.horizon > SimDuration::ZERO);
        assert!((0.0..=1.0).contains(&r.mean_occupancy));
    }

    #[test]
    fn saturated_rack_rejects_jobs() {
        // Very long jobs with fast arrivals: the rack fills and stays full.
        let jobs = generate(
            300,
            &ArrivalParams {
                mean_interarrival: SimDuration::from_secs(5),
                mean_duration: SimDuration::from_secs(500_000),
                small_job_skew: 0.5,
            },
            9,
        );
        let r = simulate(Shape3::rack_4x4x4(), &jobs);
        assert!(r.rejected > 0, "saturation must reject");
        assert!(r.mean_occupancy > 0.3);
    }

    #[test]
    fn electrical_strands_bandwidth_optical_does_not() {
        let jobs = generate(500, &params_busy(), 10);
        let r = simulate(Shape3::rack_4x4x4(), &jobs);
        // The small-slice mix can never fully use electrical bandwidth...
        assert!(
            r.mean_electrical_utilization < 0.8,
            "elec {}",
            r.mean_electrical_utilization
        );
        // ...while redirection recovers (nearly) everything; only 1×1×1
        // slices (no communication) count as zero.
        assert!(
            r.mean_optical_utilization > r.mean_electrical_utilization + 0.2,
            "opt {} vs elec {}",
            r.mean_optical_utilization,
            r.mean_electrical_utilization
        );
    }

    #[test]
    fn best_fit_accepts_at_least_as_many_under_churn() {
        // Under a churning mix, snugger packing should never accept fewer
        // jobs than first-fit (and often more).
        let jobs = generate(
            600,
            &ArrivalParams {
                mean_interarrival: SimDuration::from_secs(20),
                mean_duration: SimDuration::from_secs(2_000),
                small_job_skew: 0.5,
            },
            21,
        );
        let ff = simulate_with_policy(Shape3::rack_4x4x4(), &jobs, PlacementPolicy::FirstFit);
        let bf = simulate_with_policy(Shape3::rack_4x4x4(), &jobs, PlacementPolicy::BestFit);
        assert_eq!(ff.accepted + ff.rejected, 600);
        assert_eq!(bf.accepted + bf.rejected, 600);
        // Allow a small tolerance: best-fit is a heuristic, not an oracle.
        assert!(
            bf.accepted as i64 >= ff.accepted as i64 - 5,
            "best-fit {} vs first-fit {}",
            bf.accepted,
            ff.accepted
        );
    }

    #[test]
    fn deterministic_in_inputs() {
        let jobs = generate(100, &params_busy(), 77);
        let a = simulate(Shape3::rack_4x4x4(), &jobs);
        let b = simulate(Shape3::rack_4x4x4(), &jobs);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.mean_occupancy, b.mean_occupancy);
    }
}
