//! Multi-tenant job arrivals and slice-shape demand.
//!
//! §4.1 observes that "TPU slices allocated to customers or tenants do not
//! always span multiple racks. Most inference workloads need smaller
//! slices" — so racks fill with sub-rack slices, exactly the regime where
//! electrical bandwidth strands. This generator produces deterministic
//! Poisson arrivals over the standard TPUv4 slice shapes for the Fig 5c
//! and placement experiments.

use desim::{SimDuration, SimRng, SimTime};
use topo::Shape3;

/// The regular slice shapes tenants may request (axis-aligned tori, §4.1).
pub const STANDARD_SHAPES: [Shape3; 6] = [
    Shape3::new(4, 2, 1),
    Shape3::new(2, 2, 1),
    Shape3::new(4, 4, 1),
    Shape3::new(4, 4, 2),
    Shape3::new(2, 2, 2),
    Shape3::new(4, 4, 4),
];

/// One tenant job request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRequest {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Requested slice shape.
    pub shape: Shape3,
    /// How long the job holds the slice.
    pub duration: SimDuration,
}

/// Parameters of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalParams {
    /// Mean inter-arrival time.
    pub mean_interarrival: SimDuration,
    /// Mean job duration (exponentially distributed).
    pub mean_duration: SimDuration,
    /// Weight toward smaller shapes: probability mass is proportional to
    /// `1/volume^skew`. 0 = uniform over shapes; 1 ≈ mostly small slices
    /// (the inference-heavy mix the paper describes).
    pub small_job_skew: f64,
}

impl Default for ArrivalParams {
    fn default() -> Self {
        ArrivalParams {
            mean_interarrival: SimDuration::from_secs(60),
            mean_duration: SimDuration::from_secs(3_600),
            small_job_skew: 1.0,
        }
    }
}

/// Generate `n` job requests, deterministic in `seed`.
pub fn generate(n: usize, params: &ArrivalParams, seed: u64) -> Vec<JobRequest> {
    let mut rng = SimRng::seed_from_u64(seed);
    let weights: Vec<f64> = STANDARD_SHAPES
        .iter()
        .map(|s| 1.0 / (s.volume() as f64).powf(params.small_job_skew))
        .collect();
    let total_w: f64 = weights.iter().sum();

    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let gap = rng.exponential(1.0 / params.mean_interarrival.as_secs_f64());
        t += SimDuration::from_secs_f64(gap);
        let mut x = rng.next_f64() * total_w;
        let mut shape = STANDARD_SHAPES[0];
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                shape = STANDARD_SHAPES[i];
                break;
            }
            x -= w;
            shape = STANDARD_SHAPES[i];
        }
        let duration =
            SimDuration::from_secs_f64(rng.exponential(1.0 / params.mean_duration.as_secs_f64()));
        out.push(JobRequest {
            arrival: t,
            shape,
            duration,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Dim;

    #[test]
    fn arrivals_are_ordered_and_deterministic() {
        let p = ArrivalParams::default();
        let a = generate(200, &p, 5);
        let b = generate(200, &p, 5);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn interarrival_mean_is_respected() {
        let p = ArrivalParams::default();
        let jobs = generate(5_000, &p, 11);
        let span = jobs.last().unwrap().arrival.as_secs_f64();
        let mean_gap = span / 5_000.0;
        assert!(
            (mean_gap - 60.0).abs() < 5.0,
            "mean inter-arrival ≈ 60 s, got {mean_gap}"
        );
    }

    #[test]
    fn skew_prefers_small_slices() {
        let small_heavy = generate(
            5_000,
            &ArrivalParams {
                small_job_skew: 1.5,
                ..ArrivalParams::default()
            },
            7,
        );
        let uniform = generate(
            5_000,
            &ArrivalParams {
                small_job_skew: 0.0,
                ..ArrivalParams::default()
            },
            7,
        );
        let mean_vol = |jobs: &[JobRequest]| {
            jobs.iter().map(|j| j.shape.volume() as f64).sum::<f64>() / jobs.len() as f64
        };
        assert!(mean_vol(&small_heavy) < mean_vol(&uniform) / 2.0);
    }

    #[test]
    fn all_shapes_are_valid_sub_rack_tori() {
        for s in STANDARD_SHAPES {
            for d in Dim::ALL {
                assert!(s.extent(d) >= 1 && s.extent(d) <= 4);
            }
            assert!(s.volume() <= 64);
        }
    }
}
