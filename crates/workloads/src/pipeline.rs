//! Pipeline-parallel training traffic.
//!
//! Besides data-parallel AllReduce (§2's headline collective), large models
//! are split into pipeline stages whose activations and gradients flow
//! point-to-point between consecutive stages. This traffic is where
//! photonic circuits shine brightest: each stage pair needs exactly one
//! persistent circuit, established once (`r`) and then ridden for every
//! microbatch — while electrically the stage chain shares the torus with
//! everything else.

use collectives::CostParams;
use desim::SimDuration;
use topo::{max_min_rates_with_chips, Coord3, Flow, Torus};

/// A pipeline-parallel job: `stages` chips in a chain, each microbatch
/// moving `activation_bytes` forward (and the same backward).
#[derive(Debug, Clone)]
pub struct PipelineJob {
    /// Stage chips in pipeline order.
    pub stages: Vec<Coord3>,
    /// Activation payload per microbatch per stage boundary.
    pub activation_bytes: u64,
    /// Microbatches per training step.
    pub microbatches: u32,
}

/// Timing of one training step's pipeline traffic.
#[derive(Debug, Clone, Copy)]
pub struct PipelineTiming {
    /// Time for all microbatches to traverse all stage boundaries
    /// (communication only; 1F1B-style full overlap across boundaries).
    pub comm_total: SimDuration,
    /// One-time circuit setup (optical only).
    pub setup: SimDuration,
    /// Per-boundary bandwidth achieved.
    pub boundary_gbps: f64,
}

impl PipelineJob {
    /// Stage-boundary count.
    pub fn boundaries(&self) -> usize {
        self.stages.len().saturating_sub(1)
    }

    /// Optical timing: one dedicated circuit per boundary (both directions
    /// presumed symmetric), established once, full `lanes × 224 Gb/s` each.
    pub fn timing_optical(&self, lanes: usize, params: &CostParams) -> PipelineTiming {
        assert!(self.boundaries() >= 1, "a pipeline needs two stages");
        let gbps = lanes as f64 * 224.0;
        // All boundaries run concurrently on dedicated circuits; the step's
        // communication time is the per-boundary serial microbatch stream.
        let per_mb = self.activation_bytes as f64 * 8.0 / (gbps * 1e9);
        let comm = per_mb * self.microbatches as f64;
        PipelineTiming {
            comm_total: params.alpha * self.microbatches as u64 + SimDuration::from_secs_f64(comm),
            setup: params.reconfig,
            boundary_gbps: gbps,
        }
    }

    /// Electrical timing: boundary transfers ride torus routes with
    /// per-link `B/3` and a full-`B` chip egress budget, sharing links
    /// max-min fairly. All boundaries stream simultaneously.
    pub fn timing_electrical(&self, torus: &Torus, params: &CostParams) -> PipelineTiming {
        assert!(self.boundaries() >= 1, "a pipeline needs two stages");
        let flows: Vec<Flow> = self
            .stages
            .windows(2)
            .map(|w| Flow {
                path: torus.route(w[0], w[1]),
                bytes: self.activation_bytes as f64 * self.microbatches as f64,
            })
            .collect();
        let link_gbps = params.chip_bandwidth.0 / 3.0;
        let chip_gbps = params.chip_bandwidth.0;
        let rates = max_min_rates_with_chips(&flows, link_gbps, chip_gbps);
        let slowest = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let bytes = self.activation_bytes as f64 * self.microbatches as f64;
        let comm = bytes * 8.0 / (slowest * 1e9);
        PipelineTiming {
            comm_total: params.alpha * self.microbatches as u64 + SimDuration::from_secs_f64(comm),
            setup: SimDuration::ZERO,
            boundary_gbps: slowest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo::Shape3;

    fn chain() -> PipelineJob {
        // An 8-stage pipeline snaking through a 4×2 footprint.
        PipelineJob {
            stages: vec![
                Coord3::new(0, 0, 0),
                Coord3::new(1, 0, 0),
                Coord3::new(2, 0, 0),
                Coord3::new(3, 0, 0),
                Coord3::new(3, 1, 0),
                Coord3::new(2, 1, 0),
                Coord3::new(1, 1, 0),
                Coord3::new(0, 1, 0),
            ],
            activation_bytes: 100_000_000,
            microbatches: 8,
        }
    }

    #[test]
    fn optical_pipeline_beats_electrical() {
        let params = CostParams::default();
        let torus = Torus::new(Shape3::rack_4x4x4());
        let job = chain();
        let o = job.timing_optical(16, &params);
        let e = job.timing_electrical(&torus, &params);
        assert!(o.comm_total < e.comm_total);
        // The electrical chain is link-limited to B/3 per boundary at best.
        assert!(e.boundary_gbps <= params.chip_bandwidth.0 / 3.0 + 1e-9);
        assert!((o.boundary_gbps - 16.0 * 224.0).abs() < 1e-9);
    }

    #[test]
    fn setup_is_one_reconfiguration_optically() {
        let params = CostParams::default();
        let o = chain().timing_optical(4, &params);
        assert!((o.setup.as_micros_f64() - 3.7).abs() < 1e-9);
    }

    #[test]
    fn adjacent_stage_chain_is_congestion_free_electrically() {
        // The snake chain uses distinct links: each boundary gets the full
        // per-link rate.
        let params = CostParams::default();
        let torus = Torus::new(Shape3::rack_4x4x4());
        let e = chain().timing_electrical(&torus, &params);
        assert!((e.boundary_gbps - params.chip_bandwidth.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn scattered_stages_congest_electrically() {
        // Non-adjacent stages route multi-hop and share links/chip egress.
        let params = CostParams::default();
        let torus = Torus::new(Shape3::rack_4x4x4());
        let job = PipelineJob {
            stages: vec![
                Coord3::new(0, 0, 0),
                Coord3::new(2, 0, 0), // 2 hops through (1,0,0)
                Coord3::new(0, 0, 0)
                    .with(topo::Dim::X, 0)
                    .with(topo::Dim::Y, 2), // multi-hop
                Coord3::new(2, 2, 0),
            ],
            activation_bytes: 100_000_000,
            microbatches: 4,
        };
        let e = job.timing_electrical(&torus, &params);
        let adj = chain().timing_electrical(&torus, &params);
        assert!(e.boundary_gbps <= adj.boundary_gbps + 1e-9);
    }

    #[test]
    fn more_microbatches_scale_comm_linearly() {
        let params = CostParams::default();
        let mut job = chain();
        let t1 = job.timing_optical(8, &params).comm_total;
        job.microbatches = 16;
        let t2 = job.timing_optical(8, &params).comm_total;
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
