//! # workloads — synthetic ML workloads for the experiments
//!
//! Converts the paper's §2 framing into concrete experiment inputs:
//!
//! * [`models`] — a catalogue of real model scales (ResNet-50 through
//!   MoE-1.6T) fixing the collective buffer size N.
//! * [`training`] — data-parallel training jobs whose per-iteration
//!   AllReduce runs under any interconnect [`collectives::Mode`], exposing
//!   the communication fraction the paper argues about.
//! * [`arrivals`] — deterministic multi-tenant job arrivals over standard
//!   sub-rack slice shapes, the demand mix behind Fig 5's packing.
//! * [`placement`] — a desim-driven allocate/hold/free simulation measuring
//!   the stranded-bandwidth gap between the interconnects over time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod models;
pub mod pipeline;
pub mod placement;
pub mod training;

pub use arrivals::{generate, ArrivalParams, JobRequest, STANDARD_SHAPES};
pub use models::{by_name, catalogue, Dtype, ModelSpec};
pub use pipeline::{PipelineJob, PipelineTiming};
pub use placement::{simulate, simulate_with_policy, PlacementPolicy, PlacementReport};
pub use training::{CollectiveStrategy, JobTiming, TrainingJob};
