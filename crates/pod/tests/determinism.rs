//! The pod crate's headline contracts, tested end to end:
//!
//! 1. **Worker-count invariance**: `--shards ∈ {1, 2, 4, 8}` produces
//!    bit-identical fingerprints AND bit-identical journals (hash and
//!    canonical record encodings), across random seeds and loads.
//! 2. **Shard containment** (verify CTL405): every admission the pod
//!    journal records stays inside one rack-group slab — and a seeded
//!    violation (a forged straddling admit) is caught.

use desim::SimDuration;
use pod::{resume_pod, run_pod, run_pod_with, PodBenchReport, PodConfig, PodLayout, PodOptions};
use proptest::prelude::*;
use verify::{check_journal, check_shard_containment, Report, RuleId};
use workloads::ArrivalParams;

fn fast(chips: usize, seed: u64, jobs: usize, failures: usize) -> PodConfig {
    PodConfig {
        chips,
        seed,
        jobs,
        failures,
        // Dense arrivals and short holds keep the horizon (and test time)
        // small while still spanning many epochs.
        epoch: SimDuration::from_secs(300),
        queue_timeout: SimDuration::from_secs(900),
        arrivals: ArrivalParams {
            mean_interarrival: SimDuration::from_secs(30),
            mean_duration: SimDuration::from_secs(600),
            ..ArrivalParams::default()
        },
        ..PodConfig::default()
    }
}

/// The ISSUE's acceptance gate, verbatim: shards ∈ {1,2,4,8} replay
/// bit-identically — fingerprint and journal equal.
#[test]
fn shard_counts_1_2_4_8_replay_bit_identically() {
    let cfg = fast(512, 42, 48, 4);
    let reference = run_pod(&cfg, 1).expect("reference run");
    for shards in [2usize, 4, 8] {
        let run = run_pod(&cfg, shards).expect("parallel run");
        assert_eq!(
            run.fingerprint, reference.fingerprint,
            "{shards}-shard fingerprint diverged from the 1-shard reference"
        );
        assert_eq!(
            run.journal.hash(),
            reference.journal.hash(),
            "{shards}-shard journal diverged"
        );
        let canon = |j: &fabricd::Journal| -> Vec<String> {
            j.records().iter().map(|r| r.canon()).collect()
        };
        assert_eq!(canon(&run.journal), canon(&reference.journal));
        assert_eq!(run.events, reference.events);
        assert_eq!(run.epochs, reference.epochs);
        assert_eq!(
            run.metrics.rejection_report_json(),
            reference.metrics.rejection_report_json()
        );
    }
}

/// The pod journal passes the full control-plane audit (CTL401–404)
/// plus shard containment (CTL405).
#[test]
fn pod_journal_passes_the_control_plane_audit() {
    let cfg = fast(512, 7, 40, 3);
    let out = run_pod(&cfg, 4).expect("run");
    let layout = PodLayout::new(cfg.chips).expect("layout");
    let mut report = check_journal(&out.journal);
    check_shard_containment(&out.journal, layout.partition().group_z(), &mut report);
    assert!(
        report.is_clean(),
        "pod journal failed the audit:\n{}",
        report.render()
    );
}

/// Seeded violation: forging one admission that straddles a shard-domain
/// boundary trips CTL405 — proof the rule can actually fire on a pod
/// journal, not just on synthetic fixtures.
#[test]
fn forged_straddling_admission_trips_ctl405() {
    use fabricd::{Journal, JournalEntry};
    use topo::{Coord3, Shape3};

    let cfg = fast(512, 7, 12, 0);
    let out = run_pod(&cfg, 2).expect("run");
    let layout = PodLayout::new(cfg.chips).expect("layout");
    let group_z = layout.partition().group_z();

    let mut forged = Journal::new(*out.journal.header());
    for r in out.journal.records() {
        forged.push(r.at, r.entry.clone());
    }
    // An admit whose Z extent crosses the first group boundary.
    forged.push(
        out.journal
            .records()
            .last()
            .map_or(desim::SimTime::ZERO, |r| r.at),
        JournalEntry::Admit {
            job: 9_999,
            origin: Coord3::new(0, 0, group_z - 1),
            extent: Shape3::new(2, 2, 2),
        },
    );

    let mut report = Report::new();
    check_shard_containment(&forged, group_z, &mut report);
    assert!(report.has(RuleId::Ctl405), "forged straddle not caught");
    assert_eq!(report.by_rule(RuleId::Ctl405).len(), 1);
}

/// A PodBenchReport built from a real run survives its own JSON.
#[test]
fn bench_report_round_trips_from_a_real_run() {
    let cfg = fast(256, 11, 20, 2);
    let out = run_pod(&cfg, 2).expect("run");
    let report = PodBenchReport::from_outcome(&out, cfg.jobs);
    let parsed = match PodBenchReport::parse(&report.to_json()) {
        Ok(p) => p,
        Err(e) => panic!("round trip failed: {e}"),
    };
    assert_eq!(parsed, report);
    assert_eq!(parsed.fingerprint, format!("{:#018x}", out.fingerprint));
    assert_eq!(parsed.journal_hash, format!("{:#018x}", out.journal.hash()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Worker-count invariance holds across random seeds and load mixes,
    /// not just the committed configuration.
    #[test]
    fn shard_invariance_holds_for_random_pods(
        seed in 0u64..1_000,
        jobs in 4usize..32,
        failures in 0usize..4,
        shards in 2usize..9,
    ) {
        let cfg = fast(256, seed, jobs, failures);
        let a = run_pod(&cfg, 1).expect("sequential");
        let b = run_pod(&cfg, shards).expect("parallel");
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.journal.hash(), b.journal.hash());
        prop_assert_eq!(a.events, b.events);
    }

    /// Every random pod journal stays shard-contained and audit-clean.
    #[test]
    fn random_pod_journals_stay_shard_contained(
        seed in 0u64..1_000,
        jobs in 4usize..24,
    ) {
        let cfg = fast(256, seed, jobs, 2);
        let out = run_pod(&cfg, 3).expect("run");
        let layout = PodLayout::new(cfg.chips).expect("layout");
        let mut report = check_journal(&out.journal);
        check_shard_containment(&out.journal, layout.partition().group_z(), &mut report);
        prop_assert!(report.is_clean(), "audit failed:\n{}", report.render());
    }

    /// Satellite 1 (pod half): the snapshot stream — every captured
    /// `PodSnapshot`, the final fingerprint, and the journal hash — is
    /// bit-identical across shards ∈ {1, 2, 4} for random seeds, loads,
    /// and snapshot cadences, compacted or not.
    #[test]
    fn pod_snapshot_stream_is_invariant_across_shards(
        seed in 0u64..1_000,
        jobs in 4usize..24,
        every in 1u64..6,
        compact in any::<bool>(),
    ) {
        let cfg = fast(256, seed, jobs, 2);
        let opts = PodOptions { snapshot_every: every, compact, crash_after_epochs: None };
        let reference = run_pod_with(&cfg, 1, &opts).expect("sequential");
        for shards in [2usize, 4] {
            let run = run_pod_with(&cfg, shards, &opts).expect("parallel");
            prop_assert_eq!(&run.snapshots, &reference.snapshots);
            prop_assert_eq!(run.fingerprint, reference.fingerprint);
            prop_assert_eq!(run.journal.hash(), reference.journal.hash());
            prop_assert_eq!(run.journal.len(), reference.journal.len());
        }
    }

    /// Satellite 2 (pod half): crash the pod campaign at a random epoch,
    /// restart from the latest snapshot (with a different worker count),
    /// and the resumed run's final fingerprint, journal hash, and logical
    /// record count equal the uninterrupted run's.
    #[test]
    fn pod_crash_restart_matches_uninterrupted_run(
        seed in 0u64..1_000,
        jobs in 4usize..24,
        every in 1u64..4,
        crash_frac in 0.2f64..0.9,
        compact in any::<bool>(),
    ) {
        let cfg = fast(256, seed, jobs, 2);
        let opts = PodOptions { snapshot_every: every, compact, crash_after_epochs: None };
        let full = run_pod_with(&cfg, 2, &opts).expect("uninterrupted");
        prop_assume!(full.epochs >= 2);

        let crash_at = ((full.epochs as f64 * crash_frac) as u64).max(1);
        let crashed = run_pod_with(&cfg, 3, &PodOptions {
            crash_after_epochs: Some(crash_at),
            ..opts
        }).expect("crashed run");

        if crashed.crashed {
            // Restartable only if a snapshot landed before the crash;
            // otherwise a fresh run IS the restart, which `full` covers.
            if let Some(snap) = crashed.snapshots.last() {
                let resumed = resume_pod(snap, 4, &opts).expect("resumed run");
                prop_assert!(!resumed.crashed);
                prop_assert_eq!(resumed.epochs, full.epochs);
                prop_assert_eq!(resumed.fingerprint, full.fingerprint);
                prop_assert_eq!(resumed.journal.hash(), full.journal.hash());
                prop_assert_eq!(resumed.journal.len(), full.journal.len());
                prop_assert_eq!(resumed.events, full.events);
                prop_assert_eq!(resumed.horizon, full.horizon);
            }
        } else {
            prop_assert_eq!(crashed.fingerprint, full.fingerprint);
        }
    }
}
