//! # pod — sharded pod-scale simulation with a deterministic pod-level
//! control plane
//!
//! The paper's baseline system is a full TPUv4 pod: 64 racks × 16 servers
//! × 4 chips = 4096 chips. A single fabricd instance drives one control
//! domain well, but pod scale needs parallel execution — and parallel
//! execution must not cost determinism. This crate shards the pod state
//! across worker threads, one shard per rack group, and keeps every run a
//! pure function of `(config, seed)`:
//!
//! - **Shard layout** ([`layout`]): the pod torus is partitioned into
//!   contiguous rack groups along Z ([`topo::RackGroupPartition`]), a pure
//!   function of the chip count — never of worker count. Each group owns
//!   its own [`fabricd::FabricState`] seeded from the pod seed by
//!   [`desim::fnv::derive_seed`]`(seed, group)`.
//! - **Epoch execution** ([`shard`]): shards advance independently inside
//!   fixed sim-time epoch windows, meeting at barriers where the pod
//!   control plane collects their journal deltas through the canonical
//!   `(time, shard, seq)` exchange order of [`desim::epoch`].
//! - **Placement policies** ([`policy`]): admission placement is a
//!   pluggable, pure `(capacity view, demand) -> PlacementDecision`
//!   layer — `GreedyBestFit` (PR 7's delegation, bit-identical),
//!   `FragAwareScored` (fragmentation-aware packing with pristine-group
//!   reservation), and `CrossGroupStitch` (per-group Z-slab legs
//!   stitched over the rack-face OCS banks, admitted atomically as one
//!   `MultiGroupAdmit` journal record).
//! - **Pod control plane** ([`ctrl`]): `PodCtrl` admits jobs against the
//!   whole torus, delegates each admission through the configured
//!   placement policy (against the capacity view of the previous
//!   barrier), and folds the shards' journals into one pod-level
//!   append-only FNV journal whose hash — combined with per-shard
//!   fingerprints in group index order — is the run fingerprint
//!   `spsim pod` asserts is identical for 1 worker and N workers.
//! - **Benchmark report** ([`report`]): the `BENCH_pod.json` format gated
//!   by `cargo xtask lint` (fingerprint exact, events/sec floor).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctrl;
pub mod layout;
pub mod policy;
pub mod report;
pub mod shard;

pub use ctrl::{resume_pod, run_pod, run_pod_with, PodConfig, PodOptions, PodOutcome, PodSnapshot};
pub use layout::{PodLayout, CHIPS_PER_RACK, POD_CHIPS, POD_RACKS};
pub use policy::{
    CapacityView, CrossGroupStitch, FragAwareScored, GreedyBestFit, PlacementDecision,
    PlacementPolicy, PolicyKind, StitchLeg,
};
pub use report::{compare_baseline, PodBenchReport, MIN_PERF_RATIO};
pub use shard::{PodEvent, ShardDomain, ShardSnapshot};
