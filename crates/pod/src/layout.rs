//! Pod geometry: how many racks, how they group into shard domains.
//!
//! The shard partition is a pure function of the chip count. `--shards`
//! (worker threads) never changes it, which is the first half of the
//! worker-count-invariance argument: 1 thread and N threads execute the
//! *same* logical domains, in the same epoch windows, with the same
//! per-domain RNG streams.

use topo::{Dim, RackGroupPartition, Shape3};

/// Chips in one TPUv4 rack (4×4×4 cube).
pub const CHIPS_PER_RACK: usize = 64;

/// The paper's baseline pod: 64 racks.
pub const POD_RACKS: usize = 64;

/// The paper's baseline pod: 4096 chips.
pub const POD_CHIPS: usize = POD_RACKS * CHIPS_PER_RACK;

/// Racks per shard domain at full pod scale.
const GROUP_RACKS: usize = 4;

/// Geometry of one pod run: total chips and the rack-group partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodLayout {
    chips: usize,
    partition: RackGroupPartition,
}

impl PodLayout {
    /// Lay out a pod of `chips` chips (must be a positive multiple of one
    /// rack). Pods of ≥16 racks shard into groups of 4 racks (the 4096-chip
    /// pod → 16 domains); smaller pods shard one rack per group so tests
    /// still exercise multiple domains.
    pub fn new(chips: usize) -> Result<PodLayout, String> {
        if chips == 0 || !chips.is_multiple_of(CHIPS_PER_RACK) {
            return Err(format!(
                "pod size must be a positive multiple of {CHIPS_PER_RACK} chips, got {chips}"
            ));
        }
        let racks = chips / CHIPS_PER_RACK;
        let group_racks = if racks >= 16 && racks.is_multiple_of(GROUP_RACKS) {
            GROUP_RACKS
        } else {
            1
        };
        let partition = RackGroupPartition::new(racks, group_racks, Shape3::rack_4x4x4())
            .ok_or_else(|| format!("cannot group {racks} racks by {group_racks}"))?;
        Ok(PodLayout { chips, partition })
    }

    /// Total chips.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Total racks.
    pub fn racks(&self) -> usize {
        self.partition.racks()
    }

    /// Shard domains.
    pub fn groups(&self) -> usize {
        self.partition.groups()
    }

    /// Racks per shard domain.
    pub fn group_racks(&self) -> usize {
        self.partition.group_racks()
    }

    /// Chips per shard domain.
    pub fn group_chips(&self) -> usize {
        self.partition.group_shape().volume()
    }

    /// The rack-group partition (coordinate mapping, containment).
    pub fn partition(&self) -> &RackGroupPartition {
        &self.partition
    }

    /// Shape of the composed pod torus (racks joined along Z).
    pub fn pod_shape(&self) -> Shape3 {
        let g = self.partition.group_shape();
        Shape3::new(
            g.extent(Dim::X),
            g.extent(Dim::Y),
            self.partition.group_z() * self.groups(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pod_is_16_domains_of_4_racks() {
        let l = PodLayout::new(POD_CHIPS).expect("4096 chips lay out");
        assert_eq!(l.racks(), 64);
        assert_eq!(l.groups(), 16);
        assert_eq!(l.group_racks(), 4);
        assert_eq!(l.group_chips(), 256);
        assert_eq!(l.pod_shape(), Shape3::new(4, 4, 256));
    }

    #[test]
    fn small_pods_shard_per_rack() {
        let l = PodLayout::new(512).expect("8 racks lay out");
        assert_eq!(l.groups(), 8);
        assert_eq!(l.group_racks(), 1);
        assert_eq!(l.group_chips(), 64);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(PodLayout::new(0).is_err());
        assert!(PodLayout::new(100).is_err());
    }
}
