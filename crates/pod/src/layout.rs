//! Pod geometry: how many racks, how they group into shard domains.
//!
//! The shard partition is a pure function of the chip count. `--shards`
//! (worker threads) never changes it, which is the first half of the
//! worker-count-invariance argument: 1 thread and N threads execute the
//! *same* logical domains, in the same epoch windows, with the same
//! per-domain RNG streams.

use lightpath::{FabricError, TopoFault};
use topo::{Dim, RackGroupPartition, Shape3};

/// Chips in one TPUv4 rack (4×4×4 cube).
pub const CHIPS_PER_RACK: usize = 64;

/// The paper's baseline pod: 64 racks.
pub const POD_RACKS: usize = 64;

/// The paper's baseline pod: 4096 chips.
pub const POD_CHIPS: usize = POD_RACKS * CHIPS_PER_RACK;

/// Racks per shard domain at full pod scale.
const GROUP_RACKS: usize = 4;

/// Geometry of one pod run: total chips and the rack-group partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodLayout {
    chips: usize,
    partition: RackGroupPartition,
}

impl PodLayout {
    /// Lay out a pod of `chips` chips (must be a positive multiple of one
    /// rack). Pods of ≥16 racks shard into groups of up to 4 racks — the
    /// largest divisor of the rack count, so the 4096-chip pod is 16
    /// domains of 4 racks, an 18-rack pod is 6 domains of 3, and a prime
    /// rack count degrades to one rack per group. The partition is always
    /// **total**: `groups × group_racks == racks`, never a truncation.
    /// Degenerate sizes (zero, or a partial rack) are rejected with a
    /// structured [`FabricError`] (`topo/degenerate-layout`).
    pub fn new(chips: usize) -> Result<PodLayout, FabricError> {
        let degenerate = || FabricError::new(TopoFault::DegenerateLayout { chips });
        if chips == 0 || !chips.is_multiple_of(CHIPS_PER_RACK) {
            return Err(degenerate());
        }
        let racks = chips / CHIPS_PER_RACK;
        let group_racks = if racks >= 16 {
            // Largest group size ≤ GROUP_RACKS that divides the rack
            // count exactly — remainder racks must never be dropped.
            (1..=GROUP_RACKS)
                .rev()
                .find(|g| racks.is_multiple_of(*g))
                .unwrap_or(1)
        } else {
            1
        };
        let partition = RackGroupPartition::new(racks, group_racks, Shape3::rack_4x4x4())
            .ok_or_else(degenerate)?;
        Ok(PodLayout { chips, partition })
    }

    /// Total chips.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Total racks.
    pub fn racks(&self) -> usize {
        self.partition.racks()
    }

    /// Shard domains.
    pub fn groups(&self) -> usize {
        self.partition.groups()
    }

    /// Racks per shard domain.
    pub fn group_racks(&self) -> usize {
        self.partition.group_racks()
    }

    /// Chips per shard domain.
    pub fn group_chips(&self) -> usize {
        self.partition.group_shape().volume()
    }

    /// The rack-group partition (coordinate mapping, containment).
    pub fn partition(&self) -> &RackGroupPartition {
        &self.partition
    }

    /// Shape of the composed pod torus (racks joined along Z).
    pub fn pod_shape(&self) -> Shape3 {
        let g = self.partition.group_shape();
        Shape3::new(
            g.extent(Dim::X),
            g.extent(Dim::Y),
            self.partition.group_z() * self.groups(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pod_is_16_domains_of_4_racks() {
        let l = PodLayout::new(POD_CHIPS).expect("4096 chips lay out");
        assert_eq!(l.racks(), 64);
        assert_eq!(l.groups(), 16);
        assert_eq!(l.group_racks(), 4);
        assert_eq!(l.group_chips(), 256);
        assert_eq!(l.pod_shape(), Shape3::new(4, 4, 256));
    }

    #[test]
    fn small_pods_shard_per_rack() {
        let l = PodLayout::new(512).expect("8 racks lay out");
        assert_eq!(l.groups(), 8);
        assert_eq!(l.group_racks(), 1);
        assert_eq!(l.group_chips(), 64);
    }

    #[test]
    fn remainder_rack_counts_partition_totally() {
        // 18 racks: not a multiple of 4 — the largest divisor ≤ 4 is 3.
        // The old layout fell all the way to 18 one-rack domains.
        let l = PodLayout::new(18 * CHIPS_PER_RACK).expect("18 racks lay out");
        assert_eq!(l.groups(), 6);
        assert_eq!(l.group_racks(), 3);
        // 22 racks: largest divisor ≤ 4 is 2.
        let l = PodLayout::new(22 * CHIPS_PER_RACK).expect("22 racks lay out");
        assert_eq!(l.groups(), 11);
        assert_eq!(l.group_racks(), 2);
        // 17 racks: prime — one rack per group is the only total split.
        let l = PodLayout::new(17 * CHIPS_PER_RACK).expect("17 racks lay out");
        assert_eq!(l.groups(), 17);
        assert_eq!(l.group_racks(), 1);
        // The partition is always total: no chip silently truncated.
        for racks in [16usize, 17, 18, 20, 22, 36, 64] {
            let l = PodLayout::new(racks * CHIPS_PER_RACK).expect("lays out");
            assert_eq!(l.groups() * l.group_racks(), l.racks(), "{racks} racks");
            assert_eq!(l.groups() * l.group_chips(), l.chips(), "{racks} racks");
            assert_eq!(l.pod_shape().volume(), l.chips(), "{racks} racks");
        }
    }

    #[test]
    fn degenerate_sizes_are_structured_faults() {
        for chips in [0usize, 100, CHIPS_PER_RACK - 1, CHIPS_PER_RACK + 1] {
            let err = PodLayout::new(chips).expect_err("degenerate");
            assert_eq!(err.code(), "topo/degenerate-layout", "{chips} chips");
            assert!(
                lightpath::FabricError::is_valid_code(err.code()),
                "registered code"
            );
            assert!(err.to_string().contains(&chips.to_string()), "{err}");
        }
    }
}
