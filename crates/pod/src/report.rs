//! `BENCH_pod.json`: the committed pod benchmark baseline.
//!
//! Same contract as the sweep baseline: the workspace has no serde, so
//! the report is a flat hand-rolled JSON object plus a tolerant extractor
//! that reads back exactly what [`PodBenchReport::to_json`] writes.
//! `cargo xtask lint` re-runs the pod smoke configuration and gates on
//! it — **fingerprint, journal hash, and every count match exactly**
//! (determinism), and **events/sec may not regress below
//! [`MIN_PERF_RATIO`] × baseline**.

use crate::ctrl::PodOutcome;

/// Throughput may not drop below this fraction of the baseline.
pub const MIN_PERF_RATIO: f64 = 0.1;

/// The pod benchmark summary that is serialized, committed, and gated on.
#[derive(Debug, Clone, PartialEq)]
pub struct PodBenchReport {
    /// Total chips simulated.
    pub chips: u64,
    /// Shard domains in the partition.
    pub groups: u64,
    /// Worker threads of the recorded run (informational).
    pub shards: u64,
    /// Epoch windows executed.
    pub epochs: u64,
    /// Jobs in the arrival trace.
    pub jobs: u64,
    /// Run fingerprint, hex with 0x prefix (worker-count invariant).
    pub fingerprint: String,
    /// Pod journal hash, hex with 0x prefix.
    pub journal_hash: String,
    /// Pod journal records.
    pub journal_records: u64,
    /// Local events executed across all domains.
    pub events: u64,
    /// Wall-clock seconds of the recorded run.
    pub wall_s: f64,
    /// Events per wall-clock second — the gated throughput.
    pub events_per_sec: f64,
    /// Plan-library stamps across all domains (deterministic, gated).
    pub plan_hits: u64,
    /// Plan-library fresh captures across all domains.
    pub plan_misses: u64,
    /// Plan-library occupancy-guard fallbacks to fresh routing.
    pub plan_fallbacks: u64,
    /// Plan-library FIFO evictions.
    pub plan_evictions: u64,
    /// Circuits programmed via stamping (no search, no re-budgeting).
    pub plan_stamped_circuits: u64,
    /// Cross-plan cache stamps across all domains.
    pub cross_hits: u64,
    /// Cross-plan fresh captures across all domains.
    pub cross_misses: u64,
    /// Cross-plan witness-guard fallbacks to fresh routing.
    pub cross_fallbacks: u64,
    /// Placement policy of the recorded run (`greedy` / `frag` / `stitch`).
    pub policy: String,
    /// Cross-group stitched jobs admitted (deterministic, gated).
    pub stitch_admits: u64,
    /// Per-group legs admitted across all stitches (incl. rolled back).
    pub stitch_legs: u64,
    /// Legs evicted by failed all-or-nothing stitch admissions.
    pub stitch_rollbacks: u64,
}

impl PodBenchReport {
    /// Summarize a finished run.
    pub fn from_outcome(out: &PodOutcome, jobs: usize) -> PodBenchReport {
        PodBenchReport {
            chips: out.journal.header().shape.volume() as u64,
            groups: out.groups as u64,
            shards: out.shards as u64,
            epochs: out.epochs,
            jobs: jobs as u64,
            fingerprint: format!("{:#018x}", out.fingerprint),
            journal_hash: format!("{:#018x}", out.journal.hash()),
            journal_records: out.journal.len() as u64,
            events: out.events,
            wall_s: out.wall_s,
            events_per_sec: out.events_per_sec,
            plan_hits: out.route.plan.hits,
            plan_misses: out.route.plan.misses,
            plan_fallbacks: out.route.plan.fallbacks,
            plan_evictions: out.route.plan.evictions,
            plan_stamped_circuits: out.route.plan.stamped_circuits,
            cross_hits: out.route.cross.hits,
            cross_misses: out.route.cross.misses,
            cross_fallbacks: out.route.cross.fallbacks,
            policy: out.policy.name().to_string(),
            stitch_admits: out.metrics.counter("jobs.stitched"),
            stitch_legs: out.metrics.counter("stitch.legs"),
            stitch_rollbacks: out.metrics.counter("stitch.rollbacks"),
        }
    }

    /// Serialize to the committed JSON form (stable key order). Floats use
    /// Rust's shortest round-trip form so `parse(to_json(r)) == r`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"chips\": {},\n  \"groups\": {},\n  \"shards\": {},\n  \
             \"epochs\": {},\n  \"jobs\": {},\n  \"fingerprint\": \"{}\",\n  \
             \"journal_hash\": \"{}\",\n  \"journal_records\": {},\n  \
             \"events\": {},\n  \"wall_s\": {},\n  \"events_per_sec\": {},\n  \
             \"plan_hits\": {},\n  \"plan_misses\": {},\n  \"plan_fallbacks\": {},\n  \
             \"plan_evictions\": {},\n  \"plan_stamped_circuits\": {},\n  \
             \"cross_hits\": {},\n  \"cross_misses\": {},\n  \"cross_fallbacks\": {},\n  \
             \"policy\": \"{}\",\n  \"stitch_admits\": {},\n  \"stitch_legs\": {},\n  \
             \"stitch_rollbacks\": {}\n}}\n",
            self.chips,
            self.groups,
            self.shards,
            self.epochs,
            self.jobs,
            self.fingerprint,
            self.journal_hash,
            self.journal_records,
            self.events,
            self.wall_s,
            self.events_per_sec,
            self.plan_hits,
            self.plan_misses,
            self.plan_fallbacks,
            self.plan_evictions,
            self.plan_stamped_circuits,
            self.cross_hits,
            self.cross_misses,
            self.cross_fallbacks,
            self.policy,
            self.stitch_admits,
            self.stitch_legs,
            self.stitch_rollbacks,
        )
    }

    /// Parse the JSON form produced by [`to_json`](Self::to_json).
    pub fn parse(text: &str) -> Result<PodBenchReport, String> {
        Ok(PodBenchReport {
            chips: json_u64(text, "chips")?,
            groups: json_u64(text, "groups")?,
            shards: json_u64(text, "shards")?,
            epochs: json_u64(text, "epochs")?,
            jobs: json_u64(text, "jobs")?,
            fingerprint: json_str(text, "fingerprint")?,
            journal_hash: json_str(text, "journal_hash")?,
            journal_records: json_u64(text, "journal_records")?,
            events: json_u64(text, "events")?,
            wall_s: json_f64(text, "wall_s")?,
            events_per_sec: json_f64(text, "events_per_sec")?,
            plan_hits: json_u64(text, "plan_hits")?,
            plan_misses: json_u64(text, "plan_misses")?,
            plan_fallbacks: json_u64(text, "plan_fallbacks")?,
            plan_evictions: json_u64(text, "plan_evictions")?,
            plan_stamped_circuits: json_u64(text, "plan_stamped_circuits")?,
            cross_hits: json_u64(text, "cross_hits")?,
            cross_misses: json_u64(text, "cross_misses")?,
            cross_fallbacks: json_u64(text, "cross_fallbacks")?,
            policy: json_str(text, "policy")?,
            stitch_admits: json_u64(text, "stitch_admits")?,
            stitch_legs: json_u64(text, "stitch_legs")?,
            stitch_rollbacks: json_u64(text, "stitch_rollbacks")?,
        })
    }
}

/// Compare a fresh run against the committed baseline. Returns one
/// message per violated gate; empty means the baseline holds. `shards`
/// and `wall_s` are informational and not compared.
pub fn compare_baseline(current: &PodBenchReport, baseline: &PodBenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, cur, base) in [
        ("chips", current.chips, baseline.chips),
        ("groups", current.groups, baseline.groups),
        ("epochs", current.epochs, baseline.epochs),
        ("jobs", current.jobs, baseline.jobs),
        (
            "journal_records",
            current.journal_records,
            baseline.journal_records,
        ),
        ("events", current.events, baseline.events),
        ("plan_hits", current.plan_hits, baseline.plan_hits),
        ("plan_misses", current.plan_misses, baseline.plan_misses),
        (
            "plan_fallbacks",
            current.plan_fallbacks,
            baseline.plan_fallbacks,
        ),
        (
            "plan_evictions",
            current.plan_evictions,
            baseline.plan_evictions,
        ),
        (
            "plan_stamped_circuits",
            current.plan_stamped_circuits,
            baseline.plan_stamped_circuits,
        ),
        ("cross_hits", current.cross_hits, baseline.cross_hits),
        ("cross_misses", current.cross_misses, baseline.cross_misses),
        (
            "cross_fallbacks",
            current.cross_fallbacks,
            baseline.cross_fallbacks,
        ),
        (
            "stitch_admits",
            current.stitch_admits,
            baseline.stitch_admits,
        ),
        ("stitch_legs", current.stitch_legs, baseline.stitch_legs),
        (
            "stitch_rollbacks",
            current.stitch_rollbacks,
            baseline.stitch_rollbacks,
        ),
    ] {
        if cur != base {
            failures.push(format!("{name} {cur} != baseline {base}"));
        }
    }
    if current.policy != baseline.policy {
        failures.push(format!(
            "policy {:?} != baseline {:?}",
            current.policy, baseline.policy
        ));
    }
    if current.fingerprint != baseline.fingerprint {
        failures.push(format!(
            "fingerprint {} != baseline {} — a pod simulation output changed; if intended, \
             regenerate with `spsim pod --smoke --write-baseline BENCH_pod.json`",
            current.fingerprint, baseline.fingerprint
        ));
    }
    if current.journal_hash != baseline.journal_hash {
        failures.push(format!(
            "journal hash {} != baseline {}",
            current.journal_hash, baseline.journal_hash
        ));
    }
    let floor = baseline.events_per_sec * MIN_PERF_RATIO;
    if current.events_per_sec < floor {
        failures.push(format!(
            "throughput {:.0} events/s is below {:.0} ({}x of baseline {:.0})",
            current.events_per_sec, floor, MIN_PERF_RATIO, baseline.events_per_sec
        ));
    }
    failures
}

// ------------------------------------------------- tiny JSON extraction --
// Index-free (slice-by-get) variant of the sweep extractor: this crate is
// pinned at zero detlint findings, including PAN003.

/// The raw text after `"key":`, up to the value's end (`,`, `}` or EOL).
fn json_raw<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let needle = format!("\"{key}\"");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("missing key \"{key}\""))?;
    let rest = text.get(at + needle.len()..).unwrap_or_default();
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("no ':' after \"{key}\""))?
        .trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Ok(rest.get(..end).unwrap_or(rest).trim())
}

fn json_str(text: &str, key: &str) -> Result<String, String> {
    let raw = json_raw(text, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("\"{key}\" is not a string: {raw}"))
}

fn json_u64(text: &str, key: &str) -> Result<u64, String> {
    let raw = json_raw(text, key)?;
    raw.parse()
        .map_err(|_| format!("\"{key}\" is not a u64: {raw}"))
}

fn json_f64(text: &str, key: &str) -> Result<f64, String> {
    let raw = json_raw(text, key)?;
    raw.parse()
        .map_err(|_| format!("\"{key}\" is not an f64: {raw}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PodBenchReport {
        PodBenchReport {
            chips: 4096,
            groups: 16,
            shards: 4,
            epochs: 2,
            jobs: 256,
            fingerprint: "0x00000000deadbeef".into(),
            journal_hash: "0x00000000cafef00d".into(),
            journal_records: 321,
            events: 12345,
            wall_s: 0.25,
            events_per_sec: 49380.0,
            plan_hits: 40,
            plan_misses: 12,
            plan_fallbacks: 3,
            plan_evictions: 0,
            plan_stamped_circuits: 120,
            cross_hits: 18,
            cross_misses: 6,
            cross_fallbacks: 1,
            policy: "greedy".into(),
            stitch_admits: 0,
            stitch_legs: 0,
            stitch_rollbacks: 0,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let parsed = match PodBenchReport::parse(&r.to_json()) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_missing_keys() {
        assert!(PodBenchReport::parse("{}").is_err());
        assert!(PodBenchReport::parse("{\"chips\": 4096}").is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report();
        assert!(compare_baseline(&r, &r).is_empty());
    }

    #[test]
    fn fingerprint_and_journal_drift_fail_the_gate() {
        let baseline = report();
        let mut current = report();
        current.fingerprint = "0x0000000000000001".into();
        current.journal_hash = "0x0000000000000002".into();
        let failures = compare_baseline(&current, &baseline);
        assert_eq!(failures.len(), 2);
    }

    #[test]
    fn plan_counter_drift_fails_the_gate() {
        let baseline = report();
        let mut current = report();
        current.plan_hits += 1;
        current.cross_fallbacks += 1;
        assert_eq!(compare_baseline(&current, &baseline).len(), 2);
    }

    #[test]
    fn policy_and_stitch_drift_fail_the_gate() {
        let baseline = report();
        let mut current = report();
        current.policy = "stitch".into();
        current.stitch_admits = 3;
        current.stitch_legs = 7;
        assert_eq!(compare_baseline(&current, &baseline).len(), 3);
    }

    #[test]
    fn slowdown_fails_but_noise_and_shard_count_pass() {
        let baseline = report();
        let mut slow = report();
        slow.events_per_sec = baseline.events_per_sec * 0.05;
        assert_eq!(compare_baseline(&slow, &baseline).len(), 1);
        let mut noisy = report();
        noisy.events_per_sec = baseline.events_per_sec * 0.5;
        noisy.shards = 1;
        noisy.wall_s = baseline.wall_s * 2.0;
        assert!(compare_baseline(&noisy, &baseline).is_empty());
    }
}
