//! `BENCH_pod.json`: the committed pod benchmark baseline.
//!
//! Same contract as the sweep baseline: the workspace has no serde, so
//! the report is a flat hand-rolled JSON object plus a tolerant extractor
//! that reads back exactly what [`PodBenchReport::to_json`] writes.
//! `cargo xtask lint` re-runs the pod smoke configuration and gates on
//! it — **fingerprint, journal hash, and every count match exactly**
//! (determinism), and **events/sec may not regress below
//! [`MIN_PERF_RATIO`] × baseline**.

use crate::ctrl::PodOutcome;

/// Throughput may not drop below this fraction of the baseline.
pub const MIN_PERF_RATIO: f64 = 0.1;

/// The pod benchmark summary that is serialized, committed, and gated on.
#[derive(Debug, Clone, PartialEq)]
pub struct PodBenchReport {
    /// Total chips simulated.
    pub chips: u64,
    /// Shard domains in the partition.
    pub groups: u64,
    /// Worker threads of the recorded run (informational).
    pub shards: u64,
    /// Epoch windows executed.
    pub epochs: u64,
    /// Jobs in the arrival trace.
    pub jobs: u64,
    /// Run fingerprint, hex with 0x prefix (worker-count invariant).
    pub fingerprint: String,
    /// Pod journal hash, hex with 0x prefix.
    pub journal_hash: String,
    /// Pod journal records.
    pub journal_records: u64,
    /// Local events executed across all domains.
    pub events: u64,
    /// Wall-clock seconds of the recorded run.
    pub wall_s: f64,
    /// Events per wall-clock second — the gated throughput.
    pub events_per_sec: f64,
}

impl PodBenchReport {
    /// Summarize a finished run.
    pub fn from_outcome(out: &PodOutcome, jobs: usize) -> PodBenchReport {
        PodBenchReport {
            chips: out.journal.header().shape.volume() as u64,
            groups: out.groups as u64,
            shards: out.shards as u64,
            epochs: out.epochs,
            jobs: jobs as u64,
            fingerprint: format!("{:#018x}", out.fingerprint),
            journal_hash: format!("{:#018x}", out.journal.hash()),
            journal_records: out.journal.len() as u64,
            events: out.events,
            wall_s: out.wall_s,
            events_per_sec: out.events_per_sec,
        }
    }

    /// Serialize to the committed JSON form (stable key order). Floats use
    /// Rust's shortest round-trip form so `parse(to_json(r)) == r`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"chips\": {},\n  \"groups\": {},\n  \"shards\": {},\n  \
             \"epochs\": {},\n  \"jobs\": {},\n  \"fingerprint\": \"{}\",\n  \
             \"journal_hash\": \"{}\",\n  \"journal_records\": {},\n  \
             \"events\": {},\n  \"wall_s\": {},\n  \"events_per_sec\": {}\n}}\n",
            self.chips,
            self.groups,
            self.shards,
            self.epochs,
            self.jobs,
            self.fingerprint,
            self.journal_hash,
            self.journal_records,
            self.events,
            self.wall_s,
            self.events_per_sec,
        )
    }

    /// Parse the JSON form produced by [`to_json`](Self::to_json).
    pub fn parse(text: &str) -> Result<PodBenchReport, String> {
        Ok(PodBenchReport {
            chips: json_u64(text, "chips")?,
            groups: json_u64(text, "groups")?,
            shards: json_u64(text, "shards")?,
            epochs: json_u64(text, "epochs")?,
            jobs: json_u64(text, "jobs")?,
            fingerprint: json_str(text, "fingerprint")?,
            journal_hash: json_str(text, "journal_hash")?,
            journal_records: json_u64(text, "journal_records")?,
            events: json_u64(text, "events")?,
            wall_s: json_f64(text, "wall_s")?,
            events_per_sec: json_f64(text, "events_per_sec")?,
        })
    }
}

/// Compare a fresh run against the committed baseline. Returns one
/// message per violated gate; empty means the baseline holds. `shards`
/// and `wall_s` are informational and not compared.
pub fn compare_baseline(current: &PodBenchReport, baseline: &PodBenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, cur, base) in [
        ("chips", current.chips, baseline.chips),
        ("groups", current.groups, baseline.groups),
        ("epochs", current.epochs, baseline.epochs),
        ("jobs", current.jobs, baseline.jobs),
        (
            "journal_records",
            current.journal_records,
            baseline.journal_records,
        ),
        ("events", current.events, baseline.events),
    ] {
        if cur != base {
            failures.push(format!("{name} {cur} != baseline {base}"));
        }
    }
    if current.fingerprint != baseline.fingerprint {
        failures.push(format!(
            "fingerprint {} != baseline {} — a pod simulation output changed; if intended, \
             regenerate with `spsim pod --smoke --write-baseline BENCH_pod.json`",
            current.fingerprint, baseline.fingerprint
        ));
    }
    if current.journal_hash != baseline.journal_hash {
        failures.push(format!(
            "journal hash {} != baseline {}",
            current.journal_hash, baseline.journal_hash
        ));
    }
    let floor = baseline.events_per_sec * MIN_PERF_RATIO;
    if current.events_per_sec < floor {
        failures.push(format!(
            "throughput {:.0} events/s is below {:.0} ({}x of baseline {:.0})",
            current.events_per_sec, floor, MIN_PERF_RATIO, baseline.events_per_sec
        ));
    }
    failures
}

// ------------------------------------------------- tiny JSON extraction --
// Index-free (slice-by-get) variant of the sweep extractor: this crate is
// pinned at zero detlint findings, including PAN003.

/// The raw text after `"key":`, up to the value's end (`,`, `}` or EOL).
fn json_raw<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let needle = format!("\"{key}\"");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("missing key \"{key}\""))?;
    let rest = text.get(at + needle.len()..).unwrap_or_default();
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("no ':' after \"{key}\""))?
        .trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Ok(rest.get(..end).unwrap_or(rest).trim())
}

fn json_str(text: &str, key: &str) -> Result<String, String> {
    let raw = json_raw(text, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("\"{key}\" is not a string: {raw}"))
}

fn json_u64(text: &str, key: &str) -> Result<u64, String> {
    let raw = json_raw(text, key)?;
    raw.parse()
        .map_err(|_| format!("\"{key}\" is not a u64: {raw}"))
}

fn json_f64(text: &str, key: &str) -> Result<f64, String> {
    let raw = json_raw(text, key)?;
    raw.parse()
        .map_err(|_| format!("\"{key}\" is not an f64: {raw}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PodBenchReport {
        PodBenchReport {
            chips: 4096,
            groups: 16,
            shards: 4,
            epochs: 2,
            jobs: 256,
            fingerprint: "0x00000000deadbeef".into(),
            journal_hash: "0x00000000cafef00d".into(),
            journal_records: 321,
            events: 12345,
            wall_s: 0.25,
            events_per_sec: 49380.0,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let parsed = match PodBenchReport::parse(&r.to_json()) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_missing_keys() {
        assert!(PodBenchReport::parse("{}").is_err());
        assert!(PodBenchReport::parse("{\"chips\": 4096}").is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report();
        assert!(compare_baseline(&r, &r).is_empty());
    }

    #[test]
    fn fingerprint_and_journal_drift_fail_the_gate() {
        let baseline = report();
        let mut current = report();
        current.fingerprint = "0x0000000000000001".into();
        current.journal_hash = "0x0000000000000002".into();
        let failures = compare_baseline(&current, &baseline);
        assert_eq!(failures.len(), 2);
    }

    #[test]
    fn slowdown_fails_but_noise_and_shard_count_pass() {
        let baseline = report();
        let mut slow = report();
        slow.events_per_sec = baseline.events_per_sec * 0.05;
        assert_eq!(compare_baseline(&slow, &baseline).len(), 1);
        let mut noisy = report();
        noisy.events_per_sec = baseline.events_per_sec * 0.5;
        noisy.shards = 1;
        noisy.wall_s = baseline.wall_s * 2.0;
        assert!(compare_baseline(&noisy, &baseline).is_empty());
    }
}
