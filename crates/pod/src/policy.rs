//! Pluggable placement policies for the pod control plane.
//!
//! PR 7 buried delegation inside `ctrl`: a greedy best-fit against the
//! previous barrier's capacity view, every job forced wholly inside one
//! rack group. This module extracts that decision into a policy layer:
//!
//! * a [`PlacementPolicy`] is a **pure, deterministic** function
//!   `(capacity view, demand) -> PlacementDecision` — of the barrier
//!   capacity view and the job shape only, never of worker count, wall
//!   clock, or iteration order of an unordered map — so every policy
//!   keeps the pod fingerprint shard-count-invariant;
//! * [`GreedyBestFit`] reproduces PR 7's delegation bit-for-bit (the
//!   `BENCH_pod.json` fingerprint and journal hash are unchanged under
//!   the default policy);
//! * [`FragAwareScored`] adds fragmentation-aware scoring: small jobs
//!   pack tightest-fit into already-broken groups, large jobs reserve
//!   pristine groups, so contiguous capacity survives a mixed trace;
//! * [`CrossGroupStitch`] splits a job that fits no single group into
//!   per-group Z-slab legs stitched over the rack-face OCS banks
//!   ([`topo::band`]), admitted atomically by the control plane as one
//!   `MultiGroupAdmit` journal record.
//!
//! A decision is advisory: the control plane still admits against the
//! true occupancy of each domain and falls back deterministically when
//! the estimate was stale.

use topo::{Dim, Shape3};

/// High bit of every stitch-leg slice id. Leg ids live in this
/// namespace (`LEG_ID_BIT | job << 4 | leg_index`) so they can never
/// collide with trace job ids in the journal or the occupancy map.
pub const LEG_ID_BIT: u32 = 0x8000_0000;

/// Which placement policy the pod control plane delegates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// PR 7's greedy best-fit (the default; bit-identical baselines).
    #[default]
    Greedy,
    /// Fragmentation-aware scoring with pristine-group reservation.
    FragAware,
    /// Cross-group stitching over the rack-face OCS banks.
    Stitch,
}

impl PolicyKind {
    /// Every policy, in stable declaration order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Greedy,
        PolicyKind::FragAware,
        PolicyKind::Stitch,
    ];

    /// Stable name: the `spsim pod --policy` flag value and the
    /// `BENCH_pod.json` / sweep-label spelling.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Greedy => "greedy",
            PolicyKind::FragAware => "frag",
            PolicyKind::Stitch => "stitch",
        }
    }

    /// Parse a [`name`](Self::name) back into a kind.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Stable integer tag for snapshot serialization.
    pub fn tag(self) -> u64 {
        match self {
            PolicyKind::Greedy => 0,
            PolicyKind::FragAware => 1,
            PolicyKind::Stitch => 2,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u64) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|p| p.tag() == tag)
    }

    /// The policy implementation for this kind.
    pub fn policy(self) -> &'static dyn PlacementPolicy {
        match self {
            PolicyKind::Greedy => &GreedyBestFit,
            PolicyKind::FragAware => &FragAwareScored,
            PolicyKind::Stitch => &CrossGroupStitch,
        }
    }
}

/// The pod control plane's capacity view at an epoch barrier: the
/// previous barrier's true per-group free counts, decremented by the
/// demand already delegated at this barrier. An *estimate* — the domain
/// still admits against true occupancy.
#[derive(Debug, Clone, Copy)]
pub struct CapacityView<'a> {
    /// Estimated free chips per rack group, indexed by group.
    pub free: &'a [usize],
    /// Total chips in one rack group.
    pub group_chips: usize,
    /// Z-extent of one rack group in pod coordinates.
    pub group_z: usize,
}

/// One per-group leg of a cross-group stitched slice: the same X/Y
/// cross-section as the job, a Z-slab of its extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StitchLeg {
    /// Target rack group.
    pub group: usize,
    /// Leg extent (`extent.x/y` equal the job's, Z-extents sum to it).
    pub extent: Shape3,
}

/// What a policy decided for one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementDecision {
    /// Delegate the whole job to one rack-group shard (PR 7 semantics).
    SingleGroup(usize),
    /// Split the job into consecutive per-group legs stitched over the
    /// rack-face OCS banks; admitted all-or-nothing at the barrier.
    Stitch(Vec<StitchLeg>),
}

/// A placement policy: a pure, deterministic map from the barrier
/// capacity view and one job's demand to a placement decision.
///
/// Determinism contract: the result may depend only on the arguments.
/// No interior mutability, no randomness, no clocks — two calls with
/// equal inputs must return equal decisions on every host and thread.
pub trait PlacementPolicy {
    /// Decide where `demand` lands under `view`.
    fn place(&self, view: &CapacityView<'_>, demand: Shape3) -> PlacementDecision;

    /// The stable [`PolicyKind`] name of this policy.
    fn name(&self) -> &'static str;
}

/// Greedy delegation: the fittest domain that can hold `need` chips
/// (most free capacity, ties to the lowest group index); if none can,
/// the domain with the most free capacity anyway — it will queue or
/// deny deterministically.
pub fn pick_group(free: &[usize], need: usize) -> usize {
    let mut best_any = (0usize, 0usize);
    let mut best_fit: Option<(usize, usize)> = None;
    for (g, &f) in free.iter().enumerate() {
        if f > best_any.1 {
            best_any = (g, f);
        }
        if f >= need && best_fit.is_none_or(|(_, bf)| f > bf) {
            best_fit = Some((g, f));
        }
    }
    best_fit.unwrap_or(best_any).0
}

/// PR 7's delegation, verbatim: [`pick_group`] on the capacity view.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBestFit;

impl PlacementPolicy for GreedyBestFit {
    fn place(&self, view: &CapacityView<'_>, demand: Shape3) -> PlacementDecision {
        PlacementDecision::SingleGroup(pick_group(view.free, demand.volume()))
    }

    fn name(&self) -> &'static str {
        PolicyKind::Greedy.name()
    }
}

/// Fragmentation-aware scoring with pristine-group reservation.
///
/// Greedy best-fit is a *worst*-fit among fitting groups: it scatters
/// small jobs across the emptiest groups, breaking every pristine group
/// early, so a later rack-sized job finds no group that fits. This
/// policy packs instead:
///
/// * **small jobs** (≤ half a group) go tightest-fit into an
///   already-broken fitting group — the smallest leftover wins, ties to
///   the lowest index — touching a pristine group only when no broken
///   group fits;
/// * **large jobs** (> half a group) claim the lowest-index pristine
///   group, falling back to the fitting group with the most room.
///
/// When nothing fits at all it degrades to [`pick_group`]'s fallback so
/// the job queues or denies exactly like PR 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct FragAwareScored;

impl PlacementPolicy for FragAwareScored {
    fn place(&self, view: &CapacityView<'_>, demand: Shape3) -> PlacementDecision {
        let need = demand.volume();
        let mut tight_broken: Option<(usize, usize)> = None;
        let mut first_pristine: Option<usize> = None;
        let mut roomiest_fit: Option<(usize, usize)> = None;
        for (g, &f) in view.free.iter().enumerate() {
            if f < need {
                continue;
            }
            if roomiest_fit.is_none_or(|(_, bf)| f > bf) {
                roomiest_fit = Some((g, f));
            }
            if f == view.group_chips {
                if first_pristine.is_none() {
                    first_pristine = Some(g);
                }
            } else {
                let leftover = f - need;
                if tight_broken.is_none_or(|(_, bl)| leftover < bl) {
                    tight_broken = Some((g, leftover));
                }
            }
        }
        let reserve = need > view.group_chips / 2;
        let chosen = if reserve {
            first_pristine.or(roomiest_fit.map(|(g, _)| g))
        } else {
            tight_broken.map(|(g, _)| g).or(first_pristine)
        };
        let g = match chosen {
            Some(g) => g,
            None => pick_group(view.free, need),
        };
        PlacementDecision::SingleGroup(g)
    }

    fn name(&self) -> &'static str {
        PolicyKind::FragAware.name()
    }
}

/// Cross-group stitching over the rack-face OCS banks.
///
/// While some single group fits the job, this behaves exactly like
/// [`GreedyBestFit`]. When none does and the job has at least two Z
/// layers, it looks for the shortest run of consecutive groups whose
/// combined estimate covers the job and splits the shape into per-group
/// Z-slabs (`x`/`y` preserved); the control plane then admits the legs
/// all-or-nothing and journals one `MultiGroupAdmit` record carrying the
/// stitch-port assignment on each crossed rack face. If no run covers
/// the job either, it degrades to [`pick_group`] like PR 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossGroupStitch;

impl PlacementPolicy for CrossGroupStitch {
    fn place(&self, view: &CapacityView<'_>, demand: Shape3) -> PlacementDecision {
        let need = demand.volume();
        if view.free.iter().any(|&f| f >= need) {
            return PlacementDecision::SingleGroup(pick_group(view.free, need));
        }
        let unit = demand.extent(Dim::X) * demand.extent(Dim::Y);
        let z = demand.extent(Dim::Z);
        if z < 2 || unit == 0 {
            return PlacementDecision::SingleGroup(pick_group(view.free, need));
        }
        // Z layers each group could host by the estimate, capped by the
        // group's own Z extent.
        let layers_of = |f: usize| (f / unit).min(view.group_z);
        let mut best: Option<(usize, usize)> = None; // (start, legs)
        for start in 0..view.free.len() {
            let mut remaining = z;
            let mut legs = 0usize;
            for &f in view.free.iter().skip(start) {
                let take = layers_of(f).min(remaining);
                if take == 0 {
                    break;
                }
                remaining -= take;
                legs += 1;
                if remaining == 0 {
                    break;
                }
            }
            if remaining == 0 && legs >= 2 && best.is_none_or(|(_, bl)| legs < bl) {
                best = Some((start, legs));
            }
        }
        let Some((start, _)) = best else {
            return PlacementDecision::SingleGroup(pick_group(view.free, need));
        };
        let mut legs = Vec::new();
        let mut remaining = z;
        for (g, &f) in view.free.iter().enumerate().skip(start) {
            if remaining == 0 {
                break;
            }
            let take = layers_of(f).min(remaining);
            if take == 0 {
                break;
            }
            legs.push(StitchLeg {
                group: g,
                extent: Shape3::new(demand.extent(Dim::X), demand.extent(Dim::Y), take),
            });
            remaining -= take;
        }
        if remaining == 0 && legs.len() >= 2 {
            PlacementDecision::Stitch(legs)
        } else {
            PlacementDecision::SingleGroup(pick_group(view.free, need))
        }
    }

    fn name(&self) -> &'static str {
        PolicyKind::Stitch.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(free: &'a [usize]) -> CapacityView<'a> {
        CapacityView {
            free,
            group_chips: 64,
            group_z: 4,
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for k in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(k.name()), Some(k));
            assert_eq!(PolicyKind::from_tag(k.tag()), Some(k));
            assert_eq!(k.policy().name(), k.name());
        }
        assert_eq!(PolicyKind::parse("nonsense"), None);
        assert_eq!(PolicyKind::from_tag(99), None);
        assert_eq!(PolicyKind::default(), PolicyKind::Greedy);
    }

    #[test]
    fn greedy_is_pick_group() {
        let free = [10, 40, 30, 40];
        let shape = Shape3::new(2, 2, 2); // need 8
        let d = GreedyBestFit.place(&view(&free), shape);
        assert_eq!(d, PlacementDecision::SingleGroup(pick_group(&free, 8)));
        // Worst-fit among fitting groups, ties to the lowest index.
        assert_eq!(d, PlacementDecision::SingleGroup(1));
    }

    #[test]
    fn greedy_falls_back_to_most_free_when_nothing_fits() {
        let free = [3, 5, 4];
        assert_eq!(
            GreedyBestFit.place(&view(&free), Shape3::new(4, 4, 1)),
            PlacementDecision::SingleGroup(1)
        );
    }

    #[test]
    fn frag_aware_packs_small_jobs_into_broken_groups() {
        // Group 1 is broken (50 free), groups 0 and 2 pristine.
        let free = [64, 50, 64];
        let d = FragAwareScored.place(&view(&free), Shape3::new(2, 2, 1));
        assert_eq!(d, PlacementDecision::SingleGroup(1), "tightest broken fit");
        // Greedy would have broken a pristine group instead.
        assert_eq!(
            GreedyBestFit.place(&view(&free), Shape3::new(2, 2, 1)),
            PlacementDecision::SingleGroup(0)
        );
    }

    #[test]
    fn frag_aware_reserves_pristine_groups_for_large_jobs() {
        let free = [40, 64, 60];
        let d = FragAwareScored.place(&view(&free), Shape3::new(4, 4, 4));
        assert_eq!(d, PlacementDecision::SingleGroup(1), "pristine reserved");
        // Small job prefers the tightest broken group even if pristine
        // groups have more room.
        let d = FragAwareScored.place(&view(&free), Shape3::new(2, 2, 1));
        assert_eq!(d, PlacementDecision::SingleGroup(0));
    }

    #[test]
    fn frag_aware_degrades_to_greedy_when_nothing_fits() {
        let free = [3, 5, 4];
        let shape = Shape3::new(4, 4, 2);
        assert_eq!(
            FragAwareScored.place(&view(&free), shape),
            PlacementDecision::SingleGroup(pick_group(&free, shape.volume()))
        );
    }

    #[test]
    fn stitch_matches_greedy_while_one_group_fits() {
        let free = [64, 64, 64];
        let shape = Shape3::new(4, 4, 4);
        assert_eq!(
            CrossGroupStitch.place(&view(&free), shape),
            GreedyBestFit.place(&view(&free), shape)
        );
    }

    #[test]
    fn stitch_splits_over_the_shortest_consecutive_run() {
        // No group holds 64; groups 1+2 together do.
        let free = [16, 32, 32, 16];
        let d = CrossGroupStitch.place(&view(&free), Shape3::new(4, 4, 4));
        let PlacementDecision::Stitch(legs) = d else {
            panic!("expected a stitch decision");
        };
        assert_eq!(legs.len(), 2);
        let groups: Vec<usize> = legs.iter().map(|l| l.group).collect();
        assert_eq!(groups, vec![1, 2], "consecutive groups");
        let z_total: usize = legs.iter().map(|l| l.extent.extent(Dim::Z)).sum();
        assert_eq!(z_total, 4, "legs partition the Z extent");
        for l in &legs {
            assert_eq!(l.extent.extent(Dim::X), 4);
            assert_eq!(l.extent.extent(Dim::Y), 4);
        }
    }

    #[test]
    fn stitch_respects_the_group_z_cap() {
        let mut v = view(&[]);
        let free = [32, 32];
        v.free = &free;
        v.group_z = 2;
        v.group_chips = 32;
        // 4×4×4 = 64 chips; each group can host at most 2 Z layers.
        let d = CrossGroupStitch.place(&v, Shape3::new(4, 4, 4));
        let PlacementDecision::Stitch(legs) = d else {
            panic!("expected a stitch decision");
        };
        assert_eq!(legs.len(), 2);
        for l in &legs {
            assert!(l.extent.extent(Dim::Z) <= 2);
        }
    }

    #[test]
    fn stitch_degrades_when_no_run_covers_the_job() {
        // Single-layer job can never stitch; tiny estimates can't cover.
        let free = [10, 10, 10];
        let flat = CrossGroupStitch.place(&view(&free), Shape3::new(4, 4, 1));
        assert_eq!(flat, PlacementDecision::SingleGroup(pick_group(&free, 16)));
        let free = [1, 1, 1];
        let big = CrossGroupStitch.place(&view(&free), Shape3::new(4, 4, 4));
        assert_eq!(big, PlacementDecision::SingleGroup(pick_group(&free, 64)));
    }

    #[test]
    fn decisions_are_pure_functions_of_the_view() {
        let free = [16, 32, 32, 16];
        for k in PolicyKind::ALL {
            for shape in [Shape3::new(2, 2, 1), Shape3::new(4, 4, 4)] {
                let a = k.policy().place(&view(&free), shape);
                let b = k.policy().place(&view(&free), shape);
                assert_eq!(a, b, "{} must be deterministic", k.name());
            }
        }
    }
}
