//! `PodCtrl`: the pod-level control plane.
//!
//! One run admits a deterministic job trace against the whole 4096-chip
//! torus, delegates every admission to exactly one rack-group shard
//! domain, executes the domains in sim-time epoch windows on a
//! work-stealing thread pool, and folds the per-shard journals into one
//! pod-level append-only FNV journal through the canonical
//! `(time, shard, seq)` exchange of [`desim::epoch`]. Everything the run
//! reports — fingerprint, journal hash, merged metrics — is a pure
//! function of `(PodConfig, seed)`; the worker-thread count (`shards`)
//! only changes which OS thread executes which domain window.
//!
//! The worker-count-invariance argument, end to end:
//!
//! 1. the shard *partition* is fixed geometry ([`PodLayout`]);
//! 2. delegation runs single-threaded at the epoch barrier, against the
//!    capacity view of the previous barrier, in trace order;
//! 3. each domain's window is sequential and self-contained
//!    ([`ShardDomain`]);
//! 4. barrier folding sorts deltas by `(time, shard, seq)` — a pure
//!    function of the deltas, not of completion order;
//! 5. metrics and fingerprints fold in group-index order.
//!
//! **Snapshots & crash restart.** With [`PodOptions::snapshot_every`] set,
//! the run captures a [`PodSnapshot`] at every N-th epoch barrier: each
//! domain journals a `Snapshot` record (folded to the pod journal like any
//! other record, so the hash chain commits to the capture), and the pod
//! level records its delegation cursors, capacity view, digest state, and
//! journal watermark. [`resume_pod`] rebuilds the run from a snapshot and
//! drives it to completion; the resumed outcome is bit-identical to the
//! uninterrupted run's — same fingerprint, journal hash, logical length,
//! and metrics — because every fingerprint input is restored. With
//! [`PodOptions::compact`], shard and pod journals are truncated below
//! each snapshot watermark; [`Journal::compact_to`] folds the dropped
//! records into the base hash, so compaction is invisible to the chain.

use crate::layout::{PodLayout, POD_CHIPS};
use crate::policy::{pick_group, CapacityView, PlacementDecision, PolicyKind, StitchLeg};
use crate::shard::{PodEvent, ShardDomain, ShardSnapshot};
use desim::epoch::{exchange, EpochConfig, Stamped};
use desim::fnv::{combine, derive_seed, Fnv};
use desim::{SimDuration, SimTime, SnapReader, SnapWriter};
use fabricd::{Journal, JournalEntry, JournalHeader, Metrics, RouteTelemetry, StitchLegRecord};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use topo::{band, RackGroupPartition};
use workloads::{generate, ArrivalParams, JobRequest};

/// Parameters of one pod run. Worker count is deliberately *not* here —
/// it is a property of the execution, not of the simulated system, and
/// must not affect any output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodConfig {
    /// Total chips (positive multiple of one 64-chip rack).
    pub chips: usize,
    /// Wavelength lanes per tenant ring circuit.
    pub lanes: usize,
    /// Pod seed; per-domain streams derive as `derive_seed(seed, group)`.
    pub seed: u64,
    /// Jobs in the arrival trace.
    pub jobs: usize,
    /// Chip failures to inject, round-robin across domains.
    pub failures: usize,
    /// Epoch window length (barrier cadence).
    pub epoch: SimDuration,
    /// Stop after this many epochs; 0 = run to quiescence.
    pub max_epochs: u64,
    /// How long a job may wait in a domain's admission queue.
    pub queue_timeout: SimDuration,
    /// Arrival process parameters.
    pub arrivals: ArrivalParams,
    /// Placement policy the control plane delegates with. The default
    /// ([`PolicyKind::Greedy`]) reproduces PR 7's delegation bit-for-bit.
    pub policy: PolicyKind,
}

impl Default for PodConfig {
    fn default() -> Self {
        PodConfig {
            chips: POD_CHIPS,
            lanes: 2,
            seed: 7,
            jobs: 256,
            failures: 8,
            epoch: SimDuration::from_secs(600),
            max_epochs: 0,
            queue_timeout: SimDuration::from_secs(1_800),
            arrivals: ArrivalParams::default(),
            policy: PolicyKind::Greedy,
        }
    }
}

/// Execution options orthogonal to the simulated system. Snapshot cadence
/// is part of the decision record (captures journal `Snapshot` records),
/// so two runs compare bit-for-bit only under the same `snapshot_every`;
/// `compact` and `crash_after_epochs` never change any output hash.
#[derive(Debug, Clone, Copy, Default)]
pub struct PodOptions {
    /// Capture a [`PodSnapshot`] every N epoch barriers (0 = never).
    pub snapshot_every: u64,
    /// Truncate shard and pod journals below each snapshot watermark.
    pub compact: bool,
    /// Simulate a crash: abandon the run after this many epochs. The
    /// outcome reports `crashed = true` and carries the snapshots taken
    /// so far, from which [`resume_pod`] can restart.
    pub crash_after_epochs: Option<u64>,
}

/// Everything a finished pod run reports.
#[derive(Debug)]
pub struct PodOutcome {
    /// The run fingerprint: per-domain fingerprints (group order), the
    /// pod journal hash, the delegation digest, and the event count,
    /// folded through FNV-1a. Equal fingerprints ⇔ identical runs.
    pub fingerprint: u64,
    /// The pod-level journal: every domain's records, coordinates
    /// remapped into the pod torus, in canonical exchange order.
    pub journal: Journal,
    /// All domains' metrics, folded in group-index order.
    pub metrics: Metrics,
    /// Plan-library / cross-plan cache counters, summed over all domains
    /// in group-index order. Telemetry only — never part of the
    /// fingerprint (a cold cache must replay bit-identically to a warm
    /// one), but deterministic and shard-count invariant, so
    /// `BENCH_pod.json` gates the counts exactly.
    pub route: RouteTelemetry,
    /// Local events executed across all domains.
    pub events: u64,
    /// Epoch windows executed.
    pub epochs: u64,
    /// Worker threads used (echo of the request, clamped to the domain
    /// count; does not affect any other field).
    pub shards: usize,
    /// Shard domains in the partition.
    pub groups: usize,
    /// Commands delegated across the shard boundary.
    pub delegations: u64,
    /// Simulated horizon reached (end of the last epoch window).
    pub horizon: SimTime,
    /// Wall-clock seconds (telemetry only; never part of the fingerprint).
    pub wall_s: f64,
    /// Events per wall-clock second — the `BENCH_pod.json` throughput.
    pub events_per_sec: f64,
    /// Snapshots captured, oldest first (empty unless
    /// [`PodOptions::snapshot_every`] is set).
    pub snapshots: Vec<PodSnapshot>,
    /// True when the run stopped at [`PodOptions::crash_after_epochs`]
    /// instead of quiescing.
    pub crashed: bool,
    /// Placement policy the run delegated with (echo of the config).
    pub policy: PolicyKind,
    /// Mean capacity fragmentation over all epoch barriers:
    /// `1 - largest_group_free / total_free`, sampled from the canonical
    /// barrier capacity view. 0 when every free chip sits in one group;
    /// telemetry only — never part of the fingerprint.
    pub frag_mean: f64,
    /// Mean pod occupancy over all epoch barriers:
    /// `1 - total_free / total_chips`, sampled from the canonical barrier
    /// capacity view. Telemetry only — never part of the fingerprint.
    pub occ_mean: f64,
}

/// What one domain reports at an epoch barrier.
struct BarrierReport {
    group: usize,
    delta: Vec<fabricd::Record>,
    free: usize,
    pending: usize,
}

/// Remap a domain-local journal entry into pod coordinates: slice
/// origins and chip coordinates shift by the group's Z offset, incident
/// ids are namespaced by group so they stay unique pod-wide.
fn remap_entry(p: &RackGroupPartition, group: usize, entry: JournalEntry) -> JournalEntry {
    let incident_id = |local: u64| ((group as u64) << 32) | (local & 0xffff_ffff);
    match entry {
        JournalEntry::Admit {
            job,
            origin,
            extent,
        } => JournalEntry::Admit {
            job,
            origin: p.to_pod(group, origin),
            extent,
        },
        JournalEntry::Fail {
            incident,
            chip,
            victim,
            spliced,
        } => JournalEntry::Fail {
            incident: incident_id(incident),
            chip: p.to_pod(group, chip),
            victim,
            spliced,
        },
        JournalEntry::Repair {
            incident,
            replacement,
            circuits,
            servers_touched,
            blast_servers,
        } => JournalEntry::Repair {
            incident: incident_id(incident),
            replacement: p.to_pod(group, replacement),
            circuits,
            servers_touched,
            blast_servers,
        },
        JournalEntry::RepairFailed {
            incident,
            replacement,
            error,
        } => JournalEntry::RepairFailed {
            incident: incident_id(incident),
            replacement: p.to_pod(group, replacement),
            error,
        },
        other => other,
    }
}

/// The live pod run: domains plus the pod-level control state that a
/// [`PodSnapshot`] must capture to make crash restart exact.
struct PodRun {
    cfg: PodConfig,
    layout: PodLayout,
    domains: Vec<Mutex<ShardDomain>>,
    trace: Vec<JobRequest>,
    failures: Vec<(SimTime, usize)>,
    journal: Journal,
    free_est: Vec<usize>,
    deleg: Fnv,
    delegations: u64,
    next_job: usize,
    next_fail: usize,
    epoch: u64,
    /// Pod-level `MultiGroupAdmit` records staged at this barrier; merged
    /// into the canonical exchange at part 2, so they land time-sorted.
    /// Always empty between barriers — never snapshotted.
    staged: Vec<Stamped<JournalEntry>>,
    /// Fragmentation accumulator: Σ (1 - largest_free/total_free) over
    /// epoch barriers, from the canonical capacity view.
    frag_sum: f64,
    /// Barriers that contributed to `frag_sum`.
    frag_samples: u64,
    /// Occupancy accumulator: Σ (1 - total_free/total_chips) over epoch
    /// barriers, from the canonical capacity view.
    occ_sum: f64,
    /// Barriers that contributed to `occ_sum`.
    occ_samples: u64,
}

impl PodRun {
    /// A fresh run at epoch 0: pristine domains, empty journal, trace and
    /// failure schedule regenerated from the config (both are pure
    /// functions of it, so a snapshot need not carry them).
    fn fresh(cfg: &PodConfig) -> Result<PodRun, String> {
        let layout = PodLayout::new(cfg.chips).map_err(|e| e.to_string())?;
        let groups = layout.groups();
        let domains: Vec<Mutex<ShardDomain>> = (0..groups)
            .map(|g| {
                Mutex::new(ShardDomain::new(
                    g as u32,
                    layout.group_racks(),
                    cfg.lanes,
                    derive_seed(cfg.seed, g as u64),
                    cfg.queue_timeout,
                ))
            })
            .collect();
        let (trace, failures) = demand(cfg, groups);
        let journal = Journal::new(JournalHeader {
            racks: layout.racks(),
            lanes: cfg.lanes,
            seed: cfg.seed,
            shape: layout.pod_shape(),
        });
        let free_est = vec![layout.group_chips(); groups];
        Ok(PodRun {
            cfg: *cfg,
            layout,
            domains,
            trace,
            failures,
            journal,
            free_est,
            deleg: Fnv::new(),
            delegations: 0,
            next_job: 0,
            next_fail: 0,
            epoch: 0,
            staged: Vec::new(),
            frag_sum: 0.0,
            frag_samples: 0,
            occ_sum: 0.0,
            occ_samples: 0,
        })
    }

    /// Rebuild the run a [`PodSnapshot`] captured: restored domains, a
    /// pod journal resuming mid-chain at the recorded watermark, and the
    /// delegation cursors/digest exactly where the capture left them.
    fn from_snapshot(snap: &PodSnapshot) -> Result<PodRun, String> {
        let cfg = snap.config;
        let layout = PodLayout::new(cfg.chips).map_err(|e| e.to_string())?;
        let groups = layout.groups();
        let header = JournalHeader {
            racks: layout.racks(),
            lanes: cfg.lanes,
            seed: cfg.seed,
            shape: layout.pod_shape(),
        };
        if header != snap.header {
            return Err("pod snapshot: header does not match its config".to_string());
        }
        if snap.domains.len() != groups {
            return Err(format!(
                "pod snapshot: {} domain captures for a {groups}-group layout",
                snap.domains.len()
            ));
        }
        if snap.free_est.len() != groups {
            return Err(format!(
                "pod snapshot: capacity view has {} entries for {groups} groups",
                snap.free_est.len()
            ));
        }
        let mut domains = Vec::with_capacity(groups);
        for (g, ds) in snap.domains.iter().enumerate() {
            if ds.group as usize != g {
                return Err(format!(
                    "pod snapshot: domain capture {g} claims group {}",
                    ds.group
                ));
            }
            domains.push(Mutex::new(ShardDomain::restore(ds)?));
        }
        let (trace, failures) = demand(&cfg, groups);
        if snap.next_job > trace.len() || snap.next_fail > failures.len() {
            return Err("pod snapshot: delegation cursor beyond the demand schedule".to_string());
        }
        Ok(PodRun {
            cfg,
            layout,
            domains,
            trace,
            failures,
            journal: Journal::with_base(snap.header, snap.journal_next_seq, snap.journal_fnv),
            free_est: snap.free_est.clone(),
            deleg: Fnv::from_state(snap.deleg_state),
            delegations: snap.delegations,
            next_job: snap.next_job,
            next_fail: snap.next_fail,
            epoch: snap.epoch,
            staged: Vec::new(),
            frag_sum: snap.frag_sum,
            frag_samples: snap.frag_samples,
            occ_sum: snap.occ_sum,
            occ_samples: snap.occ_samples,
        })
    }

    /// Capture the run at an epoch barrier (every delta already folded).
    /// Each domain journals a `Snapshot` record; folding those records to
    /// the pod journal *before* recording the watermark makes the pod
    /// hash chain commit to the capture. With `compact`, both journal
    /// levels are then truncated below their watermarks.
    fn capture(&mut self, at: SimTime, compact: bool) -> Result<PodSnapshot, String> {
        let partition = *self.layout.partition();
        let groups = self.domains.len();
        let mut doms = Vec::with_capacity(groups);
        for (g, slot) in self.domains.iter_mut().enumerate() {
            let dom = slot
                .get_mut()
                .map_err(|_| "pod shard mutex poisoned".to_string())?;
            let ds = dom.capture(at);
            for rec in dom.take_delta() {
                self.journal
                    .push(rec.at, remap_entry(&partition, g, rec.entry));
            }
            if compact {
                dom.compact(ds.fabric.seq)?;
            }
            doms.push(ds);
        }
        let snap = PodSnapshot {
            epoch: self.epoch,
            at,
            config: self.cfg,
            header: *self.journal.header(),
            journal_next_seq: self.journal.next_seq(),
            journal_fnv: self.journal.hash(),
            deleg_state: self.deleg.state(),
            delegations: self.delegations,
            next_job: self.next_job,
            next_fail: self.next_fail,
            free_est: self.free_est.clone(),
            frag_sum: self.frag_sum,
            frag_samples: self.frag_samples,
            occ_sum: self.occ_sum,
            occ_samples: self.occ_samples,
            domains: doms,
        };
        if compact {
            // The last `groups` records are the per-domain Snapshot
            // records in group order; group 0's is the legal watermark.
            let watermark = self.journal.next_seq() - groups as u64;
            self.journal.compact_to(watermark)?;
        }
        Ok(snap)
    }

    /// Drive the run to quiescence (or a configured stop) with `shards`
    /// worker threads, capturing snapshots on the configured cadence.
    fn drive(mut self, shards: usize, opts: &PodOptions) -> Result<PodOutcome, String> {
        let cfg = self.cfg;
        let groups = self.layout.groups();
        let partition = *self.layout.partition();
        let workers = shards.clamp(1, groups);
        let epochs_cfg = EpochConfig::new(cfg.epoch)
            .ok_or_else(|| "epoch length must be positive".to_string())?;

        let mut snapshots: Vec<PodSnapshot> = Vec::new();
        let mut crashed = false;

        // detlint: allow(DET002) — wall-clock feeds events/sec telemetry
        // only; every simulated output is a pure function of (config, seed).
        let started = std::time::Instant::now();

        let horizon = loop {
            let end = epochs_cfg.end_of(self.epoch);

            // --- barrier, part 1 (single-threaded): delegate this window's
            // demand in trace order against the previous barrier's view.
            // The policy decides; a stitch decision admits its legs here,
            // atomically, and falls back to single-group delegation when
            // the estimate was stale.
            while let Some(&job) = self.trace.get(self.next_job) {
                if job.arrival >= end {
                    break;
                }
                let need = job.shape.volume();
                let decision = {
                    let view = CapacityView {
                        free: &self.free_est,
                        group_chips: self.layout.group_chips(),
                        group_z: partition.group_z(),
                    };
                    cfg.policy.policy().place(&view, job.shape)
                };
                let single = match decision {
                    PlacementDecision::SingleGroup(g) => Some(g),
                    PlacementDecision::Stitch(legs) => {
                        if self.admit_stitch(&job, &legs)? {
                            None
                        } else {
                            Some(pick_group(&self.free_est, need))
                        }
                    }
                };
                if let Some(g) = single {
                    if let Some(f) = self.free_est.get_mut(g) {
                        *f = f.saturating_sub(need);
                    }
                    self.deleg.write_u64(self.next_job as u64);
                    self.deleg.write_u64(g as u64);
                    self.delegations += 1;
                    let ev = PodEvent::Arrival {
                        job: self.next_job as u32,
                        shape: job.shape,
                        duration: job.duration,
                    };
                    let arrival = job.arrival;
                    deliver(&mut self.domains, g, arrival, ev)?;
                }
                self.next_job += 1;
            }
            while let Some(&(at, g)) = self.failures.get(self.next_fail) {
                if at >= end {
                    break;
                }
                self.deleg.write_u64(u64::MAX);
                self.deleg.write_u64(g as u64);
                self.delegations += 1;
                deliver(&mut self.domains, g, at, PodEvent::InjectFailure)?;
                self.next_fail += 1;
            }

            // --- window (parallel): every domain runs to the deadline. The
            // pull queue balances load; which thread runs which domain is
            // unobservable because domains are sequential and self-contained.
            let domains = &self.domains;
            let next = AtomicUsize::new(0);
            let run_worker = || -> Result<Vec<BarrierReport>, String> {
                let mut out = Vec::new();
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = domains.get(g) else {
                        return Ok(out);
                    };
                    let mut dom = slot
                        .lock()
                        .map_err(|_| "pod shard mutex poisoned".to_string())?;
                    dom.run_until(end);
                    dom.sample(end);
                    out.push(BarrierReport {
                        group: g,
                        delta: dom.take_delta(),
                        free: dom.free_chips(),
                        pending: dom.pending(),
                    });
                }
            };
            let mut parts: Vec<BarrierReport> = Vec::with_capacity(groups);
            if workers == 1 {
                parts.extend(run_worker()?);
            } else {
                let mut worker_err: Option<String> = None;
                // detlint: allow(CONC001) — this IS the sanctioned pod shard
                // worker pool: scoped, atomic pull queue, barrier-ordered fold.
                std::thread::scope(|scope| {
                    let run_worker = &run_worker;
                    let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run_worker)).collect();
                    let mut results: Vec<Result<Vec<BarrierReport>, String>> = vec![run_worker()];
                    for h in handles {
                        results.push(
                            h.join()
                                .unwrap_or_else(|_| Err("pod shard worker panicked".to_string())),
                        );
                    }
                    for res in results {
                        match res {
                            Ok(part) => parts.extend(part),
                            Err(e) => worker_err = Some(e),
                        }
                    }
                });
                if let Some(e) = worker_err {
                    return Err(e);
                }
            }

            // --- barrier, part 2 (single-threaded): canonical fold. Pull
            // order interleaves arbitrarily; group index restores identity.
            parts.sort_by_key(|r| r.group);
            let mut pending_total = 0usize;
            let mut outboxes: Vec<Vec<Stamped<JournalEntry>>> = Vec::with_capacity(parts.len());
            for rep in parts {
                pending_total += rep.pending;
                if let Some(f) = self.free_est.get_mut(rep.group) {
                    *f = rep.free;
                }
                let g32 = rep.group as u32;
                outboxes.push(
                    rep.delta
                        .into_iter()
                        .map(|rec| Stamped {
                            at: rec.at,
                            shard: g32,
                            seq: rec.seq,
                            payload: remap_entry(&partition, rep.group, rec.entry),
                        })
                        .collect(),
                );
            }
            // Pod-level MultiGroupAdmit records staged at part 1 join the
            // same canonical exchange; their shard stamp (`groups`) sorts
            // them after every domain record at the same instant.
            if !self.staged.is_empty() {
                outboxes.push(std::mem::take(&mut self.staged));
            }
            for m in exchange(outboxes) {
                self.journal.push(m.at, m.payload);
            }

            // Fragmentation sample from the refreshed canonical view:
            // how much of the pod's free capacity sits outside its
            // largest free group. Telemetry only, worker-count invariant.
            let total_free: usize = self.free_est.iter().sum();
            let largest_free = self.free_est.iter().copied().max().unwrap_or(0);
            if total_free > 0 {
                self.frag_sum += 1.0 - (largest_free as f64) / (total_free as f64);
                self.frag_samples += 1;
            }
            if self.layout.chips() > 0 {
                self.occ_sum += 1.0 - (total_free as f64) / (self.layout.chips() as f64);
                self.occ_samples += 1;
            }

            self.epoch += 1;

            // Snapshot cadence is a pure function of the epoch counter, so
            // interrupted and uninterrupted runs capture (and journal the
            // Snapshot records) at identical instants.
            if opts.snapshot_every > 0 && self.epoch.is_multiple_of(opts.snapshot_every) {
                snapshots.push(self.capture(end, opts.compact)?);
            }

            let drained = self.next_job == self.trace.len()
                && self.next_fail == self.failures.len()
                && pending_total == 0;
            if drained || (cfg.max_epochs > 0 && self.epoch >= cfg.max_epochs) {
                break end;
            }
            if let Some(limit) = opts.crash_after_epochs {
                if self.epoch >= limit {
                    crashed = true;
                    break end;
                }
            }
            if self.epoch >= 1_000_000 {
                return Err(format!(
                    "pod run did not quiesce within {} epochs (pending={pending_total})",
                    self.epoch
                ));
            }
        };

        // Final fold, in group-index order: metrics, fingerprints, events,
        // and the plan-library telemetry (summed, never fingerprinted).
        let mut metrics = Metrics::new();
        let mut route = RouteTelemetry::default();
        let mut fps: Vec<u64> = Vec::with_capacity(groups);
        let mut events: u64 = 0;
        for slot in &mut self.domains {
            let dom = slot
                .get_mut()
                .map_err(|_| "pod shard mutex poisoned".to_string())?;
            metrics.merge(dom.metrics());
            route.merge(&RouteTelemetry::of(dom.state()));
            fps.push(dom.fingerprint());
            events += dom.events_executed();
        }

        let mut h = Fnv::new();
        h.write_u64(combine(&fps));
        h.write_u64(self.journal.hash());
        h.write_u64(self.deleg.finish());
        h.write_u64(events);
        h.write_u64(self.epoch);
        let fingerprint = h.finish();

        let wall_s = started.elapsed().as_secs_f64();
        let events_per_sec = if wall_s > 0.0 {
            events as f64 / wall_s
        } else {
            0.0
        };

        Ok(PodOutcome {
            fingerprint,
            journal: self.journal,
            metrics,
            route,
            events,
            epochs: self.epoch,
            shards: workers,
            groups,
            delegations: self.delegations,
            horizon,
            wall_s,
            events_per_sec,
            snapshots,
            crashed,
            policy: cfg.policy,
            frag_mean: if self.frag_samples > 0 {
                self.frag_sum / self.frag_samples as f64
            } else {
                0.0
            },
            occ_mean: if self.occ_samples > 0 {
                self.occ_sum / self.occ_samples as f64
            } else {
                0.0
            },
        })
    }

    /// Admit a cross-group stitched job, all-or-nothing, at the
    /// single-threaded barrier. Each leg is admitted against its
    /// domain's *true* occupancy; on success every leg departs at the
    /// same instant (`arrival + duration`) and one [`MultiGroupAdmit`]
    /// record — legs in pod coordinates plus the stitch-port assignment
    /// on every crossed rack face — is staged for the canonical journal
    /// exchange. On any leg failure all already-admitted legs are
    /// evicted (honest journal records) and the caller falls back to
    /// single-group delegation. Returns whether the stitch landed.
    ///
    /// [`MultiGroupAdmit`]: JournalEntry::MultiGroupAdmit
    fn admit_stitch(&mut self, job: &JobRequest, legs: &[StitchLeg]) -> Result<bool, String> {
        let partition = *self.layout.partition();
        let job_idx = self.next_job;
        // Leg slice ids live in a high-bit namespace so they can never
        // collide with trace job ids: LEG_ID_BIT | job << 4 | leg.
        if job_idx >= (1 << 27) || legs.len() > 15 || legs.is_empty() {
            return Ok(false);
        }
        let face = band::face_ports(partition.group_shape());
        let unit = job.shape.volume() / job.shape.extent(topo::Dim::Z).max(1);
        let Some(ports_per_face) = band::stitch_ports(face, unit) else {
            return Ok(false);
        };
        let leg_id = |i: usize| crate::policy::LEG_ID_BIT | ((job_idx as u32) << 4) | (i as u32);

        let mut admitted: Vec<StitchLegRecord> = Vec::with_capacity(legs.len());
        for (i, leg) in legs.iter().enumerate() {
            let origin = {
                let slot = self
                    .domains
                    .get_mut(leg.group)
                    .ok_or_else(|| format!("stitch delegation to unknown group {}", leg.group))?;
                let dom = slot
                    .get_mut()
                    .map_err(|_| "pod shard mutex poisoned".to_string())?;
                dom.admit_leg(job.arrival, leg_id(i), leg.extent)
            };
            let Some(origin) = origin else {
                // Roll back every already-admitted leg, newest first.
                for rec in admitted.iter().rev() {
                    let slot = self
                        .domains
                        .get_mut(rec.group as usize)
                        .ok_or_else(|| format!("stitch rollback to unknown group {}", rec.group))?;
                    let dom = slot
                        .get_mut()
                        .map_err(|_| "pod shard mutex poisoned".to_string())?;
                    dom.evict_leg(job.arrival, rec.leg);
                    dom.bump("stitch.rollbacks");
                }
                return Ok(false);
            };
            admitted.push(StitchLegRecord {
                leg: leg_id(i),
                group: leg.group as u64,
                origin: partition.to_pod(leg.group, origin),
                extent: leg.extent,
            });
        }

        // Every leg landed: schedule the atomic teardown, charge the
        // capacity view, and stamp the delegation digest.
        let depart = job.arrival + job.duration;
        for rec in &admitted {
            let slot = self
                .domains
                .get_mut(rec.group as usize)
                .ok_or_else(|| format!("stitch delegation to unknown group {}", rec.group))?;
            let dom = slot
                .get_mut()
                .map_err(|_| "pod shard mutex poisoned".to_string())?;
            dom.schedule_leg_depart(depart, rec.leg);
            if let Some(f) = self.free_est.get_mut(rec.group as usize) {
                *f = f.saturating_sub(rec.extent.volume());
            }
        }
        if let Some(first) = admitted.first() {
            let slot = self
                .domains
                .get_mut(first.group as usize)
                .ok_or_else(|| format!("stitch delegation to unknown group {}", first.group))?;
            let dom = slot
                .get_mut()
                .map_err(|_| "pod shard mutex poisoned".to_string())?;
            dom.bump("jobs.stitched");
        }
        self.deleg.write_u64(job_idx as u64);
        self.deleg.write_u64(u64::MAX - 1); // stitch marker
        for rec in &admitted {
            self.deleg.write_u64(rec.group);
            self.deleg.write_u64(rec.extent.volume() as u64);
        }
        self.delegations += 1;

        // Boundary-major stitch-port assignment: the same deterministic
        // port set on every crossed rack face.
        let mut ports: Vec<u32> = Vec::with_capacity(ports_per_face.len() * (admitted.len() - 1));
        for _ in 1..admitted.len() {
            ports.extend_from_slice(&ports_per_face);
        }
        let entry = JournalEntry::MultiGroupAdmit {
            job: job_idx as u32,
            extent: job.shape,
            legs: admitted,
            ports,
        };
        self.staged.push(Stamped {
            at: job.arrival,
            shard: self.layout.groups() as u32,
            seq: self.staged.len() as u64,
            payload: entry,
        });
        Ok(true)
    }
}

/// The deterministic demand: a pod-wide arrival trace (job id = trace
/// index) and a failure schedule anchored at the median arrival.
fn demand(cfg: &PodConfig, groups: usize) -> (Vec<JobRequest>, Vec<(SimTime, usize)>) {
    let trace: Vec<JobRequest> = generate(cfg.jobs, &cfg.arrivals, cfg.seed);
    let anchor = trace
        .get(trace.len() / 2)
        .map_or(SimTime::ZERO, |j| j.arrival);
    let failures: Vec<(SimTime, usize)> = (0..cfg.failures)
        .map(|f| {
            (
                anchor + SimDuration::from_secs(30) * (f as u64),
                f % groups.max(1),
            )
        })
        .collect();
    (trace, failures)
}

/// Run one pod simulation with `shards` worker threads.
///
/// The returned [`PodOutcome`] is bit-identical for every `shards` value:
/// `spsim pod` asserts this at runtime and `cargo xtask lint` pins the
/// fingerprint in `BENCH_pod.json`.
pub fn run_pod(cfg: &PodConfig, shards: usize) -> Result<PodOutcome, String> {
    run_pod_with(cfg, shards, &PodOptions::default())
}

/// Run one pod simulation with explicit [`PodOptions`] (snapshot cadence,
/// compaction, simulated crash).
pub fn run_pod_with(
    cfg: &PodConfig,
    shards: usize,
    opts: &PodOptions,
) -> Result<PodOutcome, String> {
    PodRun::fresh(cfg)?.drive(shards, opts)
}

/// Resume a pod run from a [`PodSnapshot`] and drive it to completion.
///
/// Under the same [`PodOptions::snapshot_every`] cadence as the original
/// run, the resumed outcome is bit-identical to the uninterrupted one:
/// fingerprint, journal hash, logical journal length, event count, and
/// metrics all match, and the worker count remains unobservable.
pub fn resume_pod(
    snap: &PodSnapshot,
    shards: usize,
    opts: &PodOptions,
) -> Result<PodOutcome, String> {
    PodRun::from_snapshot(snap)?.drive(shards, opts)
}

/// First line of the pod snapshot artifact.
const POD_SNAP_MAGIC: &str = "spsim-pod-snapshot v1";

/// A consistent capture of a whole pod run at an epoch barrier: one
/// [`ShardSnapshot`] per rack-group domain plus the pod-level control
/// state (delegation cursors and digest, capacity view, journal
/// watermark). Serializable with [`to_text`](Self::to_text) /
/// [`parse`](Self::parse); the artifact is integrity-checked by an FNV
/// fingerprint on its first line.
#[derive(Debug, Clone, PartialEq)]
pub struct PodSnapshot {
    /// Epochs completed when the capture was taken.
    pub epoch: u64,
    /// Capture instant (end of the last executed epoch window).
    pub at: SimTime,
    /// The run's configuration; demand schedules are regenerated from it
    /// on restore (they are pure functions of the config).
    pub config: PodConfig,
    /// Pod journal header (validated against `config` on restore).
    pub header: JournalHeader,
    /// Pod journal watermark: sequence the next record will take.
    pub journal_next_seq: u64,
    /// Pod journal hash at the watermark (resumes the chain).
    pub journal_fnv: u64,
    /// Delegation digest state at the capture.
    pub deleg_state: u64,
    /// Commands delegated before the capture.
    pub delegations: u64,
    /// Next trace index to delegate.
    pub next_job: usize,
    /// Next failure-schedule index to delegate.
    pub next_fail: usize,
    /// Per-group capacity view at the capture.
    pub free_est: Vec<usize>,
    /// Fragmentation accumulator at the capture (see
    /// [`PodOutcome::frag_mean`]).
    pub frag_sum: f64,
    /// Barriers that contributed to `frag_sum` before the capture.
    pub frag_samples: u64,
    /// Occupancy accumulator at the capture (see
    /// [`PodOutcome::occ_mean`]).
    pub occ_sum: f64,
    /// Barriers that contributed to `occ_sum` before the capture.
    pub occ_samples: u64,
    /// Per-domain captures, in group-index order.
    pub domains: Vec<ShardSnapshot>,
}

impl PodSnapshot {
    fn body(&self) -> String {
        let mut w = SnapWriter::new();
        w.section("pod");
        w.u64("epoch", self.epoch);
        w.u64("at_ps", self.at.as_ps());
        w.u64("journal_next_seq", self.journal_next_seq);
        w.u64("journal_fnv", self.journal_fnv);
        w.u64("racks", self.header.racks as u64);
        w.u64("hdr_lanes", self.header.lanes as u64);
        w.u64("hdr_seed", self.header.seed);
        let [sx, sy, sz] = self.header.shape.dims;
        w.u64("sx", sx as u64);
        w.u64("sy", sy as u64);
        w.u64("sz", sz as u64);
        w.u64("deleg_state", self.deleg_state);
        w.u64("delegations", self.delegations);
        w.u64("next_job", self.next_job as u64);
        w.u64("next_fail", self.next_fail as u64);
        w.u64("groups", self.free_est.len() as u64);
        for &f in &self.free_est {
            w.u64("free", f as u64);
        }
        w.f64("frag_sum", self.frag_sum);
        w.u64("frag_samples", self.frag_samples);
        w.f64("occ_sum", self.occ_sum);
        w.u64("occ_samples", self.occ_samples);
        w.section("config");
        w.u64("chips", self.config.chips as u64);
        w.u64("lanes", self.config.lanes as u64);
        w.u64("seed", self.config.seed);
        w.u64("jobs", self.config.jobs as u64);
        w.u64("failures", self.config.failures as u64);
        w.u64("epoch_ps", self.config.epoch.as_ps());
        w.u64("max_epochs", self.config.max_epochs);
        w.u64("queue_timeout_ps", self.config.queue_timeout.as_ps());
        w.u64(
            "mean_interarrival_ps",
            self.config.arrivals.mean_interarrival.as_ps(),
        );
        w.u64(
            "mean_duration_ps",
            self.config.arrivals.mean_duration.as_ps(),
        );
        w.f64("small_job_skew", self.config.arrivals.small_job_skew);
        w.u64("policy", self.config.policy.tag());
        for d in &self.domains {
            d.write_snap(&mut w);
        }
        w.finish()
    }

    /// Serialize to the integrity-checked artifact format.
    pub fn to_text(&self) -> String {
        let body = self.body();
        let fnv = desim::snap::fingerprint(&body);
        format!("{POD_SNAP_MAGIC} fnv={fnv:016x}\n{body}")
    }

    /// Parse a [`to_text`](Self::to_text) artifact, verifying the FNV
    /// fingerprint and every structural invariant.
    pub fn parse(text: &str) -> Result<PodSnapshot, String> {
        let (first, body) = text
            .split_once('\n')
            .ok_or_else(|| "pod snapshot: missing artifact body".to_string())?;
        let tag = format!("{POD_SNAP_MAGIC} fnv=");
        let fnv_hex = first
            .strip_prefix(tag.as_str())
            .ok_or_else(|| format!("pod snapshot: expected `{POD_SNAP_MAGIC}` artifact"))?;
        let fnv = u64::from_str_radix(fnv_hex, 16)
            .map_err(|_| "pod snapshot: malformed fingerprint".to_string())?;
        if desim::snap::fingerprint(body) != fnv {
            return Err("pod snapshot: artifact fingerprint mismatch (corrupt body)".to_string());
        }
        let mut r = SnapReader::new(body);
        r.section("pod")?;
        let epoch = r.u64("epoch")?;
        let at = SimTime::from_ps(r.u64("at_ps")?);
        let journal_next_seq = r.u64("journal_next_seq")?;
        let journal_fnv = r.u64("journal_fnv")?;
        let racks = r.u64("racks")? as usize;
        let hdr_lanes = r.u64("hdr_lanes")? as usize;
        let hdr_seed = r.u64("hdr_seed")?;
        let sx = r.u64("sx")? as usize;
        let sy = r.u64("sy")? as usize;
        let sz = r.u64("sz")? as usize;
        let deleg_state = r.u64("deleg_state")?;
        let delegations = r.u64("delegations")?;
        let next_job = r.u64("next_job")? as usize;
        let next_fail = r.u64("next_fail")? as usize;
        let groups = r.u64("groups")? as usize;
        let mut free_est = Vec::with_capacity(groups);
        for _ in 0..groups {
            free_est.push(r.u64("free")? as usize);
        }
        let frag_sum = r.f64("frag_sum")?;
        let frag_samples = r.u64("frag_samples")?;
        let occ_sum = r.f64("occ_sum")?;
        let occ_samples = r.u64("occ_samples")?;
        r.section("config")?;
        let config = PodConfig {
            chips: r.u64("chips")? as usize,
            lanes: r.u64("lanes")? as usize,
            seed: r.u64("seed")?,
            jobs: r.u64("jobs")? as usize,
            failures: r.u64("failures")? as usize,
            epoch: SimDuration::from_ps(r.u64("epoch_ps")?),
            max_epochs: r.u64("max_epochs")?,
            queue_timeout: SimDuration::from_ps(r.u64("queue_timeout_ps")?),
            arrivals: ArrivalParams {
                mean_interarrival: SimDuration::from_ps(r.u64("mean_interarrival_ps")?),
                mean_duration: SimDuration::from_ps(r.u64("mean_duration_ps")?),
                small_job_skew: r.f64("small_job_skew")?,
            },
            policy: {
                let tag = r.u64("policy")?;
                PolicyKind::from_tag(tag)
                    .ok_or_else(|| format!("pod snapshot: unknown policy tag {tag}"))?
            },
        };
        let mut domains = Vec::with_capacity(groups);
        for g in 0..groups {
            let d = ShardSnapshot::read_snap(&mut r)?;
            if d.group as usize != g {
                return Err(format!(
                    "pod snapshot: domain capture {g} claims group {}",
                    d.group
                ));
            }
            domains.push(d);
        }
        r.done()?;
        Ok(PodSnapshot {
            epoch,
            at,
            config,
            header: JournalHeader {
                racks,
                lanes: hdr_lanes,
                seed: hdr_seed,
                shape: topo::Shape3::new(sx, sy, sz),
            },
            journal_next_seq,
            journal_fnv,
            deleg_state,
            delegations,
            next_job,
            next_fail,
            free_est,
            frag_sum,
            frag_samples,
            occ_sum,
            occ_samples,
            domains,
        })
    }
}

/// Deliver one command to a domain at the single-threaded barrier.
fn deliver(
    domains: &mut [Mutex<ShardDomain>],
    group: usize,
    at: SimTime,
    ev: PodEvent,
) -> Result<(), String> {
    let slot = domains
        .get_mut(group)
        .ok_or_else(|| format!("delegation to unknown group {group}"))?;
    let dom = slot
        .get_mut()
        .map_err(|_| "pod shard mutex poisoned".to_string())?;
    dom.deliver(at, ev);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PodConfig {
        PodConfig {
            chips: 256,
            jobs: 40,
            failures: 3,
            ..PodConfig::default()
        }
    }

    #[test]
    fn worker_count_cannot_be_observed() {
        let cfg = small();
        let one = run_pod(&cfg, 1).expect("1 worker");
        let four = run_pod(&cfg, 4).expect("4 workers");
        assert_eq!(one.fingerprint, four.fingerprint);
        assert_eq!(one.journal.hash(), four.journal.hash());
        assert_eq!(one.events, four.events);
        assert_eq!(
            one.metrics.rejection_report_json(),
            four.metrics.rejection_report_json()
        );
        assert_eq!(one.route, four.route, "plan telemetry is shard-invariant");
    }

    #[test]
    fn run_guiesces_and_journals_all_demand() {
        let cfg = small();
        let out = run_pod(&cfg, 2).expect("runs");
        assert_eq!(out.delegations, (cfg.jobs + cfg.failures) as u64);
        assert_eq!(out.metrics.counter("jobs.arrived"), cfg.jobs as u64);
        assert_eq!(
            out.metrics.counter("failures.injected"),
            cfg.failures as u64
        );
        // Every arrival resolves: admitted+departed, denied, or rejected.
        let resolved = out.metrics.counter("jobs.admitted")
            + out.metrics.counter("jobs.denied.timeout")
            + out.metrics.counter("jobs.denied.program")
            + out.metrics.counter("jobs.rejected.infeasible");
        assert_eq!(resolved, cfg.jobs as u64, "all jobs resolved");
        assert_eq!(
            out.metrics.counter("jobs.admitted"),
            out.metrics.counter("jobs.departed"),
            "quiescence: every admitted job departed"
        );
        assert!(!out.journal.is_empty());
        assert!(out.snapshots.is_empty(), "no snapshots unless requested");
        assert!(!out.crashed);
    }

    #[test]
    fn bounded_epochs_stop_early() {
        let mut cfg = small();
        cfg.max_epochs = 2;
        let out = run_pod(&cfg, 2).expect("runs");
        assert_eq!(out.epochs, 2);
        assert_eq!(out.horizon, SimTime::from_ps(2 * 600 * desim::PS_PER_S));
    }

    #[test]
    fn journal_coordinates_are_pod_global() {
        let cfg = small();
        let out = run_pod(&cfg, 2).expect("runs");
        let layout = PodLayout::new(cfg.chips).expect("layout");
        let pod_z = layout.pod_shape().extent(topo::Dim::Z);
        let group_z = layout.partition().group_z();
        let mut beyond_first_group = 0usize;
        for r in out.journal.records() {
            if let JournalEntry::Admit { origin, .. } = &r.entry {
                assert!(origin.p[2] < pod_z, "origin within the pod torus");
                if origin.p[2] >= group_z {
                    beyond_first_group += 1;
                }
            }
        }
        assert!(
            beyond_first_group > 0,
            "delegation spreads admissions beyond group 0"
        );
    }

    #[test]
    fn pod_journal_times_are_globally_ordered() {
        let out = run_pod(&small(), 3).expect("runs");
        let recs = out.journal.records();
        for w in recs.windows(2) {
            if let [a, b] = w {
                assert!(a.at <= b.at, "exchange order is globally time-sorted");
            }
        }
    }

    #[test]
    fn snapshots_are_worker_count_invariant() {
        let cfg = small();
        let opts = PodOptions {
            snapshot_every: 2,
            ..PodOptions::default()
        };
        let one = run_pod_with(&cfg, 1, &opts).expect("1 worker");
        let four = run_pod_with(&cfg, 4, &opts).expect("4 workers");
        assert!(!one.snapshots.is_empty(), "cadence produced snapshots");
        assert_eq!(one.snapshots, four.snapshots);
        assert_eq!(one.fingerprint, four.fingerprint);
        let two = run_pod_with(&cfg, 2, &opts).expect("2 workers");
        assert_eq!(one.snapshots, two.snapshots);
    }

    #[test]
    fn crash_restart_resumes_bit_identically() {
        let cfg = small();
        let opts = PodOptions {
            snapshot_every: 1,
            ..PodOptions::default()
        };
        let full = run_pod_with(&cfg, 2, &opts).expect("uninterrupted");
        assert!(full.epochs >= 2, "need room to crash mid-run");
        assert!(!full.crashed);

        // Crash mid-run — with compaction on, so the restart also proves
        // truncated journals lose nothing.
        let crashed = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 1,
                compact: true,
                crash_after_epochs: Some(full.epochs / 2),
            },
        )
        .expect("crashed run");
        assert!(crashed.crashed);
        assert!(crashed.epochs < full.epochs);

        let snap = crashed.snapshots.last().expect("snapshot before crash");
        let resumed = resume_pod(
            snap,
            3,
            &PodOptions {
                snapshot_every: 1,
                compact: true,
                crash_after_epochs: None,
            },
        )
        .expect("resumed run");
        assert!(!resumed.crashed);
        assert_eq!(resumed.epochs, full.epochs);
        assert_eq!(resumed.fingerprint, full.fingerprint, "fingerprint");
        assert_eq!(resumed.journal.hash(), full.journal.hash(), "journal hash");
        assert_eq!(resumed.journal.len(), full.journal.len(), "logical length");
        assert_eq!(resumed.events, full.events);
        assert_eq!(resumed.delegations, full.delegations);
        assert_eq!(resumed.horizon, full.horizon);
        assert_eq!(
            resumed.metrics.rejection_report_json(),
            full.metrics.rejection_report_json()
        );
    }

    #[test]
    fn compaction_is_invisible_to_the_pod_hash_chain() {
        let cfg = small();
        let plain = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 2,
                ..PodOptions::default()
            },
        )
        .expect("plain");
        let compacted = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 2,
                compact: true,
                ..PodOptions::default()
            },
        )
        .expect("compacted");
        assert!(compacted.journal.base_seq() > 0, "compaction happened");
        assert!(
            compacted.journal.records().len() < plain.journal.records().len(),
            "compaction retained fewer records"
        );
        assert_eq!(plain.journal.hash(), compacted.journal.hash());
        assert_eq!(plain.journal.len(), compacted.journal.len());
        assert_eq!(plain.fingerprint, compacted.fingerprint);
        assert_eq!(plain.snapshots, compacted.snapshots);
    }

    /// A pod small and saturated enough that single groups run out of
    /// contiguous capacity: 8 single-rack groups of 64 chips, so the
    /// trace's 4×4×4 jobs must stitch once every group is broken.
    fn stitchy() -> PodConfig {
        PodConfig {
            chips: 512,
            jobs: 96,
            failures: 2,
            policy: PolicyKind::Stitch,
            ..PodConfig::default()
        }
    }

    #[test]
    fn every_policy_is_worker_count_invariant() {
        for k in PolicyKind::ALL {
            let cfg = PodConfig {
                policy: k,
                ..stitchy()
            };
            let one = run_pod(&cfg, 1).expect("1 worker");
            let four = run_pod(&cfg, 4).expect("4 workers");
            assert_eq!(one.fingerprint, four.fingerprint, "policy {}", k.name());
            assert_eq!(
                one.journal.hash(),
                four.journal.hash(),
                "policy {}",
                k.name()
            );
            assert_eq!(one.events, four.events, "policy {}", k.name());
            assert_eq!(
                one.frag_mean.to_bits(),
                four.frag_mean.to_bits(),
                "frag telemetry is shard-invariant under {}",
                k.name()
            );
            assert_eq!(
                one.occ_mean.to_bits(),
                four.occ_mean.to_bits(),
                "occupancy telemetry is shard-invariant under {}",
                k.name()
            );
        }
    }

    #[test]
    fn stitch_policy_admits_cross_group_slices_atomically() {
        let cfg = stitchy();
        let out = run_pod(&cfg, 4).expect("runs");
        let stitched = out.metrics.counter("jobs.stitched");
        assert!(stitched >= 1, "at least one stitch landed");
        let legs = out.metrics.counter("stitch.legs");
        let rollbacks = out.metrics.counter("stitch.rollbacks");
        assert!(
            legs >= 2 * stitched + rollbacks,
            "every landed stitch carries at least two legs \
             (legs={legs} stitched={stitched} rollbacks={rollbacks})"
        );
        assert_eq!(
            out.metrics.counter("stitch.legs.departed"),
            legs - rollbacks,
            "quiescence: every landed leg departed"
        );

        // The journal carries one well-formed MultiGroupAdmit per stitch.
        let mut multi = 0u64;
        for r in out.journal.records() {
            if let JournalEntry::MultiGroupAdmit { extent, legs, .. } = &r.entry {
                multi += 1;
                assert!(legs.len() >= 2, "a stitch spans at least two groups");
                let z_sum: usize = legs.iter().map(|l| l.extent.extent(topo::Dim::Z)).sum();
                assert_eq!(z_sum, extent.extent(topo::Dim::Z), "legs partition Z");
            }
        }
        assert_eq!(multi, stitched, "one record per landed stitch");

        // The CTL408 audit accepts the production journal.
        let layout = PodLayout::new(cfg.chips).expect("layout");
        let group_z = layout.partition().group_z();
        let face = band::face_ports(layout.partition().group_shape());
        let mut report = verify::Report::new();
        verify::check_multi_group_admission(&out.journal, group_z, face, &mut report);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn pod_snapshot_artifact_round_trips() {
        let cfg = small();
        let out = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 2,
                ..PodOptions::default()
            },
        )
        .expect("runs");
        let snap = out.snapshots.first().expect("snapshot");
        let text = snap.to_text();
        let back = PodSnapshot::parse(&text).expect("parses");
        assert_eq!(&back, snap);

        let tampered = text.replacen("next_job", "next_jxb", 1);
        assert!(PodSnapshot::parse(&tampered).is_err(), "tamper detected");
        let truncated = &text[..text.len() - 2];
        assert!(
            PodSnapshot::parse(truncated).is_err(),
            "truncation detected"
        );
    }
}
