//! `PodCtrl`: the pod-level control plane.
//!
//! One run admits a deterministic job trace against the whole 4096-chip
//! torus, delegates every admission to exactly one rack-group shard
//! domain, executes the domains in sim-time epoch windows on a
//! work-stealing thread pool, and folds the per-shard journals into one
//! pod-level append-only FNV journal through the canonical
//! `(time, shard, seq)` exchange of [`desim::epoch`]. Everything the run
//! reports — fingerprint, journal hash, merged metrics — is a pure
//! function of `(PodConfig, seed)`; the worker-thread count (`shards`)
//! only changes which OS thread executes which domain window.
//!
//! The worker-count-invariance argument, end to end:
//!
//! 1. the shard *partition* is fixed geometry ([`PodLayout`]);
//! 2. delegation runs single-threaded at the epoch barrier, against the
//!    capacity view of the previous barrier, in trace order;
//! 3. each domain's window is sequential and self-contained
//!    ([`ShardDomain`]);
//! 4. barrier folding sorts deltas by `(time, shard, seq)` — a pure
//!    function of the deltas, not of completion order;
//! 5. metrics and fingerprints fold in group-index order.

use crate::layout::{PodLayout, POD_CHIPS};
use crate::shard::{PodEvent, ShardDomain};
use desim::epoch::{exchange, EpochConfig, Stamped};
use desim::fnv::{combine, derive_seed, Fnv};
use desim::{SimDuration, SimTime};
use fabricd::{Journal, JournalEntry, JournalHeader, Metrics};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use topo::RackGroupPartition;
use workloads::{generate, ArrivalParams, JobRequest};

/// Parameters of one pod run. Worker count is deliberately *not* here —
/// it is a property of the execution, not of the simulated system, and
/// must not affect any output.
#[derive(Debug, Clone, Copy)]
pub struct PodConfig {
    /// Total chips (positive multiple of one 64-chip rack).
    pub chips: usize,
    /// Wavelength lanes per tenant ring circuit.
    pub lanes: usize,
    /// Pod seed; per-domain streams derive as `derive_seed(seed, group)`.
    pub seed: u64,
    /// Jobs in the arrival trace.
    pub jobs: usize,
    /// Chip failures to inject, round-robin across domains.
    pub failures: usize,
    /// Epoch window length (barrier cadence).
    pub epoch: SimDuration,
    /// Stop after this many epochs; 0 = run to quiescence.
    pub max_epochs: u64,
    /// How long a job may wait in a domain's admission queue.
    pub queue_timeout: SimDuration,
    /// Arrival process parameters.
    pub arrivals: ArrivalParams,
}

impl Default for PodConfig {
    fn default() -> Self {
        PodConfig {
            chips: POD_CHIPS,
            lanes: 2,
            seed: 7,
            jobs: 256,
            failures: 8,
            epoch: SimDuration::from_secs(600),
            max_epochs: 0,
            queue_timeout: SimDuration::from_secs(1_800),
            arrivals: ArrivalParams::default(),
        }
    }
}

/// Everything a finished pod run reports.
#[derive(Debug)]
pub struct PodOutcome {
    /// The run fingerprint: per-domain fingerprints (group order), the
    /// pod journal hash, the delegation digest, and the event count,
    /// folded through FNV-1a. Equal fingerprints ⇔ identical runs.
    pub fingerprint: u64,
    /// The pod-level journal: every domain's records, coordinates
    /// remapped into the pod torus, in canonical exchange order.
    pub journal: Journal,
    /// All domains' metrics, folded in group-index order.
    pub metrics: Metrics,
    /// Local events executed across all domains.
    pub events: u64,
    /// Epoch windows executed.
    pub epochs: u64,
    /// Worker threads used (echo of the request, clamped to the domain
    /// count; does not affect any other field).
    pub shards: usize,
    /// Shard domains in the partition.
    pub groups: usize,
    /// Commands delegated across the shard boundary.
    pub delegations: u64,
    /// Simulated horizon reached (end of the last epoch window).
    pub horizon: SimTime,
    /// Wall-clock seconds (telemetry only; never part of the fingerprint).
    pub wall_s: f64,
    /// Events per wall-clock second — the `BENCH_pod.json` throughput.
    pub events_per_sec: f64,
}

/// What one domain reports at an epoch barrier.
struct BarrierReport {
    group: usize,
    delta: Vec<fabricd::Record>,
    free: usize,
    pending: usize,
}

/// Greedy delegation: the fittest domain that can hold `need` chips
/// (most free capacity, ties to the lowest group index); if none can,
/// the domain with the most free capacity anyway — it will queue or
/// deny deterministically.
fn pick_group(free: &[usize], need: usize) -> usize {
    let mut best_any = (0usize, 0usize);
    let mut best_fit: Option<(usize, usize)> = None;
    for (g, &f) in free.iter().enumerate() {
        if f > best_any.1 {
            best_any = (g, f);
        }
        if f >= need && best_fit.is_none_or(|(_, bf)| f > bf) {
            best_fit = Some((g, f));
        }
    }
    best_fit.unwrap_or(best_any).0
}

/// Remap a domain-local journal entry into pod coordinates: slice
/// origins and chip coordinates shift by the group's Z offset, incident
/// ids are namespaced by group so they stay unique pod-wide.
fn remap_entry(p: &RackGroupPartition, group: usize, entry: JournalEntry) -> JournalEntry {
    let incident_id = |local: u64| ((group as u64) << 32) | (local & 0xffff_ffff);
    match entry {
        JournalEntry::Admit {
            job,
            origin,
            extent,
        } => JournalEntry::Admit {
            job,
            origin: p.to_pod(group, origin),
            extent,
        },
        JournalEntry::Fail {
            incident,
            chip,
            victim,
            spliced,
        } => JournalEntry::Fail {
            incident: incident_id(incident),
            chip: p.to_pod(group, chip),
            victim,
            spliced,
        },
        JournalEntry::Repair {
            incident,
            replacement,
            circuits,
            servers_touched,
            blast_servers,
        } => JournalEntry::Repair {
            incident: incident_id(incident),
            replacement: p.to_pod(group, replacement),
            circuits,
            servers_touched,
            blast_servers,
        },
        JournalEntry::RepairFailed {
            incident,
            replacement,
            error,
        } => JournalEntry::RepairFailed {
            incident: incident_id(incident),
            replacement: p.to_pod(group, replacement),
            error,
        },
        other => other,
    }
}

/// Run one pod simulation with `shards` worker threads.
///
/// The returned [`PodOutcome`] is bit-identical for every `shards` value:
/// `spsim pod` asserts this at runtime and `cargo xtask lint` pins the
/// fingerprint in `BENCH_pod.json`.
pub fn run_pod(cfg: &PodConfig, shards: usize) -> Result<PodOutcome, String> {
    let layout = PodLayout::new(cfg.chips)?;
    let partition = *layout.partition();
    let groups = layout.groups();
    let workers = shards.clamp(1, groups);
    let epochs_cfg =
        EpochConfig::new(cfg.epoch).ok_or_else(|| "epoch length must be positive".to_string())?;

    // Fixed logical domains, one per rack group, each with its own
    // seed-partitioned RNG stream.
    let mut domains: Vec<Mutex<ShardDomain>> = (0..groups)
        .map(|g| {
            Mutex::new(ShardDomain::new(
                g as u32,
                layout.group_racks(),
                cfg.lanes,
                derive_seed(cfg.seed, g as u64),
                cfg.queue_timeout,
            ))
        })
        .collect();

    // The deterministic demand: a pod-wide arrival trace (job id = trace
    // index) and a failure schedule anchored at the median arrival.
    let trace: Vec<JobRequest> = generate(cfg.jobs, &cfg.arrivals, cfg.seed);
    let anchor = trace
        .get(trace.len() / 2)
        .map_or(SimTime::ZERO, |j| j.arrival);
    let failures: Vec<(SimTime, usize)> = (0..cfg.failures)
        .map(|f| (anchor + SimDuration::from_secs(30) * (f as u64), f % groups))
        .collect();

    let mut journal = Journal::new(JournalHeader {
        racks: layout.racks(),
        lanes: cfg.lanes,
        seed: cfg.seed,
        shape: layout.pod_shape(),
    });

    // Capacity view for delegation: refreshed from actual domain reports
    // at every barrier, optimistically decremented between barriers.
    let mut free_est: Vec<usize> = vec![layout.group_chips(); groups];
    let mut deleg = Fnv::new();
    let mut delegations: u64 = 0;
    let mut next_job = 0usize;
    let mut next_fail = 0usize;
    let mut epoch = 0u64;

    // detlint: allow(DET002) — wall-clock feeds events/sec telemetry
    // only; every simulated output is a pure function of (config, seed).
    let started = std::time::Instant::now();

    let horizon = loop {
        let end = epochs_cfg.end_of(epoch);

        // --- barrier, part 1 (single-threaded): delegate this window's
        // demand in trace order against the previous barrier's view.
        while let Some(job) = trace.get(next_job) {
            if job.arrival >= end {
                break;
            }
            let need = job.shape.volume();
            let g = pick_group(&free_est, need);
            if let Some(f) = free_est.get_mut(g) {
                *f = f.saturating_sub(need);
            }
            deleg.write_u64(next_job as u64);
            deleg.write_u64(g as u64);
            delegations += 1;
            let ev = PodEvent::Arrival {
                job: next_job as u32,
                shape: job.shape,
                duration: job.duration,
            };
            let arrival = job.arrival;
            deliver(&mut domains, g, arrival, ev)?;
            next_job += 1;
        }
        while let Some(&(at, g)) = failures.get(next_fail) {
            if at >= end {
                break;
            }
            deleg.write_u64(u64::MAX);
            deleg.write_u64(g as u64);
            delegations += 1;
            deliver(&mut domains, g, at, PodEvent::InjectFailure)?;
            next_fail += 1;
        }

        // --- window (parallel): every domain runs to the deadline. The
        // pull queue balances load; which thread runs which domain is
        // unobservable because domains are sequential and self-contained.
        let next = AtomicUsize::new(0);
        let run_worker = || -> Result<Vec<BarrierReport>, String> {
            let mut out = Vec::new();
            loop {
                let g = next.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = domains.get(g) else {
                    return Ok(out);
                };
                let mut dom = slot
                    .lock()
                    .map_err(|_| "pod shard mutex poisoned".to_string())?;
                dom.run_until(end);
                dom.sample(end);
                out.push(BarrierReport {
                    group: g,
                    delta: dom.take_delta(),
                    free: dom.free_chips(),
                    pending: dom.pending(),
                });
            }
        };
        let mut parts: Vec<BarrierReport> = Vec::with_capacity(groups);
        if workers == 1 {
            parts.extend(run_worker()?);
        } else {
            let mut worker_err: Option<String> = None;
            // detlint: allow(CONC001) — this IS the sanctioned pod shard
            // worker pool: scoped, atomic pull queue, barrier-ordered fold.
            std::thread::scope(|scope| {
                let run_worker = &run_worker;
                let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run_worker)).collect();
                let mut results: Vec<Result<Vec<BarrierReport>, String>> = vec![run_worker()];
                for h in handles {
                    results.push(
                        h.join()
                            .unwrap_or_else(|_| Err("pod shard worker panicked".to_string())),
                    );
                }
                for res in results {
                    match res {
                        Ok(part) => parts.extend(part),
                        Err(e) => worker_err = Some(e),
                    }
                }
            });
            if let Some(e) = worker_err {
                return Err(e);
            }
        }

        // --- barrier, part 2 (single-threaded): canonical fold. Pull
        // order interleaves arbitrarily; group index restores identity.
        parts.sort_by_key(|r| r.group);
        let mut pending_total = 0usize;
        let mut outboxes: Vec<Vec<Stamped<JournalEntry>>> = Vec::with_capacity(parts.len());
        for rep in parts {
            pending_total += rep.pending;
            if let Some(f) = free_est.get_mut(rep.group) {
                *f = rep.free;
            }
            let g32 = rep.group as u32;
            outboxes.push(
                rep.delta
                    .into_iter()
                    .map(|rec| Stamped {
                        at: rec.at,
                        shard: g32,
                        seq: rec.seq,
                        payload: remap_entry(&partition, rep.group, rec.entry),
                    })
                    .collect(),
            );
        }
        for m in exchange(outboxes) {
            journal.push(m.at, m.payload);
        }

        epoch += 1;
        let drained = next_job == trace.len() && next_fail == failures.len() && pending_total == 0;
        if drained || (cfg.max_epochs > 0 && epoch >= cfg.max_epochs) {
            break end;
        }
        if epoch >= 1_000_000 {
            return Err(format!(
                "pod run did not quiesce within {epoch} epochs (pending={pending_total})"
            ));
        }
    };

    // Final fold, in group-index order: metrics, fingerprints, events.
    let mut metrics = Metrics::new();
    let mut fps: Vec<u64> = Vec::with_capacity(groups);
    let mut events: u64 = 0;
    for slot in &mut domains {
        let dom = slot
            .get_mut()
            .map_err(|_| "pod shard mutex poisoned".to_string())?;
        metrics.merge(dom.metrics());
        fps.push(dom.fingerprint());
        events += dom.events_executed();
    }

    let mut h = Fnv::new();
    h.write_u64(combine(&fps));
    h.write_u64(journal.hash());
    h.write_u64(deleg.finish());
    h.write_u64(events);
    h.write_u64(epoch);
    let fingerprint = h.finish();

    let wall_s = started.elapsed().as_secs_f64();
    let events_per_sec = if wall_s > 0.0 {
        events as f64 / wall_s
    } else {
        0.0
    };

    Ok(PodOutcome {
        fingerprint,
        journal,
        metrics,
        events,
        epochs: epoch,
        shards: workers,
        groups,
        delegations,
        horizon,
        wall_s,
        events_per_sec,
    })
}

/// Deliver one command to a domain at the single-threaded barrier.
fn deliver(
    domains: &mut [Mutex<ShardDomain>],
    group: usize,
    at: SimTime,
    ev: PodEvent,
) -> Result<(), String> {
    let slot = domains
        .get_mut(group)
        .ok_or_else(|| format!("delegation to unknown group {group}"))?;
    let dom = slot
        .get_mut()
        .map_err(|_| "pod shard mutex poisoned".to_string())?;
    dom.deliver(at, ev);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PodConfig {
        PodConfig {
            chips: 256,
            jobs: 40,
            failures: 3,
            ..PodConfig::default()
        }
    }

    #[test]
    fn worker_count_cannot_be_observed() {
        let cfg = small();
        let one = run_pod(&cfg, 1).expect("1 worker");
        let four = run_pod(&cfg, 4).expect("4 workers");
        assert_eq!(one.fingerprint, four.fingerprint);
        assert_eq!(one.journal.hash(), four.journal.hash());
        assert_eq!(one.events, four.events);
        assert_eq!(
            one.metrics.rejection_report_json(),
            four.metrics.rejection_report_json()
        );
    }

    #[test]
    fn run_guiesces_and_journals_all_demand() {
        let cfg = small();
        let out = run_pod(&cfg, 2).expect("runs");
        assert_eq!(out.delegations, (cfg.jobs + cfg.failures) as u64);
        assert_eq!(out.metrics.counter("jobs.arrived"), cfg.jobs as u64);
        assert_eq!(
            out.metrics.counter("failures.injected"),
            cfg.failures as u64
        );
        // Every arrival resolves: admitted+departed, denied, or rejected.
        let resolved = out.metrics.counter("jobs.admitted")
            + out.metrics.counter("jobs.denied.timeout")
            + out.metrics.counter("jobs.denied.program")
            + out.metrics.counter("jobs.rejected.infeasible");
        assert_eq!(resolved, cfg.jobs as u64, "all jobs resolved");
        assert_eq!(
            out.metrics.counter("jobs.admitted"),
            out.metrics.counter("jobs.departed"),
            "quiescence: every admitted job departed"
        );
        assert!(!out.journal.is_empty());
    }

    #[test]
    fn bounded_epochs_stop_early() {
        let mut cfg = small();
        cfg.max_epochs = 2;
        let out = run_pod(&cfg, 2).expect("runs");
        assert_eq!(out.epochs, 2);
        assert_eq!(out.horizon, SimTime::from_ps(2 * 600 * desim::PS_PER_S));
    }

    #[test]
    fn journal_coordinates_are_pod_global() {
        let cfg = small();
        let out = run_pod(&cfg, 2).expect("runs");
        let layout = PodLayout::new(cfg.chips).expect("layout");
        let pod_z = layout.pod_shape().extent(topo::Dim::Z);
        let group_z = layout.partition().group_z();
        let mut beyond_first_group = 0usize;
        for r in out.journal.records() {
            if let JournalEntry::Admit { origin, .. } = &r.entry {
                assert!(origin.p[2] < pod_z, "origin within the pod torus");
                if origin.p[2] >= group_z {
                    beyond_first_group += 1;
                }
            }
        }
        assert!(
            beyond_first_group > 0,
            "delegation spreads admissions beyond group 0"
        );
    }

    #[test]
    fn pod_journal_times_are_globally_ordered() {
        let out = run_pod(&small(), 3).expect("runs");
        let recs = out.journal.records();
        for w in recs.windows(2) {
            if let [a, b] = w {
                assert!(a.at <= b.at, "exchange order is globally time-sorted");
            }
        }
    }
}
