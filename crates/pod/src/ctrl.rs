//! `PodCtrl`: the pod-level control plane.
//!
//! One run admits a deterministic job trace against the whole 4096-chip
//! torus, delegates every admission to exactly one rack-group shard
//! domain, executes the domains in sim-time epoch windows on a
//! work-stealing thread pool, and folds the per-shard journals into one
//! pod-level append-only FNV journal through the canonical
//! `(time, shard, seq)` exchange of [`desim::epoch`]. Everything the run
//! reports — fingerprint, journal hash, merged metrics — is a pure
//! function of `(PodConfig, seed)`; the worker-thread count (`shards`)
//! only changes which OS thread executes which domain window.
//!
//! The worker-count-invariance argument, end to end:
//!
//! 1. the shard *partition* is fixed geometry ([`PodLayout`]);
//! 2. delegation runs single-threaded at the epoch barrier, against the
//!    capacity view of the previous barrier, in trace order;
//! 3. each domain's window is sequential and self-contained
//!    ([`ShardDomain`]);
//! 4. barrier folding sorts deltas by `(time, shard, seq)` — a pure
//!    function of the deltas, not of completion order;
//! 5. metrics and fingerprints fold in group-index order.
//!
//! **Snapshots & crash restart.** With [`PodOptions::snapshot_every`] set,
//! the run captures a [`PodSnapshot`] at every N-th epoch barrier: each
//! domain journals a `Snapshot` record (folded to the pod journal like any
//! other record, so the hash chain commits to the capture), and the pod
//! level records its delegation cursors, capacity view, digest state, and
//! journal watermark. [`resume_pod`] rebuilds the run from a snapshot and
//! drives it to completion; the resumed outcome is bit-identical to the
//! uninterrupted run's — same fingerprint, journal hash, logical length,
//! and metrics — because every fingerprint input is restored. With
//! [`PodOptions::compact`], shard and pod journals are truncated below
//! each snapshot watermark; [`Journal::compact_to`] folds the dropped
//! records into the base hash, so compaction is invisible to the chain.

use crate::layout::{PodLayout, POD_CHIPS};
use crate::shard::{PodEvent, ShardDomain, ShardSnapshot};
use desim::epoch::{exchange, EpochConfig, Stamped};
use desim::fnv::{combine, derive_seed, Fnv};
use desim::{SimDuration, SimTime, SnapReader, SnapWriter};
use fabricd::{Journal, JournalEntry, JournalHeader, Metrics, RouteTelemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use topo::RackGroupPartition;
use workloads::{generate, ArrivalParams, JobRequest};

/// Parameters of one pod run. Worker count is deliberately *not* here —
/// it is a property of the execution, not of the simulated system, and
/// must not affect any output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodConfig {
    /// Total chips (positive multiple of one 64-chip rack).
    pub chips: usize,
    /// Wavelength lanes per tenant ring circuit.
    pub lanes: usize,
    /// Pod seed; per-domain streams derive as `derive_seed(seed, group)`.
    pub seed: u64,
    /// Jobs in the arrival trace.
    pub jobs: usize,
    /// Chip failures to inject, round-robin across domains.
    pub failures: usize,
    /// Epoch window length (barrier cadence).
    pub epoch: SimDuration,
    /// Stop after this many epochs; 0 = run to quiescence.
    pub max_epochs: u64,
    /// How long a job may wait in a domain's admission queue.
    pub queue_timeout: SimDuration,
    /// Arrival process parameters.
    pub arrivals: ArrivalParams,
}

impl Default for PodConfig {
    fn default() -> Self {
        PodConfig {
            chips: POD_CHIPS,
            lanes: 2,
            seed: 7,
            jobs: 256,
            failures: 8,
            epoch: SimDuration::from_secs(600),
            max_epochs: 0,
            queue_timeout: SimDuration::from_secs(1_800),
            arrivals: ArrivalParams::default(),
        }
    }
}

/// Execution options orthogonal to the simulated system. Snapshot cadence
/// is part of the decision record (captures journal `Snapshot` records),
/// so two runs compare bit-for-bit only under the same `snapshot_every`;
/// `compact` and `crash_after_epochs` never change any output hash.
#[derive(Debug, Clone, Copy, Default)]
pub struct PodOptions {
    /// Capture a [`PodSnapshot`] every N epoch barriers (0 = never).
    pub snapshot_every: u64,
    /// Truncate shard and pod journals below each snapshot watermark.
    pub compact: bool,
    /// Simulate a crash: abandon the run after this many epochs. The
    /// outcome reports `crashed = true` and carries the snapshots taken
    /// so far, from which [`resume_pod`] can restart.
    pub crash_after_epochs: Option<u64>,
}

/// Everything a finished pod run reports.
#[derive(Debug)]
pub struct PodOutcome {
    /// The run fingerprint: per-domain fingerprints (group order), the
    /// pod journal hash, the delegation digest, and the event count,
    /// folded through FNV-1a. Equal fingerprints ⇔ identical runs.
    pub fingerprint: u64,
    /// The pod-level journal: every domain's records, coordinates
    /// remapped into the pod torus, in canonical exchange order.
    pub journal: Journal,
    /// All domains' metrics, folded in group-index order.
    pub metrics: Metrics,
    /// Plan-library / cross-plan cache counters, summed over all domains
    /// in group-index order. Telemetry only — never part of the
    /// fingerprint (a cold cache must replay bit-identically to a warm
    /// one), but deterministic and shard-count invariant, so
    /// `BENCH_pod.json` gates the counts exactly.
    pub route: RouteTelemetry,
    /// Local events executed across all domains.
    pub events: u64,
    /// Epoch windows executed.
    pub epochs: u64,
    /// Worker threads used (echo of the request, clamped to the domain
    /// count; does not affect any other field).
    pub shards: usize,
    /// Shard domains in the partition.
    pub groups: usize,
    /// Commands delegated across the shard boundary.
    pub delegations: u64,
    /// Simulated horizon reached (end of the last epoch window).
    pub horizon: SimTime,
    /// Wall-clock seconds (telemetry only; never part of the fingerprint).
    pub wall_s: f64,
    /// Events per wall-clock second — the `BENCH_pod.json` throughput.
    pub events_per_sec: f64,
    /// Snapshots captured, oldest first (empty unless
    /// [`PodOptions::snapshot_every`] is set).
    pub snapshots: Vec<PodSnapshot>,
    /// True when the run stopped at [`PodOptions::crash_after_epochs`]
    /// instead of quiescing.
    pub crashed: bool,
}

/// What one domain reports at an epoch barrier.
struct BarrierReport {
    group: usize,
    delta: Vec<fabricd::Record>,
    free: usize,
    pending: usize,
}

/// Greedy delegation: the fittest domain that can hold `need` chips
/// (most free capacity, ties to the lowest group index); if none can,
/// the domain with the most free capacity anyway — it will queue or
/// deny deterministically.
fn pick_group(free: &[usize], need: usize) -> usize {
    let mut best_any = (0usize, 0usize);
    let mut best_fit: Option<(usize, usize)> = None;
    for (g, &f) in free.iter().enumerate() {
        if f > best_any.1 {
            best_any = (g, f);
        }
        if f >= need && best_fit.is_none_or(|(_, bf)| f > bf) {
            best_fit = Some((g, f));
        }
    }
    best_fit.unwrap_or(best_any).0
}

/// Remap a domain-local journal entry into pod coordinates: slice
/// origins and chip coordinates shift by the group's Z offset, incident
/// ids are namespaced by group so they stay unique pod-wide.
fn remap_entry(p: &RackGroupPartition, group: usize, entry: JournalEntry) -> JournalEntry {
    let incident_id = |local: u64| ((group as u64) << 32) | (local & 0xffff_ffff);
    match entry {
        JournalEntry::Admit {
            job,
            origin,
            extent,
        } => JournalEntry::Admit {
            job,
            origin: p.to_pod(group, origin),
            extent,
        },
        JournalEntry::Fail {
            incident,
            chip,
            victim,
            spliced,
        } => JournalEntry::Fail {
            incident: incident_id(incident),
            chip: p.to_pod(group, chip),
            victim,
            spliced,
        },
        JournalEntry::Repair {
            incident,
            replacement,
            circuits,
            servers_touched,
            blast_servers,
        } => JournalEntry::Repair {
            incident: incident_id(incident),
            replacement: p.to_pod(group, replacement),
            circuits,
            servers_touched,
            blast_servers,
        },
        JournalEntry::RepairFailed {
            incident,
            replacement,
            error,
        } => JournalEntry::RepairFailed {
            incident: incident_id(incident),
            replacement: p.to_pod(group, replacement),
            error,
        },
        other => other,
    }
}

/// The live pod run: domains plus the pod-level control state that a
/// [`PodSnapshot`] must capture to make crash restart exact.
struct PodRun {
    cfg: PodConfig,
    layout: PodLayout,
    domains: Vec<Mutex<ShardDomain>>,
    trace: Vec<JobRequest>,
    failures: Vec<(SimTime, usize)>,
    journal: Journal,
    free_est: Vec<usize>,
    deleg: Fnv,
    delegations: u64,
    next_job: usize,
    next_fail: usize,
    epoch: u64,
}

impl PodRun {
    /// A fresh run at epoch 0: pristine domains, empty journal, trace and
    /// failure schedule regenerated from the config (both are pure
    /// functions of it, so a snapshot need not carry them).
    fn fresh(cfg: &PodConfig) -> Result<PodRun, String> {
        let layout = PodLayout::new(cfg.chips)?;
        let groups = layout.groups();
        let domains: Vec<Mutex<ShardDomain>> = (0..groups)
            .map(|g| {
                Mutex::new(ShardDomain::new(
                    g as u32,
                    layout.group_racks(),
                    cfg.lanes,
                    derive_seed(cfg.seed, g as u64),
                    cfg.queue_timeout,
                ))
            })
            .collect();
        let (trace, failures) = demand(cfg, groups);
        let journal = Journal::new(JournalHeader {
            racks: layout.racks(),
            lanes: cfg.lanes,
            seed: cfg.seed,
            shape: layout.pod_shape(),
        });
        let free_est = vec![layout.group_chips(); groups];
        Ok(PodRun {
            cfg: *cfg,
            layout,
            domains,
            trace,
            failures,
            journal,
            free_est,
            deleg: Fnv::new(),
            delegations: 0,
            next_job: 0,
            next_fail: 0,
            epoch: 0,
        })
    }

    /// Rebuild the run a [`PodSnapshot`] captured: restored domains, a
    /// pod journal resuming mid-chain at the recorded watermark, and the
    /// delegation cursors/digest exactly where the capture left them.
    fn from_snapshot(snap: &PodSnapshot) -> Result<PodRun, String> {
        let cfg = snap.config;
        let layout = PodLayout::new(cfg.chips)?;
        let groups = layout.groups();
        let header = JournalHeader {
            racks: layout.racks(),
            lanes: cfg.lanes,
            seed: cfg.seed,
            shape: layout.pod_shape(),
        };
        if header != snap.header {
            return Err("pod snapshot: header does not match its config".to_string());
        }
        if snap.domains.len() != groups {
            return Err(format!(
                "pod snapshot: {} domain captures for a {groups}-group layout",
                snap.domains.len()
            ));
        }
        if snap.free_est.len() != groups {
            return Err(format!(
                "pod snapshot: capacity view has {} entries for {groups} groups",
                snap.free_est.len()
            ));
        }
        let mut domains = Vec::with_capacity(groups);
        for (g, ds) in snap.domains.iter().enumerate() {
            if ds.group as usize != g {
                return Err(format!(
                    "pod snapshot: domain capture {g} claims group {}",
                    ds.group
                ));
            }
            domains.push(Mutex::new(ShardDomain::restore(ds)?));
        }
        let (trace, failures) = demand(&cfg, groups);
        if snap.next_job > trace.len() || snap.next_fail > failures.len() {
            return Err("pod snapshot: delegation cursor beyond the demand schedule".to_string());
        }
        Ok(PodRun {
            cfg,
            layout,
            domains,
            trace,
            failures,
            journal: Journal::with_base(snap.header, snap.journal_next_seq, snap.journal_fnv),
            free_est: snap.free_est.clone(),
            deleg: Fnv::from_state(snap.deleg_state),
            delegations: snap.delegations,
            next_job: snap.next_job,
            next_fail: snap.next_fail,
            epoch: snap.epoch,
        })
    }

    /// Capture the run at an epoch barrier (every delta already folded).
    /// Each domain journals a `Snapshot` record; folding those records to
    /// the pod journal *before* recording the watermark makes the pod
    /// hash chain commit to the capture. With `compact`, both journal
    /// levels are then truncated below their watermarks.
    fn capture(&mut self, at: SimTime, compact: bool) -> Result<PodSnapshot, String> {
        let partition = *self.layout.partition();
        let groups = self.domains.len();
        let mut doms = Vec::with_capacity(groups);
        for (g, slot) in self.domains.iter_mut().enumerate() {
            let dom = slot
                .get_mut()
                .map_err(|_| "pod shard mutex poisoned".to_string())?;
            let ds = dom.capture(at);
            for rec in dom.take_delta() {
                self.journal
                    .push(rec.at, remap_entry(&partition, g, rec.entry));
            }
            if compact {
                dom.compact(ds.fabric.seq)?;
            }
            doms.push(ds);
        }
        let snap = PodSnapshot {
            epoch: self.epoch,
            at,
            config: self.cfg,
            header: *self.journal.header(),
            journal_next_seq: self.journal.next_seq(),
            journal_fnv: self.journal.hash(),
            deleg_state: self.deleg.state(),
            delegations: self.delegations,
            next_job: self.next_job,
            next_fail: self.next_fail,
            free_est: self.free_est.clone(),
            domains: doms,
        };
        if compact {
            // The last `groups` records are the per-domain Snapshot
            // records in group order; group 0's is the legal watermark.
            let watermark = self.journal.next_seq() - groups as u64;
            self.journal.compact_to(watermark)?;
        }
        Ok(snap)
    }

    /// Drive the run to quiescence (or a configured stop) with `shards`
    /// worker threads, capturing snapshots on the configured cadence.
    fn drive(mut self, shards: usize, opts: &PodOptions) -> Result<PodOutcome, String> {
        let cfg = self.cfg;
        let groups = self.layout.groups();
        let partition = *self.layout.partition();
        let workers = shards.clamp(1, groups);
        let epochs_cfg = EpochConfig::new(cfg.epoch)
            .ok_or_else(|| "epoch length must be positive".to_string())?;

        let mut snapshots: Vec<PodSnapshot> = Vec::new();
        let mut crashed = false;

        // detlint: allow(DET002) — wall-clock feeds events/sec telemetry
        // only; every simulated output is a pure function of (config, seed).
        let started = std::time::Instant::now();

        let horizon = loop {
            let end = epochs_cfg.end_of(self.epoch);

            // --- barrier, part 1 (single-threaded): delegate this window's
            // demand in trace order against the previous barrier's view.
            while let Some(job) = self.trace.get(self.next_job) {
                if job.arrival >= end {
                    break;
                }
                let need = job.shape.volume();
                let g = pick_group(&self.free_est, need);
                if let Some(f) = self.free_est.get_mut(g) {
                    *f = f.saturating_sub(need);
                }
                self.deleg.write_u64(self.next_job as u64);
                self.deleg.write_u64(g as u64);
                self.delegations += 1;
                let ev = PodEvent::Arrival {
                    job: self.next_job as u32,
                    shape: job.shape,
                    duration: job.duration,
                };
                let arrival = job.arrival;
                deliver(&mut self.domains, g, arrival, ev)?;
                self.next_job += 1;
            }
            while let Some(&(at, g)) = self.failures.get(self.next_fail) {
                if at >= end {
                    break;
                }
                self.deleg.write_u64(u64::MAX);
                self.deleg.write_u64(g as u64);
                self.delegations += 1;
                deliver(&mut self.domains, g, at, PodEvent::InjectFailure)?;
                self.next_fail += 1;
            }

            // --- window (parallel): every domain runs to the deadline. The
            // pull queue balances load; which thread runs which domain is
            // unobservable because domains are sequential and self-contained.
            let domains = &self.domains;
            let next = AtomicUsize::new(0);
            let run_worker = || -> Result<Vec<BarrierReport>, String> {
                let mut out = Vec::new();
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = domains.get(g) else {
                        return Ok(out);
                    };
                    let mut dom = slot
                        .lock()
                        .map_err(|_| "pod shard mutex poisoned".to_string())?;
                    dom.run_until(end);
                    dom.sample(end);
                    out.push(BarrierReport {
                        group: g,
                        delta: dom.take_delta(),
                        free: dom.free_chips(),
                        pending: dom.pending(),
                    });
                }
            };
            let mut parts: Vec<BarrierReport> = Vec::with_capacity(groups);
            if workers == 1 {
                parts.extend(run_worker()?);
            } else {
                let mut worker_err: Option<String> = None;
                // detlint: allow(CONC001) — this IS the sanctioned pod shard
                // worker pool: scoped, atomic pull queue, barrier-ordered fold.
                std::thread::scope(|scope| {
                    let run_worker = &run_worker;
                    let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run_worker)).collect();
                    let mut results: Vec<Result<Vec<BarrierReport>, String>> = vec![run_worker()];
                    for h in handles {
                        results.push(
                            h.join()
                                .unwrap_or_else(|_| Err("pod shard worker panicked".to_string())),
                        );
                    }
                    for res in results {
                        match res {
                            Ok(part) => parts.extend(part),
                            Err(e) => worker_err = Some(e),
                        }
                    }
                });
                if let Some(e) = worker_err {
                    return Err(e);
                }
            }

            // --- barrier, part 2 (single-threaded): canonical fold. Pull
            // order interleaves arbitrarily; group index restores identity.
            parts.sort_by_key(|r| r.group);
            let mut pending_total = 0usize;
            let mut outboxes: Vec<Vec<Stamped<JournalEntry>>> = Vec::with_capacity(parts.len());
            for rep in parts {
                pending_total += rep.pending;
                if let Some(f) = self.free_est.get_mut(rep.group) {
                    *f = rep.free;
                }
                let g32 = rep.group as u32;
                outboxes.push(
                    rep.delta
                        .into_iter()
                        .map(|rec| Stamped {
                            at: rec.at,
                            shard: g32,
                            seq: rec.seq,
                            payload: remap_entry(&partition, rep.group, rec.entry),
                        })
                        .collect(),
                );
            }
            for m in exchange(outboxes) {
                self.journal.push(m.at, m.payload);
            }

            self.epoch += 1;

            // Snapshot cadence is a pure function of the epoch counter, so
            // interrupted and uninterrupted runs capture (and journal the
            // Snapshot records) at identical instants.
            if opts.snapshot_every > 0 && self.epoch.is_multiple_of(opts.snapshot_every) {
                snapshots.push(self.capture(end, opts.compact)?);
            }

            let drained = self.next_job == self.trace.len()
                && self.next_fail == self.failures.len()
                && pending_total == 0;
            if drained || (cfg.max_epochs > 0 && self.epoch >= cfg.max_epochs) {
                break end;
            }
            if let Some(limit) = opts.crash_after_epochs {
                if self.epoch >= limit {
                    crashed = true;
                    break end;
                }
            }
            if self.epoch >= 1_000_000 {
                return Err(format!(
                    "pod run did not quiesce within {} epochs (pending={pending_total})",
                    self.epoch
                ));
            }
        };

        // Final fold, in group-index order: metrics, fingerprints, events,
        // and the plan-library telemetry (summed, never fingerprinted).
        let mut metrics = Metrics::new();
        let mut route = RouteTelemetry::default();
        let mut fps: Vec<u64> = Vec::with_capacity(groups);
        let mut events: u64 = 0;
        for slot in &mut self.domains {
            let dom = slot
                .get_mut()
                .map_err(|_| "pod shard mutex poisoned".to_string())?;
            metrics.merge(dom.metrics());
            route.merge(&RouteTelemetry::of(dom.state()));
            fps.push(dom.fingerprint());
            events += dom.events_executed();
        }

        let mut h = Fnv::new();
        h.write_u64(combine(&fps));
        h.write_u64(self.journal.hash());
        h.write_u64(self.deleg.finish());
        h.write_u64(events);
        h.write_u64(self.epoch);
        let fingerprint = h.finish();

        let wall_s = started.elapsed().as_secs_f64();
        let events_per_sec = if wall_s > 0.0 {
            events as f64 / wall_s
        } else {
            0.0
        };

        Ok(PodOutcome {
            fingerprint,
            journal: self.journal,
            metrics,
            route,
            events,
            epochs: self.epoch,
            shards: workers,
            groups,
            delegations: self.delegations,
            horizon,
            wall_s,
            events_per_sec,
            snapshots,
            crashed,
        })
    }
}

/// The deterministic demand: a pod-wide arrival trace (job id = trace
/// index) and a failure schedule anchored at the median arrival.
fn demand(cfg: &PodConfig, groups: usize) -> (Vec<JobRequest>, Vec<(SimTime, usize)>) {
    let trace: Vec<JobRequest> = generate(cfg.jobs, &cfg.arrivals, cfg.seed);
    let anchor = trace
        .get(trace.len() / 2)
        .map_or(SimTime::ZERO, |j| j.arrival);
    let failures: Vec<(SimTime, usize)> = (0..cfg.failures)
        .map(|f| {
            (
                anchor + SimDuration::from_secs(30) * (f as u64),
                f % groups.max(1),
            )
        })
        .collect();
    (trace, failures)
}

/// Run one pod simulation with `shards` worker threads.
///
/// The returned [`PodOutcome`] is bit-identical for every `shards` value:
/// `spsim pod` asserts this at runtime and `cargo xtask lint` pins the
/// fingerprint in `BENCH_pod.json`.
pub fn run_pod(cfg: &PodConfig, shards: usize) -> Result<PodOutcome, String> {
    run_pod_with(cfg, shards, &PodOptions::default())
}

/// Run one pod simulation with explicit [`PodOptions`] (snapshot cadence,
/// compaction, simulated crash).
pub fn run_pod_with(
    cfg: &PodConfig,
    shards: usize,
    opts: &PodOptions,
) -> Result<PodOutcome, String> {
    PodRun::fresh(cfg)?.drive(shards, opts)
}

/// Resume a pod run from a [`PodSnapshot`] and drive it to completion.
///
/// Under the same [`PodOptions::snapshot_every`] cadence as the original
/// run, the resumed outcome is bit-identical to the uninterrupted one:
/// fingerprint, journal hash, logical journal length, event count, and
/// metrics all match, and the worker count remains unobservable.
pub fn resume_pod(
    snap: &PodSnapshot,
    shards: usize,
    opts: &PodOptions,
) -> Result<PodOutcome, String> {
    PodRun::from_snapshot(snap)?.drive(shards, opts)
}

/// First line of the pod snapshot artifact.
const POD_SNAP_MAGIC: &str = "spsim-pod-snapshot v1";

/// A consistent capture of a whole pod run at an epoch barrier: one
/// [`ShardSnapshot`] per rack-group domain plus the pod-level control
/// state (delegation cursors and digest, capacity view, journal
/// watermark). Serializable with [`to_text`](Self::to_text) /
/// [`parse`](Self::parse); the artifact is integrity-checked by an FNV
/// fingerprint on its first line.
#[derive(Debug, Clone, PartialEq)]
pub struct PodSnapshot {
    /// Epochs completed when the capture was taken.
    pub epoch: u64,
    /// Capture instant (end of the last executed epoch window).
    pub at: SimTime,
    /// The run's configuration; demand schedules are regenerated from it
    /// on restore (they are pure functions of the config).
    pub config: PodConfig,
    /// Pod journal header (validated against `config` on restore).
    pub header: JournalHeader,
    /// Pod journal watermark: sequence the next record will take.
    pub journal_next_seq: u64,
    /// Pod journal hash at the watermark (resumes the chain).
    pub journal_fnv: u64,
    /// Delegation digest state at the capture.
    pub deleg_state: u64,
    /// Commands delegated before the capture.
    pub delegations: u64,
    /// Next trace index to delegate.
    pub next_job: usize,
    /// Next failure-schedule index to delegate.
    pub next_fail: usize,
    /// Per-group capacity view at the capture.
    pub free_est: Vec<usize>,
    /// Per-domain captures, in group-index order.
    pub domains: Vec<ShardSnapshot>,
}

impl PodSnapshot {
    fn body(&self) -> String {
        let mut w = SnapWriter::new();
        w.section("pod");
        w.u64("epoch", self.epoch);
        w.u64("at_ps", self.at.as_ps());
        w.u64("journal_next_seq", self.journal_next_seq);
        w.u64("journal_fnv", self.journal_fnv);
        w.u64("racks", self.header.racks as u64);
        w.u64("hdr_lanes", self.header.lanes as u64);
        w.u64("hdr_seed", self.header.seed);
        let [sx, sy, sz] = self.header.shape.dims;
        w.u64("sx", sx as u64);
        w.u64("sy", sy as u64);
        w.u64("sz", sz as u64);
        w.u64("deleg_state", self.deleg_state);
        w.u64("delegations", self.delegations);
        w.u64("next_job", self.next_job as u64);
        w.u64("next_fail", self.next_fail as u64);
        w.u64("groups", self.free_est.len() as u64);
        for &f in &self.free_est {
            w.u64("free", f as u64);
        }
        w.section("config");
        w.u64("chips", self.config.chips as u64);
        w.u64("lanes", self.config.lanes as u64);
        w.u64("seed", self.config.seed);
        w.u64("jobs", self.config.jobs as u64);
        w.u64("failures", self.config.failures as u64);
        w.u64("epoch_ps", self.config.epoch.as_ps());
        w.u64("max_epochs", self.config.max_epochs);
        w.u64("queue_timeout_ps", self.config.queue_timeout.as_ps());
        w.u64(
            "mean_interarrival_ps",
            self.config.arrivals.mean_interarrival.as_ps(),
        );
        w.u64(
            "mean_duration_ps",
            self.config.arrivals.mean_duration.as_ps(),
        );
        w.f64("small_job_skew", self.config.arrivals.small_job_skew);
        for d in &self.domains {
            d.write_snap(&mut w);
        }
        w.finish()
    }

    /// Serialize to the integrity-checked artifact format.
    pub fn to_text(&self) -> String {
        let body = self.body();
        let fnv = desim::snap::fingerprint(&body);
        format!("{POD_SNAP_MAGIC} fnv={fnv:016x}\n{body}")
    }

    /// Parse a [`to_text`](Self::to_text) artifact, verifying the FNV
    /// fingerprint and every structural invariant.
    pub fn parse(text: &str) -> Result<PodSnapshot, String> {
        let (first, body) = text
            .split_once('\n')
            .ok_or_else(|| "pod snapshot: missing artifact body".to_string())?;
        let tag = format!("{POD_SNAP_MAGIC} fnv=");
        let fnv_hex = first
            .strip_prefix(tag.as_str())
            .ok_or_else(|| format!("pod snapshot: expected `{POD_SNAP_MAGIC}` artifact"))?;
        let fnv = u64::from_str_radix(fnv_hex, 16)
            .map_err(|_| "pod snapshot: malformed fingerprint".to_string())?;
        if desim::snap::fingerprint(body) != fnv {
            return Err("pod snapshot: artifact fingerprint mismatch (corrupt body)".to_string());
        }
        let mut r = SnapReader::new(body);
        r.section("pod")?;
        let epoch = r.u64("epoch")?;
        let at = SimTime::from_ps(r.u64("at_ps")?);
        let journal_next_seq = r.u64("journal_next_seq")?;
        let journal_fnv = r.u64("journal_fnv")?;
        let racks = r.u64("racks")? as usize;
        let hdr_lanes = r.u64("hdr_lanes")? as usize;
        let hdr_seed = r.u64("hdr_seed")?;
        let sx = r.u64("sx")? as usize;
        let sy = r.u64("sy")? as usize;
        let sz = r.u64("sz")? as usize;
        let deleg_state = r.u64("deleg_state")?;
        let delegations = r.u64("delegations")?;
        let next_job = r.u64("next_job")? as usize;
        let next_fail = r.u64("next_fail")? as usize;
        let groups = r.u64("groups")? as usize;
        let mut free_est = Vec::with_capacity(groups);
        for _ in 0..groups {
            free_est.push(r.u64("free")? as usize);
        }
        r.section("config")?;
        let config = PodConfig {
            chips: r.u64("chips")? as usize,
            lanes: r.u64("lanes")? as usize,
            seed: r.u64("seed")?,
            jobs: r.u64("jobs")? as usize,
            failures: r.u64("failures")? as usize,
            epoch: SimDuration::from_ps(r.u64("epoch_ps")?),
            max_epochs: r.u64("max_epochs")?,
            queue_timeout: SimDuration::from_ps(r.u64("queue_timeout_ps")?),
            arrivals: ArrivalParams {
                mean_interarrival: SimDuration::from_ps(r.u64("mean_interarrival_ps")?),
                mean_duration: SimDuration::from_ps(r.u64("mean_duration_ps")?),
                small_job_skew: r.f64("small_job_skew")?,
            },
        };
        let mut domains = Vec::with_capacity(groups);
        for g in 0..groups {
            let d = ShardSnapshot::read_snap(&mut r)?;
            if d.group as usize != g {
                return Err(format!(
                    "pod snapshot: domain capture {g} claims group {}",
                    d.group
                ));
            }
            domains.push(d);
        }
        r.done()?;
        Ok(PodSnapshot {
            epoch,
            at,
            config,
            header: JournalHeader {
                racks,
                lanes: hdr_lanes,
                seed: hdr_seed,
                shape: topo::Shape3::new(sx, sy, sz),
            },
            journal_next_seq,
            journal_fnv,
            deleg_state,
            delegations,
            next_job,
            next_fail,
            free_est,
            domains,
        })
    }
}

/// Deliver one command to a domain at the single-threaded barrier.
fn deliver(
    domains: &mut [Mutex<ShardDomain>],
    group: usize,
    at: SimTime,
    ev: PodEvent,
) -> Result<(), String> {
    let slot = domains
        .get_mut(group)
        .ok_or_else(|| format!("delegation to unknown group {group}"))?;
    let dom = slot
        .get_mut()
        .map_err(|_| "pod shard mutex poisoned".to_string())?;
    dom.deliver(at, ev);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PodConfig {
        PodConfig {
            chips: 256,
            jobs: 40,
            failures: 3,
            ..PodConfig::default()
        }
    }

    #[test]
    fn worker_count_cannot_be_observed() {
        let cfg = small();
        let one = run_pod(&cfg, 1).expect("1 worker");
        let four = run_pod(&cfg, 4).expect("4 workers");
        assert_eq!(one.fingerprint, four.fingerprint);
        assert_eq!(one.journal.hash(), four.journal.hash());
        assert_eq!(one.events, four.events);
        assert_eq!(
            one.metrics.rejection_report_json(),
            four.metrics.rejection_report_json()
        );
        assert_eq!(one.route, four.route, "plan telemetry is shard-invariant");
    }

    #[test]
    fn run_guiesces_and_journals_all_demand() {
        let cfg = small();
        let out = run_pod(&cfg, 2).expect("runs");
        assert_eq!(out.delegations, (cfg.jobs + cfg.failures) as u64);
        assert_eq!(out.metrics.counter("jobs.arrived"), cfg.jobs as u64);
        assert_eq!(
            out.metrics.counter("failures.injected"),
            cfg.failures as u64
        );
        // Every arrival resolves: admitted+departed, denied, or rejected.
        let resolved = out.metrics.counter("jobs.admitted")
            + out.metrics.counter("jobs.denied.timeout")
            + out.metrics.counter("jobs.denied.program")
            + out.metrics.counter("jobs.rejected.infeasible");
        assert_eq!(resolved, cfg.jobs as u64, "all jobs resolved");
        assert_eq!(
            out.metrics.counter("jobs.admitted"),
            out.metrics.counter("jobs.departed"),
            "quiescence: every admitted job departed"
        );
        assert!(!out.journal.is_empty());
        assert!(out.snapshots.is_empty(), "no snapshots unless requested");
        assert!(!out.crashed);
    }

    #[test]
    fn bounded_epochs_stop_early() {
        let mut cfg = small();
        cfg.max_epochs = 2;
        let out = run_pod(&cfg, 2).expect("runs");
        assert_eq!(out.epochs, 2);
        assert_eq!(out.horizon, SimTime::from_ps(2 * 600 * desim::PS_PER_S));
    }

    #[test]
    fn journal_coordinates_are_pod_global() {
        let cfg = small();
        let out = run_pod(&cfg, 2).expect("runs");
        let layout = PodLayout::new(cfg.chips).expect("layout");
        let pod_z = layout.pod_shape().extent(topo::Dim::Z);
        let group_z = layout.partition().group_z();
        let mut beyond_first_group = 0usize;
        for r in out.journal.records() {
            if let JournalEntry::Admit { origin, .. } = &r.entry {
                assert!(origin.p[2] < pod_z, "origin within the pod torus");
                if origin.p[2] >= group_z {
                    beyond_first_group += 1;
                }
            }
        }
        assert!(
            beyond_first_group > 0,
            "delegation spreads admissions beyond group 0"
        );
    }

    #[test]
    fn pod_journal_times_are_globally_ordered() {
        let out = run_pod(&small(), 3).expect("runs");
        let recs = out.journal.records();
        for w in recs.windows(2) {
            if let [a, b] = w {
                assert!(a.at <= b.at, "exchange order is globally time-sorted");
            }
        }
    }

    #[test]
    fn snapshots_are_worker_count_invariant() {
        let cfg = small();
        let opts = PodOptions {
            snapshot_every: 2,
            ..PodOptions::default()
        };
        let one = run_pod_with(&cfg, 1, &opts).expect("1 worker");
        let four = run_pod_with(&cfg, 4, &opts).expect("4 workers");
        assert!(!one.snapshots.is_empty(), "cadence produced snapshots");
        assert_eq!(one.snapshots, four.snapshots);
        assert_eq!(one.fingerprint, four.fingerprint);
        let two = run_pod_with(&cfg, 2, &opts).expect("2 workers");
        assert_eq!(one.snapshots, two.snapshots);
    }

    #[test]
    fn crash_restart_resumes_bit_identically() {
        let cfg = small();
        let opts = PodOptions {
            snapshot_every: 1,
            ..PodOptions::default()
        };
        let full = run_pod_with(&cfg, 2, &opts).expect("uninterrupted");
        assert!(full.epochs >= 2, "need room to crash mid-run");
        assert!(!full.crashed);

        // Crash mid-run — with compaction on, so the restart also proves
        // truncated journals lose nothing.
        let crashed = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 1,
                compact: true,
                crash_after_epochs: Some(full.epochs / 2),
            },
        )
        .expect("crashed run");
        assert!(crashed.crashed);
        assert!(crashed.epochs < full.epochs);

        let snap = crashed.snapshots.last().expect("snapshot before crash");
        let resumed = resume_pod(
            snap,
            3,
            &PodOptions {
                snapshot_every: 1,
                compact: true,
                crash_after_epochs: None,
            },
        )
        .expect("resumed run");
        assert!(!resumed.crashed);
        assert_eq!(resumed.epochs, full.epochs);
        assert_eq!(resumed.fingerprint, full.fingerprint, "fingerprint");
        assert_eq!(resumed.journal.hash(), full.journal.hash(), "journal hash");
        assert_eq!(resumed.journal.len(), full.journal.len(), "logical length");
        assert_eq!(resumed.events, full.events);
        assert_eq!(resumed.delegations, full.delegations);
        assert_eq!(resumed.horizon, full.horizon);
        assert_eq!(
            resumed.metrics.rejection_report_json(),
            full.metrics.rejection_report_json()
        );
    }

    #[test]
    fn compaction_is_invisible_to_the_pod_hash_chain() {
        let cfg = small();
        let plain = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 2,
                ..PodOptions::default()
            },
        )
        .expect("plain");
        let compacted = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 2,
                compact: true,
                ..PodOptions::default()
            },
        )
        .expect("compacted");
        assert!(compacted.journal.base_seq() > 0, "compaction happened");
        assert!(
            compacted.journal.records().len() < plain.journal.records().len(),
            "compaction retained fewer records"
        );
        assert_eq!(plain.journal.hash(), compacted.journal.hash());
        assert_eq!(plain.journal.len(), compacted.journal.len());
        assert_eq!(plain.fingerprint, compacted.fingerprint);
        assert_eq!(plain.snapshots, compacted.snapshots);
    }

    #[test]
    fn pod_snapshot_artifact_round_trips() {
        let cfg = small();
        let out = run_pod_with(
            &cfg,
            2,
            &PodOptions {
                snapshot_every: 2,
                ..PodOptions::default()
            },
        )
        .expect("runs");
        let snap = out.snapshots.first().expect("snapshot");
        let text = snap.to_text();
        let back = PodSnapshot::parse(&text).expect("parses");
        assert_eq!(&back, snap);

        let tampered = text.replacen("next_job", "next_jxb", 1);
        assert!(PodSnapshot::parse(&tampered).is_err(), "tamper detected");
        let truncated = &text[..text.len() - 2];
        assert!(
            PodSnapshot::parse(truncated).is_err(),
            "truncation detected"
        );
    }
}
