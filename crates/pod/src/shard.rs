//! One shard domain: a rack group's fabricd instance driven by a
//! deterministic local event queue in epoch windows.
//!
//! A domain is sequential and self-contained — the only way work enters
//! it is [`ShardDomain::deliver`], called single-threaded at the epoch
//! barrier by the pod control plane. Inside a window the domain runs its
//! local events strictly in `(time, seq)` order, exactly like a private
//! [`desim::Engine`], so which OS thread executes the window cannot be
//! observed. Everything the rest of the pod learns about a domain —
//! journal deltas, free capacity, metrics, its fingerprint — is a pure
//! function of the delivered commands.

use crate::policy::LEG_ID_BIT;
use desim::fnv::Fnv;
use desim::{SimDuration, SimTime, SnapReader, SnapWriter};
use fabricd::{Admission, FabricSnapshot, FabricState, Journal, JournalEntry, Metrics, Record};
use std::collections::{BTreeMap, VecDeque};
use topo::{Coord3, Shape3};

/// A command the pod control plane delegates across the shard boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PodEvent {
    /// Admit (or queue) a job on this domain's fabric.
    Arrival {
        /// Pod-global job id.
        job: u32,
        /// Requested slice shape.
        shape: Shape3,
        /// How long the job holds the slice once admitted.
        duration: SimDuration,
    },
    /// Inject one chip failure on this domain's fabric.
    InjectFailure,
}

/// A job waiting for capacity on this domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Queued {
    job: u32,
    shape: Shape3,
    duration: SimDuration,
    arrival: SimTime,
}

/// A future local event, keyed in the queue by `(time, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LocalEvent {
    Arrive(Queued),
    Timeout(u32),
    Depart(u32),
    Fail,
}

/// A shard domain captured at an epoch barrier: the fabric snapshot (with
/// its journal resume point), the admission queue, every pending local
/// event, and the domain's metrics. Content is a pure function of the
/// delegated command stream, so snapshots are worker-count invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// The domain's fabric-state snapshot.
    pub fabric: FabricSnapshot,
    /// The domain's group index.
    pub group: u32,
    /// Local events executed before the capture.
    pub events_executed: u64,
    /// The local event-key insertion counter at capture.
    pub next_seq: u64,
    /// The domain's queue-timeout policy.
    pub queue_timeout: SimDuration,
    queue: Vec<Queued>,
    events: Vec<(SimTime, u64, LocalEvent)>,
    metrics: String,
}

/// Encode a queue entry's fields.
fn write_queued(w: &mut SnapWriter, q: &Queued) {
    w.u64("job", q.job as u64);
    let [qx, qy, qz] = q.shape.dims;
    w.u64("qx", qx as u64);
    w.u64("qy", qy as u64);
    w.u64("qz", qz as u64);
    w.u64("duration_ps", q.duration.as_ps());
    w.u64("arrival_ps", q.arrival.as_ps());
}

/// Decode a queue entry's fields.
fn read_queued(r: &mut SnapReader<'_>) -> Result<Queued, String> {
    let job = u32::try_from(r.u64("job")?)
        .map_err(|_| "shard snapshot: job id exceeds u32".to_string())?;
    let qx = r.u64("qx")? as usize;
    let qy = r.u64("qy")? as usize;
    let qz = r.u64("qz")? as usize;
    let duration = SimDuration::from_ps(r.u64("duration_ps")?);
    let arrival = SimTime::from_ps(r.u64("arrival_ps")?);
    Ok(Queued {
        job,
        shape: Shape3::new(qx, qy, qz),
        duration,
        arrival,
    })
}

impl ShardSnapshot {
    /// Encode into a pod-snapshot section stream.
    pub fn write_snap(&self, w: &mut SnapWriter) {
        w.section("shard");
        w.u64("group", self.group as u64);
        w.u64("events_executed", self.events_executed);
        w.u64("event_seq", self.next_seq);
        w.u64("timeout_ps", self.queue_timeout.as_ps());
        w.u64("queue", self.queue.len() as u64);
        for q in &self.queue {
            write_queued(w, q);
        }
        w.u64("events", self.events.len() as u64);
        for (t, s, ev) in &self.events {
            w.u64("at", t.as_ps());
            w.u64("seq", *s);
            match ev {
                LocalEvent::Arrive(q) => {
                    w.u64("kind", 0);
                    write_queued(w, q);
                }
                LocalEvent::Timeout(job) => {
                    w.u64("kind", 1);
                    w.u64("job", *job as u64);
                }
                LocalEvent::Depart(job) => {
                    w.u64("kind", 2);
                    w.u64("job", *job as u64);
                }
                LocalEvent::Fail => w.u64("kind", 3),
            }
        }
        w.str("metrics", &self.metrics);
        w.str("fabric", &self.fabric.to_text());
    }

    /// Decode one [`write_snap`](Self::write_snap) section.
    pub fn read_snap(r: &mut SnapReader<'_>) -> Result<ShardSnapshot, String> {
        r.section("shard")?;
        let group = u32::try_from(r.u64("group")?)
            .map_err(|_| "shard snapshot: group exceeds u32".to_string())?;
        let events_executed = r.u64("events_executed")?;
        let next_seq = r.u64("event_seq")?;
        let queue_timeout = SimDuration::from_ps(r.u64("timeout_ps")?);
        let nq = r.u64("queue")? as usize;
        let mut queue = Vec::with_capacity(nq);
        for _ in 0..nq {
            queue.push(read_queued(r)?);
        }
        let ne = r.u64("events")? as usize;
        let mut events = Vec::with_capacity(ne);
        for _ in 0..ne {
            let at = SimTime::from_ps(r.u64("at")?);
            let seq = r.u64("seq")?;
            let job = |r: &mut SnapReader<'_>| -> Result<u32, String> {
                u32::try_from(r.u64("job")?)
                    .map_err(|_| "shard snapshot: job id exceeds u32".to_string())
            };
            let ev = match r.u64("kind")? {
                0 => LocalEvent::Arrive(read_queued(r)?),
                1 => LocalEvent::Timeout(job(r)?),
                2 => LocalEvent::Depart(job(r)?),
                3 => LocalEvent::Fail,
                k => return Err(format!("shard snapshot: unknown event kind {k}")),
            };
            events.push((at, seq, ev));
        }
        let metrics = r.str("metrics")?;
        let fabric = FabricSnapshot::parse(&r.str("fabric")?)?;
        Ok(ShardSnapshot {
            fabric,
            group,
            events_executed,
            next_seq,
            queue_timeout,
            queue,
            events,
            metrics,
        })
    }
}

/// One rack group's control domain.
#[derive(Debug)]
pub struct ShardDomain {
    group: u32,
    st: FabricState,
    metrics: Metrics,
    /// FIFO of jobs waiting for capacity.
    queue: VecDeque<Queued>,
    /// Pending local events in canonical `(time, seq)` order. BTreeMap —
    /// never a hash map — per the workspace determinism rule (DET001).
    events: BTreeMap<(SimTime, u64), LocalEvent>,
    next_seq: u64,
    queue_timeout: SimDuration,
    /// Journal records already handed to the pod at a previous barrier.
    folded: usize,
    events_executed: u64,
}

impl ShardDomain {
    /// A fresh domain of `group_racks` racks. `seed` must already be
    /// partitioned per group (`derive_seed(pod_seed, group)`).
    pub fn new(
        group: u32,
        group_racks: usize,
        lanes: usize,
        seed: u64,
        timeout: SimDuration,
    ) -> Self {
        ShardDomain {
            group,
            st: FabricState::new(group_racks, lanes, seed),
            metrics: Metrics::new(),
            queue: VecDeque::new(),
            events: BTreeMap::new(),
            next_seq: 0,
            queue_timeout: timeout,
            folded: 0,
            events_executed: 0,
        }
    }

    /// This domain's group index.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// Accept a delegated command, to execute at simulated instant `at`.
    /// Called single-threaded at the epoch barrier; delivery order is the
    /// control plane's canonical delegation order, so the `(time, seq)`
    /// keys — and therefore the whole run — are worker-count invariant.
    pub fn deliver(&mut self, at: SimTime, ev: PodEvent) {
        let local = match ev {
            PodEvent::Arrival {
                job,
                shape,
                duration,
            } => LocalEvent::Arrive(Queued {
                job,
                shape,
                duration,
                arrival: at,
            }),
            PodEvent::InjectFailure => LocalEvent::Fail,
        };
        self.schedule(at, local);
    }

    /// Run every pending local event with `time < deadline`, in
    /// `(time, seq)` order.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((&(at, seq), _)) = self.events.first_key_value() {
            if at >= deadline {
                break;
            }
            let Some(ev) = self.events.remove(&(at, seq)) else {
                break;
            };
            self.events_executed += 1;
            match ev {
                LocalEvent::Arrive(q) => self.on_arrival(at, q),
                LocalEvent::Timeout(job) => self.on_timeout(at, job),
                LocalEvent::Depart(job) => self.on_depart(at, job),
                LocalEvent::Fail => self.on_failure(at),
            }
        }
    }

    /// Sample the fabric gauges into this domain's metrics (the barrier
    /// tick: every domain samples at the same simulated instant).
    pub fn sample(&mut self, now: SimTime) {
        self.metrics.sample(now, &self.st);
    }

    /// Journal records appended since the last barrier, handed to the pod
    /// control plane for the cross-shard exchange.
    pub fn take_delta(&mut self) -> Vec<Record> {
        let recs = self.st.journal().records();
        let delta = recs.get(self.folded..).unwrap_or_default().to_vec();
        self.folded = recs.len();
        delta
    }

    /// Healthy, unowned chips — the capacity this domain reports at the
    /// barrier for the next window's delegation decisions.
    pub fn free_chips(&self) -> usize {
        self.st
            .rack()
            .cluster
            .occupancy()
            .healthy_free_chips()
            .len()
    }

    /// Local events still pending (scheduled or queued for capacity).
    pub fn pending(&self) -> usize {
        self.events.len() + self.queue.len()
    }

    /// Local events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// The domain's journal (group-local coordinates).
    pub fn journal(&self) -> &Journal {
        self.st.journal()
    }

    /// The domain's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The domain's fabricd state.
    pub fn state(&self) -> &FabricState {
        &self.st
    }

    /// Reduce everything observable about this domain to one digest:
    /// journal hash and length, events executed, live jobs, and the
    /// utilization gauges by exact bit pattern. Two domains with equal
    /// fingerprints took identical decision sequences.
    pub fn fingerprint(&self) -> u64 {
        let u = self.st.utilization();
        let mut h = Fnv::new();
        h.write_u64(self.group as u64);
        h.write_u64(self.st.journal().hash());
        h.write_u64(self.st.journal().len() as u64);
        h.write_u64(self.events_executed);
        h.write_u64(self.st.live_jobs() as u64);
        h.write_f64(u.occupancy);
        h.write_u64(u.circuits as u64);
        h.write_u64(u.reconfigs);
        h.write_f64(u.aggregate_gbps);
        h.finish()
    }

    /// Capture this domain at an epoch barrier (after
    /// [`take_delta`](Self::take_delta)). Journals a `Snapshot` record in
    /// the domain journal; the caller folds it to the pod level with a
    /// follow-up `take_delta` so the pod journal commits to the capture.
    pub fn capture(&mut self, at: SimTime) -> ShardSnapshot {
        let fabric = self.st.capture_snapshot(at);
        let mut w = SnapWriter::new();
        self.metrics.write_snap(&mut w);
        ShardSnapshot {
            fabric,
            group: self.group,
            events_executed: self.events_executed,
            next_seq: self.next_seq,
            queue_timeout: self.queue_timeout,
            queue: self.queue.iter().copied().collect(),
            events: self
                .events
                .iter()
                .map(|(&(t, s), ev)| (t, s, ev.clone()))
                .collect(),
            metrics: w.finish(),
        }
    }

    /// Rebuild the domain a [`ShardSnapshot`] captured. The restored
    /// journal resumes mid-chain (hash and logical length unchanged), and
    /// its single retained `Snapshot` record counts as already folded —
    /// the pod journal committed to it at the capture barrier.
    pub fn restore(snap: &ShardSnapshot) -> Result<ShardDomain, String> {
        let st = snap.fabric.restore().map_err(|e| e.to_string())?;
        let mut r = SnapReader::new(&snap.metrics);
        let metrics = Metrics::read_snap(&mut r)?;
        r.done()?;
        let mut events = BTreeMap::new();
        for (t, s, ev) in &snap.events {
            if *s >= snap.next_seq {
                return Err(format!(
                    "shard snapshot: event seq {s} is not below the insertion counter {}",
                    snap.next_seq
                ));
            }
            if events.insert((*t, *s), ev.clone()).is_some() {
                return Err(format!(
                    "shard snapshot: duplicate event key ({}, {s})",
                    t.as_ps()
                ));
            }
        }
        let folded = st.journal().records().len();
        Ok(ShardDomain {
            group: snap.group,
            st,
            metrics,
            queue: snap.queue.iter().copied().collect(),
            events,
            next_seq: snap.next_seq,
            queue_timeout: snap.queue_timeout,
            folded,
            events_executed: snap.events_executed,
        })
    }

    /// Compact the domain journal to a snapshot watermark. Only legal at a
    /// barrier with every record already folded to the pod level — the pod
    /// journal is the system of record for the truncated prefix.
    pub fn compact(&mut self, watermark: u64) -> Result<usize, String> {
        let before = self.st.journal().records().len();
        if self.folded != before {
            return Err(format!(
                "shard compaction before barrier fold: {} of {before} records folded",
                self.folded
            ));
        }
        let dropped = self.st.compact_journal(watermark)?;
        self.folded = self.st.journal().records().len();
        Ok(dropped)
    }

    // -------------------------------------------- cross-group stitching ----

    /// Admit one leg of a cross-group stitched slice directly at the
    /// epoch barrier, against this domain's *true* occupancy (not the
    /// control plane's estimate). Returns the leg's domain-local origin
    /// on success; on any denial nothing is held and the caller rolls
    /// the whole stitch back. Called single-threaded by the pod control
    /// plane, so the journal append order stays worker-count invariant.
    pub fn admit_leg(&mut self, at: SimTime, leg: u32, shape: Shape3) -> Option<Coord3> {
        match self.st.admit(at, leg, shape) {
            Admission::Admitted { .. } => {
                self.metrics.bump("stitch.legs");
                let programmed = self
                    .st
                    .journal()
                    .records()
                    .iter()
                    .rev()
                    .find_map(|r| match &r.entry {
                        JournalEntry::Program { circuits, .. } => Some(*circuits as u64),
                        _ => None,
                    })
                    .unwrap_or(0);
                self.metrics.add("circuits.programmed", programmed);
                self.st
                    .journal()
                    .records()
                    .iter()
                    .rev()
                    .find_map(|r| match &r.entry {
                        JournalEntry::Admit { job, origin, .. } if *job == leg => Some(*origin),
                        _ => None,
                    })
            }
            _ => None,
        }
    }

    /// Roll back one admitted leg at the barrier: an honest journaled
    /// `Evict`, exactly like a departure, so CTL401 stays clean.
    pub fn evict_leg(&mut self, at: SimTime, leg: u32) {
        self.st.evict(at, leg);
    }

    /// Schedule the atomic teardown of one admitted leg. Every leg of a
    /// stitched job departs at the same instant; the event runs through
    /// the normal departure path (evict + FIFO retry of queued jobs).
    pub fn schedule_leg_depart(&mut self, at: SimTime, leg: u32) {
        self.schedule(at, LocalEvent::Depart(leg));
    }

    /// Bump a named counter in this domain's metrics. The pod control
    /// plane accounts each stitched job on its first leg's domain.
    pub fn bump(&mut self, name: &'static str) {
        self.metrics.bump(name);
    }

    // ------------------------------------------------------ event loop ----

    fn schedule(&mut self, at: SimTime, ev: LocalEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.insert((at, seq), ev);
    }

    /// Try to admit now; true when the job is resolved from the queue's
    /// point of view (started, denied, or rejected as infeasible).
    fn try_start(&mut self, now: SimTime, q: Queued) -> bool {
        match self.st.admit(now, q.job, q.shape) {
            Admission::Admitted { setup } => {
                self.metrics.bump("jobs.admitted");
                self.metrics
                    .record_wait(now.saturating_since(q.arrival).as_secs_f64());
                let programmed = self
                    .st
                    .journal()
                    .records()
                    .iter()
                    .rev()
                    .find_map(|r| match &r.entry {
                        JournalEntry::Program { circuits, .. } => Some(*circuits as u64),
                        _ => None,
                    })
                    .unwrap_or(0);
                self.metrics.add("circuits.programmed", programmed);
                self.schedule(now + setup + q.duration, LocalEvent::Depart(q.job));
                true
            }
            Admission::NoSpace => false,
            Admission::ProgramDenied { error } | Admission::ProgramRejected { error } => {
                // With single-attempt admission `ProgramRejected` cannot
                // occur, but both outcomes resolve the job the same way:
                // journaled denial, counted by reason.
                self.metrics.bump("jobs.denied.program");
                self.metrics.bump_rejection(error.root_code());
                true
            }
            Admission::Infeasible { error } => {
                self.metrics.bump("jobs.rejected.infeasible");
                self.metrics.bump_rejection(error.root_code());
                true
            }
        }
    }

    fn on_arrival(&mut self, now: SimTime, q: Queued) {
        self.metrics.bump("jobs.arrived");
        if !self.try_start(now, q) {
            self.metrics.bump("jobs.queued");
            self.queue.push_back(q);
            self.schedule(now + self.queue_timeout, LocalEvent::Timeout(q.job));
        }
    }

    fn on_timeout(&mut self, now: SimTime, job: u32) {
        if let Some(pos) = self.queue.iter().position(|q| q.job == job) {
            if let Some(q) = self.queue.remove(pos) {
                self.st.deny_timeout(now, q.job, q.shape);
                self.metrics.bump("jobs.denied.timeout");
            }
        }
    }

    fn on_depart(&mut self, now: SimTime, job: u32) {
        self.st.evict(now, job);
        if job & LEG_ID_BIT != 0 {
            self.metrics.bump("stitch.legs.departed");
        } else {
            self.metrics.bump("jobs.departed");
        }
        // Freed capacity: retry queued jobs FIFO until one fails to fit.
        while let Some(&head) = self.queue.front() {
            if self.try_start(now, head) {
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    fn on_failure(&mut self, now: SimTime) {
        self.metrics.bump("failures.injected");
        let (spliced, ok, failed) = match self.st.inject_failure(now) {
            Some(rec) => (
                rec.spliced as u64,
                rec.repair.is_some() as u64,
                rec.repair_error.is_some() as u64,
            ),
            None => (0, 0, 0),
        };
        self.metrics.add("circuits.spliced", spliced);
        self.metrics.add("repairs.ok", ok);
        self.metrics.add("repairs.failed", failed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivered_arrival_admits_and_departs() {
        let mut d = ShardDomain::new(0, 1, 2, 7, SimDuration::from_secs(1_800));
        d.deliver(
            SimTime::ZERO,
            PodEvent::Arrival {
                job: 3,
                shape: Shape3::new(2, 2, 1),
                duration: SimDuration::from_secs(10),
            },
        );
        d.run_until(SimTime::from_ps(1));
        assert_eq!(d.metrics().counter("jobs.admitted"), 1);
        assert_eq!(d.state().live_jobs(), 1);
        assert_eq!(d.pending(), 1, "departure scheduled");
        d.run_until(SimTime::MAX);
        assert_eq!(d.metrics().counter("jobs.departed"), 1);
        assert_eq!(d.state().live_jobs(), 0);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn epoch_deadline_is_respected_and_replay_safe() {
        let mk = || {
            let mut d = ShardDomain::new(1, 1, 2, 9, SimDuration::from_secs(100));
            for (i, at) in [0u64, 5, 50].iter().enumerate() {
                d.deliver(
                    SimTime::from_ps(*at * desim::PS_PER_S),
                    PodEvent::Arrival {
                        job: i as u32,
                        shape: Shape3::new(2, 2, 1),
                        duration: SimDuration::from_secs(1),
                    },
                );
            }
            d
        };
        // Running in one window or two windows is bit-identical.
        let mut one = mk();
        one.run_until(SimTime::from_ps(u64::MAX));
        let mut two = mk();
        two.run_until(SimTime::from_ps(10 * desim::PS_PER_S));
        two.run_until(SimTime::from_ps(u64::MAX));
        assert_eq!(one.fingerprint(), two.fingerprint());
        assert_eq!(one.journal().hash(), two.journal().hash());
    }

    #[test]
    fn take_delta_is_incremental_and_complete() {
        let mut d = ShardDomain::new(0, 1, 2, 7, SimDuration::from_secs(1_800));
        d.deliver(
            SimTime::ZERO,
            PodEvent::Arrival {
                job: 0,
                shape: Shape3::new(2, 2, 1),
                duration: SimDuration::from_secs(5),
            },
        );
        d.run_until(SimTime::from_ps(desim::PS_PER_S));
        let first = d.take_delta();
        assert!(!first.is_empty());
        assert!(d.take_delta().is_empty(), "delta consumed");
        d.run_until(SimTime::MAX);
        let second = d.take_delta();
        let total = first.len() + second.len();
        assert_eq!(total, d.journal().len(), "deltas cover the journal");
    }

    #[test]
    fn failure_injection_updates_counters() {
        let mut d = ShardDomain::new(0, 1, 2, 7, SimDuration::from_secs(1_800));
        d.deliver(
            SimTime::ZERO,
            PodEvent::Arrival {
                job: 0,
                shape: Shape3::new(4, 2, 1),
                duration: SimDuration::from_secs(100),
            },
        );
        d.deliver(SimTime::from_ps(desim::PS_PER_S), PodEvent::InjectFailure);
        d.run_until(SimTime::from_ps(2 * desim::PS_PER_S));
        assert_eq!(d.metrics().counter("failures.injected"), 1);
        assert_eq!(d.metrics().counter("repairs.ok"), 1);
    }
}
