//! Property-based tests of the wafer's resource accounting: any sequence of
//! establishments and teardowns conserves SerDes lanes and waveguide
//! capacity, and tearing everything down restores the pristine state.

use lightpath::{CircuitId, CircuitRequest, TileCoord, Wafer, WaferConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Establish src→dst with `lanes` (indices into the tile grid).
    Establish(u8, u8, usize),
    /// Tear down the i-th oldest live circuit.
    Teardown(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..32, 0u8..32, 1usize..=16).prop_map(|(a, b, l)| Op::Establish(a, b, l)),
        (0usize..8).prop_map(Op::Teardown),
    ]
}

fn coord(i: u8) -> TileCoord {
    TileCoord::new(i / 8, i % 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn establish_teardown_conserves_resources(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut wafer = Wafer::new(WaferConfig::lightpath_32());
        let mut live: Vec<CircuitId> = Vec::new();

        for op in ops {
            match op {
                Op::Establish(a, b, lanes) => {
                    let (src, dst) = (coord(a), coord(b));
                    if src == dst {
                        continue;
                    }
                    if let Ok(rep) = wafer.establish(CircuitRequest::new(src, dst, lanes)) {
                        live.push(rep.id);
                        // Whatever was admitted closes its budget.
                        prop_assert!(rep.link.closes());
                    }
                }
                Op::Teardown(i) => {
                    if !live.is_empty() {
                        let id = live.remove(i % live.len());
                        prop_assert!(wafer.teardown(id).is_ok());
                    }
                }
            }

            // Invariant: per-tile lane accounting matches the live set.
            for t in wafer.coords() {
                let tx_used: usize = wafer
                    .circuits()
                    .filter(|c| c.claimed_src && c.path.src() == t)
                    .map(|c| c.lambdas.len())
                    .sum();
                prop_assert_eq!(wafer.tile(t).serdes.tx_free(), 16 - tx_used);
            }
            // Invariant: edge usage equals the number of live circuits
            // crossing each edge.
            for c in wafer.circuits() {
                for e in c.path.edges() {
                    let expect = wafer
                        .circuits()
                        .flat_map(|x| x.path.edges())
                        .filter(|&x| x == e)
                        .count() as u32;
                    prop_assert_eq!(wafer.edge_used(e), expect);
                    prop_assert!(expect <= wafer.edge_capacity());
                }
            }
        }

        // Tear everything down: the wafer returns to pristine state.
        for id in live {
            wafer.teardown(id).unwrap();
        }
        prop_assert_eq!(wafer.circuits().count(), 0);
        for t in wafer.coords() {
            prop_assert_eq!(wafer.tile(t).serdes.tx_free(), 16);
            prop_assert_eq!(wafer.tile(t).serdes.rx_free(), 16);
        }
        prop_assert!((wafer.aggregate_bandwidth().0).abs() < 1e-12);
    }

    /// Admission never over-subscribes: total committed bandwidth per tile
    /// never exceeds its egress.
    #[test]
    fn no_oversubscription(reqs in prop::collection::vec((0u8..32, 0u8..32, 1usize..=16), 1..40)) {
        let mut wafer = Wafer::new(WaferConfig::lightpath_32());
        for (a, b, lanes) in reqs {
            let (src, dst) = (coord(a), coord(b));
            if src == dst {
                continue;
            }
            let _ = wafer.establish(CircuitRequest::new(src, dst, lanes));
        }
        for t in wafer.coords() {
            let out: f64 = wafer
                .circuits()
                .filter(|c| c.path.src() == t)
                .map(|c| c.bandwidth.0)
                .sum();
            prop_assert!(out <= 16.0 * 224.0 + 1e-9, "tile {t} egress {out}");
        }
    }

    /// Arbitrary requests — out-of-grid endpoints, self-loops, zero or
    /// oversized lane counts — never panic, and every failed establish
    /// leaves the wafer's accounting bit-identical (typed fault, no
    /// partial state).
    #[test]
    fn infeasible_requests_fail_cleanly(
        reqs in prop::collection::vec((0u8..12, 0u8..12, 0u8..12, 0u8..12, 0usize..40), 1..40),
    ) {
        let mut wafer = Wafer::new(WaferConfig::lightpath_32());
        for (r1, c1, r2, c2, lanes) in reqs {
            let src = TileCoord::new(r1, c1);
            let dst = TileCoord::new(r2, c2);
            let circuits_before = wafer.circuits().count();
            let telemetry_before = wafer.telemetry();
            if wafer.establish(CircuitRequest::new(src, dst, lanes)).is_err() {
                prop_assert_eq!(wafer.circuits().count(), circuits_before);
                prop_assert_eq!(wafer.telemetry(), telemetry_before);
            }
        }
    }

    /// Paths produced by the default router are always simple and minimal
    /// on an empty wafer.
    #[test]
    fn default_routes_are_minimal_when_unloaded(a in 0u8..32, b in 0u8..32) {
        prop_assume!(a != b);
        let mut wafer = Wafer::new(WaferConfig::lightpath_32());
        let (src, dst) = (coord(a), coord(b));
        let rep = wafer.establish(CircuitRequest::new(src, dst, 1)).unwrap();
        let path = &wafer.circuit(rep.id).unwrap().path;
        prop_assert_eq!(path.hops() as u32, src.manhattan(dst));
    }
}
