//! Wafer utilization telemetry.
//!
//! Operators of a server-scale photonic interconnect need the same
//! observability a packet fabric gives: how loaded the buses are, how many
//! SerDes lanes remain, where the hot spots sit. This snapshot is also what
//! the examples print and what a §5 resource-allocation algorithm would
//! consume.

use crate::geom::EdgeId;
use crate::wafer::Wafer;

/// Number of buckets in [`WaferTelemetry::edge_occupancy_hist`]: buckets
/// `0..=7` count buses carrying exactly that many circuits, the last bucket
/// counts buses at or above 8 (a fully loaded default bus).
pub const EDGE_OCCUPANCY_BUCKETS: usize = 9;

/// A point-in-time utilization snapshot of one wafer.
///
/// Derives `PartialEq` so replay harnesses can assert that two wafers ended
/// in the same observable state (all fields are exact counts or exact
/// ratios of counts, so float equality is meaningful here).
#[derive(Debug, Clone, PartialEq)]
pub struct WaferTelemetry {
    /// Live circuits.
    pub circuits: usize,
    /// Aggregate circuit bandwidth, Gb/s.
    pub aggregate_gbps: f64,
    /// The most loaded bus and its circuit count, if any bus is loaded.
    pub busiest_edge: Option<(EdgeId, u32)>,
    /// Mean circuits per bus over all buses.
    pub mean_edge_occupancy: f64,
    /// Histogram of circuits-per-bus over all buses: index `i` counts buses
    /// carrying exactly `i` circuits; the last bucket counts `>= 8`.
    pub edge_occupancy_hist: [u64; EDGE_OCCUPANCY_BUCKETS],
    /// Fraction of all transmit lanes claimed.
    pub tx_lane_utilization: f64,
    /// Fraction of all receive lanes claimed.
    pub rx_lane_utilization: f64,
    /// Transmit lanes still free, summed over every tile.
    pub free_tx_lanes: usize,
    /// Receive lanes still free, summed over every tile.
    pub free_rx_lanes: usize,
    /// MZI reconfiguration events since fabrication.
    pub reconfigs: u64,
}

impl Wafer {
    /// Take a utilization snapshot.
    pub fn telemetry(&self) -> WaferTelemetry {
        let cfg = self.config();
        let (rows, cols) = (cfg.rows as usize, cfg.cols as usize);
        let edge_count = rows * (cols - 1) + cols * (rows - 1);

        let mut busiest: Option<(EdgeId, u32)> = None;
        let mut total_load = 0u64;
        let mut hist = [0u64; EDGE_OCCUPANCY_BUCKETS];
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                let here = crate::geom::TileCoord::new(r, c);
                for next in [
                    (c + 1 < cfg.cols).then(|| crate::geom::TileCoord::new(r, c + 1)),
                    (r + 1 < cfg.rows).then(|| crate::geom::TileCoord::new(r + 1, c)),
                ]
                .into_iter()
                .flatten()
                {
                    let e = EdgeId::between(here, next);
                    let used = self.edge_used(e);
                    total_load += used as u64;
                    hist[(used as usize).min(EDGE_OCCUPANCY_BUCKETS - 1)] += 1;
                    if used > 0 && busiest.is_none_or(|(_, b)| used > b) {
                        busiest = Some((e, used));
                    }
                }
            }
        }

        let lanes_total = (cfg.tiles() * cfg.wdm.channels) as f64;
        let (mut tx_used, mut rx_used) = (0usize, 0usize);
        let (mut tx_free, mut rx_free) = (0usize, 0usize);
        for t in self.coords() {
            let tile = self.tile(t);
            tx_used += cfg.wdm.channels - tile.serdes.tx_free();
            rx_used += cfg.wdm.channels - tile.serdes.rx_free();
            tx_free += tile.serdes.tx_free();
            rx_free += tile.serdes.rx_free();
        }

        WaferTelemetry {
            circuits: self.circuits().count(),
            aggregate_gbps: self.aggregate_bandwidth().0,
            busiest_edge: busiest,
            mean_edge_occupancy: total_load as f64 / edge_count as f64,
            edge_occupancy_hist: hist,
            tx_lane_utilization: tx_used as f64 / lanes_total,
            rx_lane_utilization: rx_used as f64 / lanes_total,
            free_tx_lanes: tx_free,
            free_rx_lanes: rx_free,
            reconfigs: self.reconfigs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitRequest;
    use crate::config::WaferConfig;
    use crate::geom::TileCoord;

    #[test]
    fn pristine_wafer_reads_zero() {
        let w = Wafer::new(WaferConfig::lightpath_32());
        let t = w.telemetry();
        assert_eq!(t.circuits, 0);
        assert_eq!(t.aggregate_gbps, 0.0);
        assert_eq!(t.busiest_edge, None);
        assert_eq!(t.mean_edge_occupancy, 0.0);
        assert_eq!(t.tx_lane_utilization, 0.0);
        assert_eq!(t.rx_lane_utilization, 0.0);
        // 52 buses all carry zero circuits; every lane of 32 tiles is free.
        assert_eq!(t.edge_occupancy_hist[0], 52);
        assert_eq!(t.edge_occupancy_hist.iter().sum::<u64>(), 52);
        assert_eq!(t.free_tx_lanes, 32 * 16);
        assert_eq!(t.free_rx_lanes, 32 * 16);
    }

    #[test]
    fn occupancy_histogram_and_free_lanes_track_circuits() {
        let mut w = Wafer::new(WaferConfig::lightpath_32());
        // A 3-hop circuit loads three buses with one circuit each.
        assert!(w
            .establish(CircuitRequest::new(
                TileCoord::new(0, 0),
                TileCoord::new(0, 3),
                16,
            ))
            .is_ok());
        let t = w.telemetry();
        assert_eq!(t.edge_occupancy_hist[1], 3);
        assert_eq!(t.edge_occupancy_hist[0], 52 - 3);
        assert_eq!(t.edge_occupancy_hist.iter().sum::<u64>(), 52);
        // 16 λ claimed at the source transmitter and sink receiver.
        assert_eq!(t.free_tx_lanes, 32 * 16 - 16);
        assert_eq!(t.free_rx_lanes, 32 * 16 - 16);
        // Snapshots are comparable: same wafer state ⇒ equal telemetry.
        assert_eq!(w.telemetry(), w.telemetry());
        assert_ne!(
            Wafer::new(WaferConfig::lightpath_32()).telemetry(),
            w.telemetry()
        );
    }

    #[test]
    fn telemetry_tracks_circuits() {
        let mut w = Wafer::new(WaferConfig::lightpath_32());
        w.establish(CircuitRequest::new(
            TileCoord::new(0, 0),
            TileCoord::new(0, 3),
            16,
        ))
        .unwrap();
        w.establish(CircuitRequest::new(
            TileCoord::new(1, 0),
            TileCoord::new(1, 1),
            8,
        ))
        .unwrap();
        let t = w.telemetry();
        assert_eq!(t.circuits, 2);
        assert!((t.aggregate_gbps - (16.0 + 8.0) * 224.0).abs() < 1e-9);
        let (edge, load) = t.busiest_edge.unwrap();
        assert_eq!(load, 1);
        let _ = edge;
        // 24 of 512 tx lanes in use.
        assert!((t.tx_lane_utilization - 24.0 / 512.0).abs() < 1e-12);
        assert_eq!(t.reconfigs, 2);
        // 4 loaded edges over 52 buses.
        assert!((t.mean_edge_occupancy - 4.0 / 52.0).abs() < 1e-12);
    }

    #[test]
    fn busiest_edge_reflects_stacking() {
        let mut w = Wafer::new(WaferConfig::lightpath_32());
        // Three circuits share the (0,0)-(0,1) bus via explicit paths.
        for i in 0..3u8 {
            let p = crate::geom::Path::from_tiles(vec![TileCoord::new(0, 0), TileCoord::new(0, 1)])
                .unwrap();
            let mut req = CircuitRequest::new(TileCoord::new(0, 0), TileCoord::new(0, 1), 1).via(p);
            req.claim_src_serdes = i != 1; // vary lane usage
            w.establish(req).unwrap();
        }
        let t = w.telemetry();
        let (edge, load) = t.busiest_edge.unwrap();
        assert_eq!(load, 3);
        assert_eq!(
            edge,
            EdgeId::between(TileCoord::new(0, 0), TileCoord::new(0, 1))
        );
    }
}
