//! Multi-wafer photonic fabric: cascading LIGHTPATH wafers with fibers.
//!
//! "One LIGHTPATH wafer connects to others using attached fibers. With
//! attached fibers, we can cascade several LIGHTPATH wafers to create a
//! rack-scale photonic interconnect" (§3). A [`Fabric`] owns a set of
//! wafers (one per multi-accelerator server) and the fiber bundles between
//! their edge tiles, and establishes *cross-wafer* circuits — possibly
//! across several fiber hops: an intra-wafer segment to the attach tile,
//! a fiber, pass-through segments across intermediate wafers (light transits
//! their waveguides without touching any SerDes), and a final segment to
//! the destination. Cross-wafer circuits are what lets §4.2 repair a broken
//! ring with a free chip in another server without touching any electrical
//! switch.

use std::collections::{BTreeMap, VecDeque};

use desim::SimDuration;
use phy::link_budget::{LinkBudget, LinkReport};
use phy::loss::{LossBudget, LossElement};
use phy::thermal::RECONFIG_LATENCY_S;
use phy::units::Gbps;
use phy::wdm::LambdaSet;

use crate::circuit::{CircuitError, CircuitId, CircuitRequest};
use crate::config::WaferConfig;
use crate::geom::{EdgeId, Path, TileCoord};
use crate::wafer::Wafer;

/// Gain of the inline amplifier at each fiber ingress, dB. Cascading wafers
/// at rack scale needs the per-hop coupling/propagation loss roughly
/// cancelled, exactly as commercial multi-hop photonic fabrics place SOAs
/// at fiber attach points; 6 dB covers the two coupling facets per hop.
pub const FIBER_AMP_GAIN_DB: f64 = 6.0;

/// Index of a wafer within a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WaferId(pub usize);

/// A bundle of fibers attached between edge tiles of two wafers.
#[derive(Debug, Clone, Copy)]
pub struct FiberLink {
    /// Attach point on the first wafer.
    pub a: (WaferId, TileCoord),
    /// Attach point on the second wafer.
    pub b: (WaferId, TileCoord),
    /// Number of fibers in the bundle.
    pub capacity: u32,
    /// Fiber length, meters.
    pub length_m: f64,
}

#[derive(Debug, Clone)]
struct FiberState {
    link: FiberLink,
    used: u32,
}

impl FiberState {
    fn free(&self) -> u32 {
        self.link.capacity - self.used
    }

    fn joins(&self, a: WaferId, b: WaferId) -> bool {
        (self.link.a.0 == a && self.link.b.0 == b) || (self.link.a.0 == b && self.link.b.0 == a)
    }

    /// (near tile, far tile) oriented so `near` is on wafer `from`.
    fn oriented(&self, from: WaferId) -> (TileCoord, TileCoord) {
        if self.link.a.0 == from {
            (self.link.a.1, self.link.b.1)
        } else {
            (self.link.b.1, self.link.a.1)
        }
    }

    fn other_end(&self, from: WaferId) -> WaferId {
        if self.link.a.0 == from {
            self.link.b.0
        } else {
            self.link.a.0
        }
    }
}

/// Handle to a cross-wafer circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CrossCircuitId(u64);

impl CrossCircuitId {
    /// The raw handle value, for canonical snapshot serialization.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`raw`](Self::raw) output. Only meaningful
    /// against the fabric state the value was captured from.
    pub const fn from_raw(v: u64) -> Self {
        CrossCircuitId(v)
    }
}

/// Handle to a circuit established somewhere in a [`Fabric`]: either wholly
/// within one wafer or spanning wafers over fibers. Control planes that mix
/// both kinds (ring segments inside a server, fiber hops between servers)
/// hold these so teardown does not need to remember which establish path
/// created each circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FabricCircuit {
    /// A circuit within a single wafer.
    Wafer(WaferId, CircuitId),
    /// A circuit crossing wafers over fibers.
    Cross(CrossCircuitId),
}

/// An established cross-wafer circuit.
#[derive(Debug, Clone)]
pub struct CrossCircuit {
    /// Handle.
    pub id: CrossCircuitId,
    /// Source endpoint.
    pub src: (WaferId, TileCoord),
    /// Destination endpoint.
    pub dst: (WaferId, TileCoord),
    /// Fiber links used, in hop order.
    pub fibers: Vec<usize>,
    /// Intra-wafer segments, in traversal order.
    pub segments: Vec<(WaferId, CircuitId)>,
    /// Wavelength lanes carried.
    pub lanes: usize,
    /// Data bandwidth.
    pub bandwidth: Gbps,
    /// End-to-end link budget evaluation.
    pub link: LinkReport,
    /// Lanes manually claimed at a degenerate source endpoint.
    manual_src_claim: Option<LambdaSet>,
    /// Lane count manually claimed at a degenerate destination endpoint.
    manual_dst_claim: Option<usize>,
}

impl CrossCircuit {
    /// Number of fiber hops.
    pub fn fiber_hops(&self) -> usize {
        self.fibers.len()
    }
}

/// A captured, re-stampable image of one successful cross-wafer establish:
/// the fiber hops it chose, each intra-wafer segment's path and link
/// report, the edge loads those decisions were made under (witnesses), and
/// the end-to-end link report. [`Fabric::stamp_cross`] replays the image
/// without re-running BFS fiber routing or any link-budget evaluation after
/// verifying the witnesses still hold; on any mismatch the caller falls
/// back to [`Fabric::establish_cross`], which behaves identically by
/// construction.
#[derive(Debug, Clone)]
pub struct CrossPlan {
    src: (WaferId, TileCoord),
    dst: (WaferId, TileCoord),
    lanes: usize,
    fibers: Vec<usize>,
    link: LinkReport,
    segments: Vec<CrossSegmentPlan>,
}

impl CrossPlan {
    /// The `(src, dst)` endpoints this plan programs.
    pub fn endpoints(&self) -> ((WaferId, TileCoord), (WaferId, TileCoord)) {
        (self.src, self.dst)
    }

    /// Wavelength lanes the plan carries.
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// One intra-wafer segment image inside a [`CrossPlan`].
#[derive(Debug, Clone)]
struct CrossSegmentPlan {
    wafer: WaferId,
    path: Path,
    link: LinkReport,
    /// `(edge, load)` pairs for every bus the fresh admission read while
    /// routing and budgeting this segment: the XY probe of the default
    /// route, the YX alternative, and the chosen path. Equal loads imply
    /// the fresh decisions replay bit-identically.
    witnesses: Vec<(EdgeId, u32)>,
}

/// How [`Fabric::cross_impl`] should treat the plan library.
enum CrossMode<'a> {
    /// Route, budget, and establish from scratch.
    Fresh,
    /// Fresh, plus record each segment's decision image.
    Capture(&'a mut Vec<CrossSegmentPlan>),
    /// Replay a verified [`CrossPlan`] via the prebudgeted fast path.
    Stamp(&'a CrossPlan),
}

/// Segment handles and manual SerDes claims accumulated while building a
/// cross circuit, so a mid-build failure can roll all of it back.
struct CrossBuild {
    segments: Vec<(WaferId, CircuitId)>,
    manual_src_claim: Option<LambdaSet>,
    manual_dst_claim: Option<usize>,
}

/// A rack-scale assembly of LIGHTPATH wafers joined by fibers.
#[derive(Debug, Clone)]
pub struct Fabric {
    wafers: Vec<Wafer>,
    fibers: Vec<FiberState>,
    cross: BTreeMap<CrossCircuitId, CrossCircuit>,
    next_id: u64,
}

impl Fabric {
    /// A fabric of `n` identical wafers with no fiber links yet.
    pub fn new(n: usize, cfg: WaferConfig) -> Self {
        assert!(n >= 1, "a fabric needs at least one wafer");
        Fabric {
            wafers: (0..n).map(|_| Wafer::new(cfg.clone())).collect(),
            fibers: Vec::new(),
            cross: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Number of wafers.
    pub fn wafer_count(&self) -> usize {
        self.wafers.len()
    }

    /// Inspect a wafer.
    ///
    /// Panics on a bad id.
    pub fn wafer(&self, id: WaferId) -> &Wafer {
        &self.wafers[id.0]
    }

    /// Mutate a wafer (intra-wafer circuits, failure injection).
    ///
    /// Panics on a bad id.
    pub fn wafer_mut(&mut self, id: WaferId) -> &mut Wafer {
        &mut self.wafers[id.0]
    }

    /// Attach a fiber bundle between two wafers. Returns its link index.
    ///
    /// Panics if the endpoints are on the same wafer or out of bounds.
    pub fn attach_fiber(&mut self, link: FiberLink) -> usize {
        assert_ne!(link.a.0, link.b.0, "fiber must join distinct wafers");
        assert!(link.capacity > 0, "fiber bundle must have capacity");
        assert!(link.length_m > 0.0, "fiber needs positive length");
        // Validate attach tiles exist.
        let _ = self.wafer(link.a.0).tile(link.a.1);
        let _ = self.wafer(link.b.0).tile(link.b.1);
        self.fibers.push(FiberState { link, used: 0 });
        self.fibers.len() - 1
    }

    /// Fibers free on a link.
    pub fn fiber_free(&self, index: usize) -> u32 {
        self.fibers[index].free()
    }

    /// BFS for the shortest wafer-level path; when `respect_capacity` only
    /// links with a free fiber count. Among parallel links between the same
    /// wafers the least-loaded is chosen. Returns the fiber link indices in
    /// hop order.
    fn fiber_route(
        &self,
        from: WaferId,
        to: WaferId,
        respect_capacity: bool,
    ) -> Option<Vec<usize>> {
        // Best link per ordered wafer pair.
        let mut best: BTreeMap<(WaferId, WaferId), usize> = BTreeMap::new();
        for (i, f) in self.fibers.iter().enumerate() {
            if respect_capacity && f.free() == 0 {
                continue;
            }
            for (a, b) in [(f.link.a.0, f.link.b.0), (f.link.b.0, f.link.a.0)] {
                let e = best.entry((a, b)).or_insert(i);
                if self.fibers[*e].free() < f.free() {
                    *e = i;
                }
            }
        }
        let mut prev: BTreeMap<WaferId, (WaferId, usize)> = BTreeMap::new();
        let mut q = VecDeque::new();
        q.push_back(from);
        while let Some(w) = q.pop_front() {
            if w == to {
                let mut path = Vec::new();
                let mut cur = to;
                while cur != from {
                    let (p, link) = prev[&cur];
                    path.push(link);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            // Deterministic neighbour order: ascending wafer id.
            let mut neighbours: Vec<(WaferId, usize)> = best
                .iter()
                .filter(|((a, _), _)| *a == w)
                .map(|((_, b), &i)| (*b, i))
                .collect();
            neighbours.sort_by_key(|&(b, _)| b);
            for (b, i) in neighbours {
                if b != from && !prev.contains_key(&b) {
                    prev.insert(b, (w, i));
                    q.push_back(b);
                }
            }
        }
        None
    }

    /// End-to-end loss budget of a prospective multi-hop circuit.
    fn cross_budget(
        &self,
        src: (WaferId, TileCoord),
        dst: (WaferId, TileCoord),
        fibers: &[usize],
    ) -> LossBudget {
        let mut b = LossBudget::new();
        let mut wafer = src.0;
        let mut at = src.1;
        for &fi in fibers {
            let f = &self.fibers[fi];
            let (near, far) = f.oriented(wafer);
            if at != near {
                b.extend(&self.wafer(wafer).path_loss_budget(&Path::xy(at, near)));
            }
            b.push(LossElement::FiberCoupling);
            b.push(LossElement::Fiber {
                length_m: f.link.length_m,
            });
            b.push(LossElement::FiberCoupling);
            b.push(LossElement::Amplifier {
                gain_db: FIBER_AMP_GAIN_DB,
            });
            wafer = f.other_end(wafer);
            at = far;
        }
        debug_assert_eq!(wafer, dst.0);
        if at != dst.1 {
            b.extend(&self.wafer(wafer).path_loss_budget(&Path::xy(at, dst.1)));
        }
        b
    }

    /// Establish a circuit between tiles on *different* wafers, routing
    /// over as many fiber hops as needed (shortest wafer path, least-loaded
    /// bundles). Atomic: on error nothing is committed.
    pub fn establish_cross(
        &mut self,
        src: (WaferId, TileCoord),
        dst: (WaferId, TileCoord),
        lanes: usize,
    ) -> Result<(CrossCircuitId, SimDuration), CircuitError> {
        let (id, setup, _) = self.cross_impl(src, dst, lanes, CrossMode::Fresh)?;
        Ok((id, setup))
    }

    /// [`establish_cross`](Self::establish_cross), additionally capturing a
    /// [`CrossPlan`] image of every routing and budgeting decision so later
    /// identical admissions can [`stamp_cross`](Self::stamp_cross) instead
    /// of searching. The fabric mutation is bit-identical to a plain
    /// establish — capture only reads.
    pub fn establish_cross_captured(
        &mut self,
        src: (WaferId, TileCoord),
        dst: (WaferId, TileCoord),
        lanes: usize,
    ) -> Result<(CrossCircuitId, SimDuration, CrossPlan), CircuitError> {
        let mut segments = Vec::new();
        let (id, setup, link) =
            self.cross_impl(src, dst, lanes, CrossMode::Capture(&mut segments))?;
        let fibers = self
            .cross
            .get(&id)
            .map(|c| c.fibers.clone())
            .unwrap_or_default();
        Ok((
            id,
            setup,
            CrossPlan {
                src,
                dst,
                lanes,
                fibers,
                link,
                segments,
            },
        ))
    }

    /// Replay a captured [`CrossPlan`]: re-run the cheap fiber-route probe
    /// and the per-segment load witnesses, and — when everything still
    /// matches the capture — commit the identical circuit without any BFS
    /// or link-budget evaluation. Returns `Ok(None)` when the fabric has
    /// drifted from the captured image (the caller falls back to a fresh
    /// [`establish_cross`](Self::establish_cross)); establish-time errors
    /// (SerDes exhaustion, failed tiles) surface exactly as a fresh
    /// admission would raise them.
    pub fn stamp_cross(
        &mut self,
        plan: &CrossPlan,
    ) -> Result<Option<(CrossCircuitId, SimDuration)>, CircuitError> {
        match self.fiber_route(plan.src.0, plan.dst.0, true) {
            Some(f) if f == plan.fibers => {}
            _ => return Ok(None),
        }
        for sp in &plan.segments {
            for &(e, load) in &sp.witnesses {
                if self.wafer(sp.wafer).edge_used(e) != load {
                    return Ok(None);
                }
            }
        }
        let (id, setup, _) =
            self.cross_impl(plan.src, plan.dst, plan.lanes, CrossMode::Stamp(plan))?;
        Ok(Some((id, setup)))
    }

    fn cross_impl(
        &mut self,
        src: (WaferId, TileCoord),
        dst: (WaferId, TileCoord),
        lanes: usize,
        mut mode: CrossMode<'_>,
    ) -> Result<(CrossCircuitId, SimDuration, LinkReport), CircuitError> {
        assert_ne!(
            src.0, dst.0,
            "use Wafer::establish for circuits within one wafer"
        );
        let fibers = if let CrossMode::Stamp(plan) = &mode {
            // `stamp_cross` verified the route is still the one a fresh
            // admission would choose.
            debug_assert_eq!(
                self.fiber_route(src.0, dst.0, true).as_deref(),
                Some(plan.fibers.as_slice()),
                "stamped fiber route diverged from a fresh probe"
            );
            plan.fibers.clone()
        } else {
            match self.fiber_route(src.0, dst.0, true) {
                Some(p) => p,
                None => {
                    // Distinguish "no fiber plant" from "plant exhausted".
                    return match self.fiber_route(src.0, dst.0, false) {
                        Some(unconstrained) => {
                            // Report the total capacity of the first saturated
                            // hop's wafer pair.
                            let mut wafer = src.0;
                            let mut cap = 0;
                            for &fi in &unconstrained {
                                let next = self.fibers[fi].other_end(wafer);
                                let pair_free: u32 = self
                                    .fibers
                                    .iter()
                                    .filter(|f| f.joins(wafer, next))
                                    .map(FiberState::free)
                                    .sum();
                                if pair_free == 0 {
                                    cap = self
                                        .fibers
                                        .iter()
                                        .filter(|f| f.joins(wafer, next))
                                        .map(|f| f.link.capacity)
                                        .sum();
                                    break;
                                }
                                wafer = next;
                            }
                            Err(CircuitError::FiberExhausted { capacity: cap })
                        }
                        None => Err(CircuitError::NoFiberLink),
                    };
                }
            }
        };

        // Budget check before any commitment. A verified stamp reuses the
        // captured report: the witnesses pin every load the budget reads,
        // so a fresh evaluation would reproduce it bit-for-bit (asserted in
        // debug builds).
        let link = if let CrossMode::Stamp(plan) = &mode {
            debug_assert_eq!(
                crate::wafer::report_bits(&plan.link),
                crate::wafer::report_bits(
                    &LinkBudget::lightpath_default(self.cross_budget(src, dst, &fibers)).evaluate()
                ),
                "stamped cross link report diverged from a fresh evaluation"
            );
            plan.link
        } else {
            LinkBudget::lightpath_default(self.cross_budget(src, dst, &fibers)).evaluate()
        };
        if !link.closes() {
            return Err(CircuitError::BudgetFailed {
                margin_db: link.margin.0,
            });
        }

        // Build segments wafer by wafer, rolling back on any failure.
        let mut build = CrossBuild {
            segments: Vec::new(),
            manual_src_claim: None,
            manual_dst_claim: None,
        };
        if let Err(e) = self.cross_segments(src, dst, lanes, &fibers, &mut mode, &mut build) {
            for (w, id) in build.segments.into_iter().rev() {
                // Just-established segments cannot fail to tear down; keep
                // the rollback panic-free regardless.
                let _ = self.wafers[w.0].teardown(id);
            }
            if let Some(set) = build.manual_src_claim {
                self.wafers[src.0 .0].tile_mut(src.1).serdes.release_tx(set);
            }
            return Err(e);
        }

        for &fi in &fibers {
            self.fibers[fi].used += 1;
        }
        let id = CrossCircuitId(self.next_id);
        self.next_id += 1;
        let rate = self.wafers[src.0 .0].config().wdm.rate;
        self.cross.insert(
            id,
            CrossCircuit {
                id,
                src,
                dst,
                fibers,
                segments: build.segments,
                lanes,
                bandwidth: Gbps(rate.0 * lanes as f64),
                link,
                manual_src_claim: build.manual_src_claim,
                manual_dst_claim: build.manual_dst_claim,
            },
        );
        Ok((id, SimDuration::from_secs_f64(RECONFIG_LATENCY_S), link))
    }

    /// The segment-building pass of [`cross_impl`](Self::cross_impl):
    /// establishes every intra-wafer hop (or performs the degenerate
    /// attach-tile SerDes claims), recording handles and manual claims into
    /// `build` so the caller can roll back on failure.
    fn cross_segments(
        &mut self,
        src: (WaferId, TileCoord),
        dst: (WaferId, TileCoord),
        lanes: usize,
        fibers: &[usize],
        mode: &mut CrossMode<'_>,
        build: &mut CrossBuild,
    ) -> Result<(), CircuitError> {
        let mut seg_cursor = 0usize;
        let mut wafer = src.0;
        let mut at = src.1;
        for (hop, &fi) in fibers.iter().enumerate() {
            let (near, far) = self.fibers[fi].oriented(wafer);
            let first = hop == 0;
            if at != near {
                let mut req = CircuitRequest::new(at, near, lanes);
                req.claim_src_serdes = first;
                req.claim_dst_serdes = false;
                let id = self.establish_segment(wafer, req, mode, &mut seg_cursor)?;
                build.segments.push((wafer, id));
            } else if first {
                // Source sits on the attach tile: claim tx manually.
                let tile = self.wafers[wafer.0].tile_mut(at);
                if tile.is_failed() {
                    return Err(CircuitError::TileFailed(at));
                }
                let avail = tile.serdes.tx_available();
                let set = avail
                    .take_lowest(lanes)
                    .ok_or(CircuitError::InsufficientTxLanes {
                        tile: at,
                        free: avail.len(),
                        requested: lanes,
                    })?;
                if tile.serdes.claim_tx(set).is_none() {
                    return Err(CircuitError::InsufficientTxLanes {
                        tile: at,
                        free: tile.serdes.tx_available().len(),
                        requested: lanes,
                    });
                }
                build.manual_src_claim = Some(set);
            }
            wafer = self.fibers[fi].other_end(wafer);
            at = far;
        }
        // Final wafer: attach tile → destination.
        if at != dst.1 {
            let mut req = CircuitRequest::new(at, dst.1, lanes);
            req.claim_src_serdes = false;
            req.claim_dst_serdes = true;
            let id = self.establish_segment(wafer, req, mode, &mut seg_cursor)?;
            build.segments.push((wafer, id));
        } else {
            let tile = self.wafers[wafer.0].tile_mut(at);
            if tile.is_failed() {
                return Err(CircuitError::TileFailed(at));
            }
            let avail = tile.serdes.rx_available();
            let set = avail
                .take_lowest(lanes)
                .ok_or(CircuitError::InsufficientRxLanes {
                    tile: at,
                    free: avail.len(),
                    requested: lanes,
                })?;
            if tile.serdes.claim_rx(set).is_none() {
                return Err(CircuitError::InsufficientRxLanes {
                    tile: at,
                    free: tile.serdes.rx_available().len(),
                    requested: lanes,
                });
            }
            build.manual_dst_claim = Some(lanes);
        }
        Ok(())
    }

    /// One intra-wafer segment establish, honouring the mode: fresh routes
    /// search and budget from scratch, capture additionally records the
    /// decision image, stamp replays it via the prebudgeted fast path. A
    /// stamp whose recorded segment no longer lines up with the traversal
    /// falls back to a fresh establish — identical behaviour, just slower.
    fn establish_segment(
        &mut self,
        wafer: WaferId,
        req: CircuitRequest,
        mode: &mut CrossMode<'_>,
        seg_cursor: &mut usize,
    ) -> Result<CircuitId, CircuitError> {
        let (src, dst) = (req.src, req.dst);
        match mode {
            CrossMode::Fresh => Ok(self.wafer_mut(wafer).establish(req)?.id),
            CrossMode::Capture(segs) => {
                let mut witnesses: Vec<(EdgeId, u32)> = Vec::new();
                {
                    let w = self.wafer(wafer);
                    for e in Path::xy(src, dst).edges().chain(Path::yx(src, dst).edges()) {
                        if !witnesses.iter().any(|&(seen, _)| seen == e) {
                            witnesses.push((e, w.edge_used(e)));
                        }
                    }
                }
                let rep = self.wafer_mut(wafer).establish(req)?;
                let ckt = self
                    .wafer(wafer)
                    .circuit(rep.id)
                    .ok_or(CircuitError::UnknownCircuit(rep.id))?;
                segs.push(CrossSegmentPlan {
                    wafer,
                    path: ckt.path.clone(),
                    link: ckt.link,
                    witnesses,
                });
                Ok(rep.id)
            }
            CrossMode::Stamp(plan) => {
                let sp = plan.segments.get(*seg_cursor);
                *seg_cursor += 1;
                match sp {
                    Some(sp)
                        if sp.wafer == wafer && sp.path.src() == src && sp.path.dst() == dst =>
                    {
                        Ok(self
                            .wafer_mut(wafer)
                            .establish_prebudgeted(req.via(sp.path.clone()), sp.link)?
                            .id)
                    }
                    _ => Ok(self.wafer_mut(wafer).establish(req)?.id),
                }
            }
        }
    }

    /// Tear a cross-wafer circuit down.
    pub fn teardown_cross(&mut self, id: CrossCircuitId) -> Result<(), CircuitError> {
        let ckt = self
            .cross
            .remove(&id)
            .ok_or(CircuitError::UnknownCircuit(CircuitId(id.0)))?;
        for (w, seg) in &ckt.segments {
            self.wafers[w.0].teardown(*seg)?;
        }
        if let Some(set) = ckt.manual_src_claim {
            self.wafers[ckt.src.0 .0]
                .tile_mut(ckt.src.1)
                .serdes
                .release_tx(set);
        }
        if let Some(lanes) = ckt.manual_dst_claim {
            let tile = self.wafers[ckt.dst.0 .0].tile_mut(ckt.dst.1);
            let all = LambdaSet::first_n(tile.serdes.lanes());
            let in_use = all.difference(tile.serdes.rx_available());
            // The claim is recorded on the circuit, so the lanes are in
            // use; release whatever is held if bookkeeping ever disagreed.
            let set = in_use.take_lowest(lanes).unwrap_or(in_use);
            tile.serdes.release_rx(set);
        }
        for &fi in &ckt.fibers {
            self.fibers[fi].used -= 1;
        }
        Ok(())
    }

    /// Tear down a circuit by its uniform handle (see [`FabricCircuit`]).
    pub fn teardown_handle(&mut self, handle: FabricCircuit) -> Result<(), CircuitError> {
        match handle {
            FabricCircuit::Wafer(w, id) => self.wafer_mut(w).teardown(id),
            FabricCircuit::Cross(id) => self.teardown_cross(id),
        }
    }

    /// Look up a cross-wafer circuit.
    pub fn cross_circuit(&self, id: CrossCircuitId) -> Option<&CrossCircuit> {
        self.cross.get(&id)
    }

    /// Live cross-wafer circuits in id order.
    pub fn cross_circuits(&self) -> impl Iterator<Item = &CrossCircuit> {
        self.cross.values()
    }

    /// Serialize all mutable fabric state into a canonical snapshot: every
    /// wafer's state, per-fiber-bundle usage counts, the cross-circuit
    /// table (including manual SerDes claims at degenerate attach-tile
    /// endpoints), and the id counter. The fiber *plant* (links, lengths,
    /// capacities) is template state rebuilt by the caller's constructor
    /// and is not written.
    pub fn write_snap(&self, w: &mut desim::SnapWriter) {
        w.section("fabric");
        w.u64("next_id", self.next_id);
        w.u64("wafers", self.wafers.len() as u64);
        for wafer in &self.wafers {
            wafer.write_snap(w);
        }
        w.u64("fibers", self.fibers.len() as u64);
        for f in &self.fibers {
            w.u64("used", f.used as u64);
        }
        w.u64("cross", self.cross.len() as u64);
        for c in self.cross.values() {
            w.u64("id", c.id.0);
            w.u64("src_wafer", c.src.0 .0 as u64);
            w.u64("src_row", c.src.1.row as u64);
            w.u64("src_col", c.src.1.col as u64);
            w.u64("dst_wafer", c.dst.0 .0 as u64);
            w.u64("dst_row", c.dst.1.row as u64);
            w.u64("dst_col", c.dst.1.col as u64);
            w.u64("fiber_hops", c.fibers.len() as u64);
            for &fi in &c.fibers {
                w.u64("fiber", fi as u64);
            }
            w.u64("segments", c.segments.len() as u64);
            for (wid, cid) in &c.segments {
                w.u64("seg_wafer", wid.0 as u64);
                w.u64("seg_ckt", cid.0);
            }
            w.u64("lanes", c.lanes as u64);
            w.f64("bandwidth", c.bandwidth.0);
            w.f64("received", c.link.received.0);
            w.f64("sensitivity", c.link.sensitivity.0);
            w.f64("margin", c.link.margin.0);
            w.f64("ber", c.link.ber);
            w.f64("rate", c.link.rate.0);
            match c.manual_src_claim {
                Some(set) => {
                    w.bool("has_src_claim", true);
                    w.u64("src_claim", set.bits());
                }
                None => w.bool("has_src_claim", false),
            }
            match c.manual_dst_claim {
                Some(n) => {
                    w.bool("has_dst_claim", true);
                    w.u64("dst_claim", n as u64);
                }
                None => w.bool("has_dst_claim", false),
            }
        }
    }

    /// Apply a [`write_snap`](Self::write_snap) snapshot onto a freshly
    /// constructed fabric with the identical wafer configs and fiber plant.
    pub fn read_snap(&mut self, r: &mut desim::SnapReader<'_>) -> Result<(), String> {
        r.section("fabric")?;
        self.next_id = r.u64("next_id")?;
        let wafers = r.u64("wafers")? as usize;
        if wafers != self.wafers.len() {
            return Err(format!(
                "fabric restore: {wafers} wafers in snapshot, {} constructed",
                self.wafers.len()
            ));
        }
        for wafer in self.wafers.iter_mut() {
            wafer.read_snap(r)?;
        }
        let fibers = r.u64("fibers")? as usize;
        if fibers != self.fibers.len() {
            return Err(format!(
                "fabric restore: {fibers} fiber links in snapshot, {} attached",
                self.fibers.len()
            ));
        }
        for f in self.fibers.iter_mut() {
            let used = u32::try_from(r.u64("used")?)
                .map_err(|_| "fabric restore: fiber usage exceeds u32".to_string())?;
            if used > f.link.capacity {
                return Err(format!(
                    "fabric restore: fiber usage {used} exceeds capacity {}",
                    f.link.capacity
                ));
            }
            f.used = used;
        }
        let cross = r.u64("cross")? as usize;
        for _ in 0..cross {
            let id = CrossCircuitId(r.u64("id")?);
            let coord = |r: &mut desim::SnapReader<'_>,
                         wk: &str,
                         rk: &str,
                         ck: &str|
             -> Result<(WaferId, TileCoord), String> {
                let wid = r.u64(wk)? as usize;
                let row = u8::try_from(r.u64(rk)?)
                    .map_err(|_| "fabric restore: tile row exceeds u8".to_string())?;
                let col = u8::try_from(r.u64(ck)?)
                    .map_err(|_| "fabric restore: tile col exceeds u8".to_string())?;
                Ok((WaferId(wid), TileCoord::new(row, col)))
            };
            let src = coord(r, "src_wafer", "src_row", "src_col")?;
            let dst = coord(r, "dst_wafer", "dst_row", "dst_col")?;
            let hops = r.u64("fiber_hops")? as usize;
            let mut fibers = Vec::with_capacity(hops);
            for _ in 0..hops {
                let fi = r.u64("fiber")? as usize;
                if fi >= self.fibers.len() {
                    return Err(format!("fabric restore: fiber index {fi} out of range"));
                }
                fibers.push(fi);
            }
            let nseg = r.u64("segments")? as usize;
            let mut segments = Vec::with_capacity(nseg);
            for _ in 0..nseg {
                let wid = r.u64("seg_wafer")? as usize;
                if wid >= self.wafers.len() {
                    return Err(format!("fabric restore: segment wafer {wid} out of range"));
                }
                segments.push((WaferId(wid), CircuitId::from_raw(r.u64("seg_ckt")?)));
            }
            let lanes = r.u64("lanes")? as usize;
            let bandwidth = Gbps(r.f64("bandwidth")?);
            let link = LinkReport {
                received: phy::units::Dbm(r.f64("received")?),
                sensitivity: phy::units::Dbm(r.f64("sensitivity")?),
                margin: phy::units::Db(r.f64("margin")?),
                ber: r.f64("ber")?,
                rate: Gbps(r.f64("rate")?),
            };
            let manual_src_claim = if r.bool("has_src_claim")? {
                Some(LambdaSet::from_bits(r.u64("src_claim")?))
            } else {
                None
            };
            let manual_dst_claim = if r.bool("has_dst_claim")? {
                Some(r.u64("dst_claim")? as usize)
            } else {
                None
            };
            if self
                .cross
                .insert(
                    id,
                    CrossCircuit {
                        id,
                        src,
                        dst,
                        fibers,
                        segments,
                        lanes,
                        bandwidth,
                        link,
                        manual_src_claim,
                        manual_dst_claim,
                    },
                )
                .is_some()
            {
                return Err(format!("fabric restore: duplicate cross circuit {}", id.0));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(r: u8, c: u8) -> TileCoord {
        TileCoord::new(r, c)
    }

    fn two_wafer_fabric() -> (Fabric, usize) {
        let mut f = Fabric::new(2, WaferConfig::default());
        let idx = f.attach_fiber(FiberLink {
            a: (WaferId(0), t(0, 7)),
            b: (WaferId(1), t(0, 0)),
            capacity: 4,
            length_m: 2.0,
        });
        (f, idx)
    }

    #[test]
    fn cross_circuit_establish_and_teardown() {
        let (mut f, idx) = two_wafer_fabric();
        let (id, setup) = f
            .establish_cross((WaferId(0), t(2, 1)), (WaferId(1), t(3, 5)), 4)
            .expect("cross circuit");
        assert_eq!(setup, SimDuration::from_secs_f64(3.7e-6));
        assert_eq!(f.fiber_free(idx), 3);
        let ckt = f.cross_circuit(id).unwrap();
        assert!(ckt.link.closes());
        assert_eq!(ckt.fiber_hops(), 1);
        assert!((ckt.bandwidth.0 - 896.0).abs() < 1e-9);
        assert_eq!(f.wafer(WaferId(0)).tile(t(2, 1)).serdes.tx_free(), 12);
        assert_eq!(f.wafer(WaferId(1)).tile(t(3, 5)).serdes.rx_free(), 12);
        // The attach tiles do NOT spend SerDes lanes (pure optical relay).
        assert_eq!(f.wafer(WaferId(0)).tile(t(0, 7)).serdes.rx_free(), 16);
        assert_eq!(f.wafer(WaferId(1)).tile(t(0, 0)).serdes.tx_free(), 16);

        f.teardown_cross(id).unwrap();
        assert_eq!(f.fiber_free(idx), 4);
        assert_eq!(f.wafer(WaferId(0)).tile(t(2, 1)).serdes.tx_free(), 16);
        assert_eq!(f.wafer(WaferId(1)).tile(t(3, 5)).serdes.rx_free(), 16);
        assert_eq!(f.wafer(WaferId(0)).circuits().count(), 0);
        assert_eq!(f.wafer(WaferId(1)).circuits().count(), 0);
    }

    #[test]
    fn degenerate_endpoints_at_attach_tiles() {
        let (mut f, _) = two_wafer_fabric();
        let (id, _) = f
            .establish_cross((WaferId(0), t(0, 7)), (WaferId(1), t(0, 0)), 2)
            .expect("attach-to-attach circuit");
        assert_eq!(f.wafer(WaferId(0)).tile(t(0, 7)).serdes.tx_free(), 14);
        assert_eq!(f.wafer(WaferId(1)).tile(t(0, 0)).serdes.rx_free(), 14);
        // No intra-wafer segments exist.
        let ckt = f.cross_circuit(id).unwrap();
        assert!(ckt.segments.is_empty());
        f.teardown_cross(id).unwrap();
        assert_eq!(f.wafer(WaferId(0)).tile(t(0, 7)).serdes.tx_free(), 16);
        assert_eq!(f.wafer(WaferId(1)).tile(t(0, 0)).serdes.rx_free(), 16);
    }

    #[test]
    fn fiber_capacity_enforced() {
        let (mut f, _) = two_wafer_fabric();
        for i in 0..4 {
            f.establish_cross((WaferId(0), t(1, i)), (WaferId(1), t(1, i)), 1)
                .expect("fits within the 4-fiber bundle");
        }
        let err = f
            .establish_cross((WaferId(0), t(3, 0)), (WaferId(1), t(3, 0)), 1)
            .unwrap_err();
        assert!(matches!(err, CircuitError::FiberExhausted { capacity: 4 }));
    }

    #[test]
    fn missing_link_is_reported() {
        let mut f = Fabric::new(3, WaferConfig::default());
        f.attach_fiber(FiberLink {
            a: (WaferId(0), t(0, 7)),
            b: (WaferId(1), t(0, 0)),
            capacity: 1,
            length_m: 2.0,
        });
        let err = f
            .establish_cross((WaferId(0), t(0, 0)), (WaferId(2), t(0, 0)), 1)
            .unwrap_err();
        assert_eq!(err, CircuitError::NoFiberLink);
    }

    #[test]
    fn multi_hop_routes_through_intermediate_wafers() {
        // A chain 0 — 1 — 2: circuits from wafer 0 to wafer 2 transit
        // wafer 1 without consuming any of its SerDes lanes.
        let mut f = Fabric::new(3, WaferConfig::default());
        f.attach_fiber(FiberLink {
            a: (WaferId(0), t(0, 7)),
            b: (WaferId(1), t(0, 0)),
            capacity: 2,
            length_m: 2.0,
        });
        f.attach_fiber(FiberLink {
            a: (WaferId(1), t(3, 7)),
            b: (WaferId(2), t(0, 0)),
            capacity: 2,
            length_m: 2.0,
        });
        let (id, _) = f
            .establish_cross((WaferId(0), t(2, 2)), (WaferId(2), t(3, 3)), 4)
            .expect("two-hop circuit");
        let ckt = f.cross_circuit(id).unwrap();
        assert_eq!(ckt.fiber_hops(), 2);
        assert_eq!(ckt.segments.len(), 3, "src seg, pass-through, dst seg");
        // The intermediate wafer carries a pass-through circuit but spends
        // no lanes on any tile.
        let mid = f.wafer(WaferId(1));
        assert_eq!(mid.circuits().count(), 1);
        for c in mid.coords() {
            assert_eq!(mid.tile(c).serdes.tx_free(), 16);
            assert_eq!(mid.tile(c).serdes.rx_free(), 16);
        }
        f.teardown_cross(id).unwrap();
        assert_eq!(f.wafer(WaferId(1)).circuits().count(), 0);
        assert_eq!(f.fiber_free(0), 2);
        assert_eq!(f.fiber_free(1), 2);
    }

    #[test]
    fn multi_hop_respects_per_hop_capacity() {
        let mut f = Fabric::new(3, WaferConfig::default());
        f.attach_fiber(FiberLink {
            a: (WaferId(0), t(0, 7)),
            b: (WaferId(1), t(0, 0)),
            capacity: 2,
            length_m: 2.0,
        });
        f.attach_fiber(FiberLink {
            a: (WaferId(1), t(3, 7)),
            b: (WaferId(2), t(0, 0)),
            capacity: 1,
            length_m: 2.0,
        });
        f.establish_cross((WaferId(0), t(1, 1)), (WaferId(2), t(1, 1)), 1)
            .expect("first two-hop circuit");
        let err = f
            .establish_cross((WaferId(0), t(2, 1)), (WaferId(2), t(2, 1)), 1)
            .unwrap_err();
        assert!(matches!(err, CircuitError::FiberExhausted { capacity: 1 }));
    }

    #[test]
    fn rollback_on_far_side_failure() {
        let (mut f, idx) = two_wafer_fabric();
        f.wafer_mut(WaferId(1)).fail_tile(t(3, 5));
        let err = f
            .establish_cross((WaferId(0), t(2, 1)), (WaferId(1), t(3, 5)), 4)
            .unwrap_err();
        assert_eq!(err, CircuitError::TileFailed(t(3, 5)));
        // Nothing leaked on the near side.
        assert_eq!(f.wafer(WaferId(0)).tile(t(2, 1)).serdes.tx_free(), 16);
        assert_eq!(f.wafer(WaferId(0)).circuits().count(), 0);
        assert_eq!(f.fiber_free(idx), 4);
    }

    #[test]
    fn least_loaded_link_is_chosen() {
        let mut f = Fabric::new(2, WaferConfig::default());
        let l0 = f.attach_fiber(FiberLink {
            a: (WaferId(0), t(0, 7)),
            b: (WaferId(1), t(0, 0)),
            capacity: 1,
            length_m: 2.0,
        });
        let l1 = f.attach_fiber(FiberLink {
            a: (WaferId(0), t(3, 7)),
            b: (WaferId(1), t(3, 0)),
            capacity: 2,
            length_m: 2.0,
        });
        f.establish_cross((WaferId(0), t(1, 1)), (WaferId(1), t(1, 1)), 1)
            .unwrap();
        // l1 had more free fibers; it should have been used.
        assert_eq!(f.fiber_free(l0), 1);
        assert_eq!(f.fiber_free(l1), 1);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let (mut f, _) = two_wafer_fabric();
        // One normal cross circuit, one degenerate (attach-to-attach, which
        // exercises the manual claim fields), one intra-wafer circuit.
        f.establish_cross((WaferId(0), t(2, 1)), (WaferId(1), t(3, 5)), 4)
            .unwrap();
        f.establish_cross((WaferId(0), t(0, 7)), (WaferId(1), t(0, 0)), 2)
            .unwrap();
        f.wafer_mut(WaferId(0))
            .establish(CircuitRequest::new(t(1, 1), t(2, 2), 3))
            .unwrap();

        let mut sw = desim::SnapWriter::new();
        f.write_snap(&mut sw);
        let text = sw.finish();

        let (mut g, _) = two_wafer_fabric();
        let mut r = desim::SnapReader::new(&text);
        g.read_snap(&mut r).expect("restore");
        r.done().expect("consumed fully");

        let mut sw2 = desim::SnapWriter::new();
        g.write_snap(&mut sw2);
        assert_eq!(
            sw2.finish(),
            text,
            "restored fabric re-serializes identically"
        );

        // Teardown through the restored fabric releases everything.
        let ids: Vec<CrossCircuitId> = g.cross_circuits().map(|c| c.id).collect();
        for id in ids {
            g.teardown_cross(id).unwrap();
        }
        assert_eq!(g.fiber_free(0), 4);
        assert_eq!(g.wafer(WaferId(0)).tile(t(0, 7)).serdes.tx_free(), 16);
        assert_eq!(g.wafer(WaferId(1)).tile(t(3, 5)).serdes.rx_free(), 16);
    }

    #[test]
    fn pass_through_over_failed_tiles_is_allowed() {
        // Light transits a wafer whose chips all failed: the photonic layer
        // is independent of the stacked accelerators.
        let mut f = Fabric::new(3, WaferConfig::default());
        f.attach_fiber(FiberLink {
            a: (WaferId(0), t(0, 7)),
            b: (WaferId(1), t(0, 0)),
            capacity: 1,
            length_m: 2.0,
        });
        f.attach_fiber(FiberLink {
            a: (WaferId(1), t(3, 7)),
            b: (WaferId(2), t(0, 0)),
            capacity: 1,
            length_m: 2.0,
        });
        let dead_tiles: Vec<TileCoord> = f.wafer(WaferId(1)).coords().collect();
        for c in dead_tiles {
            f.wafer_mut(WaferId(1)).fail_tile(c);
        }
        let res = f.establish_cross((WaferId(0), t(1, 1)), (WaferId(2), t(1, 1)), 2);
        assert!(res.is_ok(), "pass-through ignores accelerator failures");
    }
}
