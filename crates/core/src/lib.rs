//! # lightpath — the server-scale photonic interconnect
//!
//! The primary contribution of *"A case for server-scale photonic
//! connectivity"* (HotNets '24): a model of the LIGHTPATH wafer and the
//! circuits it carries.
//!
//! A [`Wafer`] is a grid of up to 32 [`tile::Tile`]s (§3, Fig 2), each with
//! 16 WDM lasers at 224 Gb/s, a Tx/Rx block, and MZI switches; waveguide
//! buses (~10,000 per edge) join adjacent tiles, and attached fibers join
//! wafers into a rack-scale [`Fabric`]. Circuits are admitted only when
//! SerDes lanes, waveguide capacity, and the end-to-end optical budget all
//! check out — so every admitted circuit is contention-free by construction,
//! the property §4 builds on. Establishing or re-pointing a circuit costs
//! the measured **3.7 µs** MZI reconfiguration latency, surfaced to callers
//! as the `r` term of the paper's α–β–r cost model.
//!
//! ## Quick tour
//!
//! ```
//! use lightpath::{CircuitRequest, TileCoord, Wafer, WaferConfig};
//!
//! let mut wafer = Wafer::new(WaferConfig::lightpath_32());
//! let report = wafer
//!     .establish(CircuitRequest::new(TileCoord::new(0, 0), TileCoord::new(3, 7), 16))
//!     .expect("corner-to-corner at full 16-lane bandwidth");
//! assert!(report.link.closes());
//! assert!((report.setup.as_micros_f64() - 3.7).abs() < 1e-9);
//! let ckt = wafer.circuit(report.id).unwrap();
//! assert_eq!(ckt.bandwidth.0, 16.0 * 224.0); // 3.584 Tb/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod config;
pub mod fabric;
pub mod fault;
pub mod geom;
pub mod telemetry;
pub mod tile;
pub mod wafer;

pub use circuit::{Circuit, CircuitError, CircuitId, CircuitRequest};
pub use config::WaferConfig;
pub use fabric::{
    CrossCircuit, CrossCircuitId, CrossPlan, Fabric, FabricCircuit, FiberLink, WaferId,
};
pub use fault::{
    CircuitFault, CollectiveFault, CtrlFault, EntityRef, FabricError, FaultKind, Layer, PhyFault,
    RouteFault, TopoFault,
};
pub use geom::{Dir, EdgeId, EdgeIndex, EdgeSet, Path, TileCoord};
pub use telemetry::{WaferTelemetry, EDGE_OCCUPANCY_BUCKETS};
pub use tile::Tile;
pub use wafer::{EstablishReport, Wafer};
