//! Workspace-wide fault taxonomy.
//!
//! The paper's §4.2 case for photonics is about *containing* failures —
//! shrinking the blast radius of a dead chip from a rack to one server — and
//! the control plane must hold itself to the same standard: an infeasible
//! request, an unroutable demand, or a mid-batch programming failure is an
//! *outcome* to be journaled, retried, or repaired, never a reason to abort
//! the process. This module is the single error currency for that contract:
//! every fallible mutation or planning path in the workspace returns
//! [`FabricError`] — a layer-tagged fault kind plus the entities involved and
//! an optional source chain — instead of a crate-local ad-hoc enum.
//!
//! Layering mirrors the crate graph (a fault at one layer may be *caused by*
//! a fault one layer down):
//!
//! ```text
//!   ctrl        admission, batch programming, replay        (fabricd)
//!    └─ route   path search, batch alloc, RWA, protection   (route)
//!    └─ topo    slice carving on the chip torus             (topo, lifted)
//!    └─ collective  ring/bucket schedule construction       (collectives)
//!        └─ circuit  wafer circuit establishment            (core)
//!            └─ phy  link budget / BER closure              (phy, lifted)
//! ```
//!
//! Every kind has a stable machine-readable reason code
//! (`layer/kebab-name`, see [`FabricError::code`]) used for journaled
//! rejections, telemetry counters, and the `verify` CTL403 audit. The full
//! registry is [`CODES`]; codes are append-only.

use crate::circuit::CircuitId;
use crate::geom::{EdgeId, TileCoord};
use std::fmt;

/// The layer of the stack a fault originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// Physical layer: link budget, BER.
    Phy,
    /// Wafer circuit establishment (core).
    Circuit,
    /// Slice carving on the chip torus (topo).
    Topo,
    /// Path search, batch allocation, RWA, protection (route).
    Route,
    /// Collective schedule construction (collectives).
    Collective,
    /// Control plane: admission, programming, replay (fabricd).
    Ctrl,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::Phy => "phy",
            Layer::Circuit => "circuit",
            Layer::Topo => "topo",
            Layer::Route => "route",
            Layer::Collective => "collective",
            Layer::Ctrl => "ctrl",
        };
        f.write_str(s)
    }
}

/// A reference to the entity a fault is about, for structured rendering and
/// diagnostics ("which tile / edge / job was that?").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EntityRef {
    /// A wafer tile.
    Tile(TileCoord),
    /// A waveguide bus between adjacent tiles.
    Edge(EdgeId),
    /// An established (or formerly established) circuit.
    Circuit(CircuitId),
    /// A wafer by index within the fabric.
    Wafer(usize),
    /// A chip position on the rack torus (plain coords; `core` cannot see
    /// `topo` types).
    Chip {
        /// X position.
        x: usize,
        /// Y position.
        y: usize,
        /// Z position.
        z: usize,
    },
    /// A job / tenant slice id.
    Job(u32),
    /// A demand index within a batch.
    Demand(usize),
    /// A failure incident id.
    Incident(u64),
    /// A journal sequence number.
    Seq(u64),
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityRef::Tile(t) => write!(f, "tile {t}"),
            EntityRef::Edge(e) => write!(f, "edge {e}"),
            EntityRef::Circuit(c) => write!(f, "circuit {c}"),
            EntityRef::Wafer(w) => write!(f, "wafer {w}"),
            EntityRef::Chip { x, y, z } => write!(f, "chip [{x},{y},{z}]"),
            EntityRef::Job(j) => write!(f, "job {j}"),
            EntityRef::Demand(d) => write!(f, "demand #{d}"),
            EntityRef::Incident(i) => write!(f, "incident {i}"),
            EntityRef::Seq(s) => write!(f, "seq {s}"),
        }
    }
}

/// Why a circuit could not be established on a wafer.
///
/// This is the circuit-layer sub-enum of the taxonomy. The legacy name
/// `CircuitError` is re-exported from [`crate::circuit`] so existing match
/// sites keep reading naturally. Display strings are embedded in journal
/// canon (repair-failed records) and must stay byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitFault {
    /// Source and destination are the same tile.
    SameEndpoints(TileCoord),
    /// A referenced tile is outside the wafer grid.
    OutOfBounds(TileCoord),
    /// An endpoint tile's accelerator has failed (pass-through still works,
    /// but it cannot source or sink traffic).
    TileFailed(TileCoord),
    /// Zero lanes requested, or more than the tile's SerDes pool has.
    BadLaneCount(usize),
    /// The source tile has too few free transmit lanes.
    InsufficientTxLanes {
        /// Tile that was out of lanes.
        tile: TileCoord,
        /// Lanes free at request time.
        free: usize,
        /// Lanes requested.
        requested: usize,
    },
    /// The destination tile has too few free receive lanes.
    InsufficientRxLanes {
        /// Tile that was out of lanes.
        tile: TileCoord,
        /// Lanes free at request time.
        free: usize,
        /// Lanes requested.
        requested: usize,
    },
    /// A waveguide bus along the route is fully occupied.
    EdgeExhausted(EdgeId),
    /// The end-to-end optical budget does not close at the target BER.
    BudgetFailed {
        /// Shortfall (negative margin), dB.
        margin_db: f64,
    },
    /// A provided path does not start/end at the requested endpoints.
    PathMismatch,
    /// No such circuit (teardown/lookup of a stale id).
    UnknownCircuit(CircuitId),
    /// A fiber link needed by a cross-wafer circuit is exhausted.
    FiberExhausted {
        /// Fibers available on the link.
        capacity: u32,
    },
    /// Cross-wafer request between wafers with no fiber link.
    NoFiberLink,
}

impl fmt::Display for CircuitFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitFault::SameEndpoints(t) => write!(f, "endpoints are the same tile {t}"),
            CircuitFault::OutOfBounds(t) => write!(f, "tile {t} outside the wafer grid"),
            CircuitFault::TileFailed(t) => write!(f, "tile {t} has a failed accelerator"),
            CircuitFault::BadLaneCount(n) => write!(f, "invalid lane count {n}"),
            CircuitFault::InsufficientTxLanes {
                tile,
                free,
                requested,
            } => write!(
                f,
                "tile {tile}: {requested} tx lanes requested, {free} free"
            ),
            CircuitFault::InsufficientRxLanes {
                tile,
                free,
                requested,
            } => write!(
                f,
                "tile {tile}: {requested} rx lanes requested, {free} free"
            ),
            CircuitFault::EdgeExhausted(e) => write!(f, "waveguide bus {e} exhausted"),
            CircuitFault::BudgetFailed { margin_db } => {
                write!(
                    f,
                    "optical budget fails to close (margin {margin_db:.2} dB)"
                )
            }
            CircuitFault::PathMismatch => write!(f, "explicit path does not match endpoints"),
            CircuitFault::UnknownCircuit(id) => write!(f, "unknown circuit {id}"),
            CircuitFault::FiberExhausted { capacity } => {
                write!(f, "fiber link exhausted ({capacity} fibers)")
            }
            CircuitFault::NoFiberLink => write!(f, "no fiber link between the wafers"),
        }
    }
}

impl std::error::Error for CircuitFault {}

/// Physical-layer infeasibility: the optical budget does not close.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhyFault {
    /// Received power is below sensitivity at the target BER.
    BudgetNotClosed {
        /// Margin (negative = shortfall), dB.
        margin_db: f64,
    },
    /// Estimated BER exceeds the target.
    BerAboveTarget {
        /// Estimated bit error rate.
        ber: f64,
        /// Target bit error rate.
        target_ber: f64,
    },
}

impl fmt::Display for PhyFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyFault::BudgetNotClosed { margin_db } => {
                write!(f, "link budget does not close (margin {margin_db:.2} dB)")
            }
            PhyFault::BerAboveTarget { ber, target_ber } => {
                write!(f, "BER {ber:.2e} above target {target_ber:.2e}")
            }
        }
    }
}

/// Slice-carving faults on the chip torus. Plain coordinate data because
/// `core` sits below `topo` in the crate graph; `fabricd` lifts
/// `topo::PlaceError` into this shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopoFault {
    /// The slice extends past the torus bounds (or can never fit).
    OutOfBounds,
    /// A chip of the requested box is already owned.
    Occupied {
        /// X position of the occupied chip.
        x: usize,
        /// Y position of the occupied chip.
        y: usize,
        /// Z position of the occupied chip.
        z: usize,
    },
    /// A slice with this id is already placed.
    DuplicateId(u32),
    /// No free box of the requested extent exists.
    NoSpace,
    /// A pod chip count that cannot form a rack-group partition (zero,
    /// or not a whole number of racks). Rejecting it here keeps the
    /// shard layout total: no chip is ever silently truncated away.
    DegenerateLayout {
        /// The rejected chip count.
        chips: usize,
    },
}

impl fmt::Display for TopoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoFault::OutOfBounds => write!(f, "slice outside the torus"),
            TopoFault::Occupied { x, y, z } => write!(f, "chip [{x},{y},{z}] already owned"),
            TopoFault::DuplicateId(id) => write!(f, "slice id {id} already placed"),
            TopoFault::NoSpace => write!(f, "no free box of the requested extent"),
            TopoFault::DegenerateLayout { chips } => {
                write!(f, "{chips} chips cannot form a rack-group partition")
            }
        }
    }
}

/// Routing-layer faults: unroutable is an outcome, not a bug.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteFault {
    /// No path edge-disjoint from the batch's earlier circuits exists.
    NoDisjointPath {
        /// Index of the demand within the batch.
        demand: usize,
    },
    /// No backup path edge-disjoint from the working path exists.
    NoDisjointBackup,
    /// Establishing a routed demand failed at the circuit layer (see the
    /// source chain).
    Establish {
        /// Index of the demand within the batch.
        demand: usize,
    },
    /// No `k` continuity-feasible wavelengths along the chosen path.
    WavelengthExhausted {
        /// Wavelengths requested.
        needed: usize,
    },
    /// Release of a wavelength assignment not held on some edge (double
    /// release or wrong path).
    ReleaseUnheld {
        /// The edge where the assignment was not held.
        edge: EdgeId,
    },
}

impl fmt::Display for RouteFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteFault::NoDisjointPath { demand } => {
                write!(f, "no edge-disjoint path for demand #{demand}")
            }
            RouteFault::NoDisjointBackup => write!(f, "no edge-disjoint backup path"),
            RouteFault::Establish { demand } => {
                write!(f, "establishing demand #{demand} failed")
            }
            RouteFault::WavelengthExhausted { needed } => {
                write!(f, "no {needed} continuity-feasible wavelengths")
            }
            RouteFault::ReleaseUnheld { edge } => {
                write!(f, "releasing unheld wavelengths on {edge}")
            }
        }
    }
}

/// Collective-schedule construction faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollectiveFault {
    /// A ring collective needs at least two members.
    TooFewMembers {
        /// Members supplied.
        members: usize,
    },
    /// A bucket collective needs a non-degenerate 2-D extent.
    DegenerateExtent {
        /// X extent supplied.
        extent_x: usize,
        /// Y extent supplied.
        extent_y: usize,
    },
    /// Establishing a collective hop failed (see the source chain).
    Establish {
        /// Index of the hop within the schedule.
        hop: usize,
    },
}

impl fmt::Display for CollectiveFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveFault::TooFewMembers { members } => {
                write!(f, "ring collective needs >= 2 members, got {members}")
            }
            CollectiveFault::DegenerateExtent { extent_x, extent_y } => {
                write!(
                    f,
                    "bucket collective needs a >= 2x2 extent, got {extent_x}x{extent_y}"
                )
            }
            CollectiveFault::Establish { hop } => {
                write!(f, "establishing collective hop #{hop} failed")
            }
        }
    }
}

/// Control-plane faults: admission, batch programming, replay.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlFault {
    /// No slice of the requested shape fits the rack.
    NoSpace {
        /// The job that could not be placed.
        job: u32,
    },
    /// An intra-wafer batch of a circuit plan failed to program (see the
    /// source chain).
    ProgramBatch {
        /// Index of the wafer whose batch failed.
        wafer: usize,
    },
    /// A cross-wafer splice of a circuit plan failed to program (see the
    /// source chain).
    ProgramCross {
        /// Index of the splice within the plan.
        index: usize,
    },
    /// A queued job timed out before capacity freed up.
    QueueTimeout {
        /// The job that timed out.
        job: u32,
    },
    /// Bounded-backoff retries were exhausted without a successful program.
    RetriesExhausted {
        /// The job that gave up.
        job: u32,
        /// Attempts made (initial try plus retries).
        attempts: u32,
    },
    /// Journal replay diverged from the live run.
    ReplayDiverged {
        /// Journal sequence number where replay diverged.
        seq: u64,
        /// What diverged.
        what: String,
    },
    /// An operation referenced a job the control plane does not know.
    UnknownJob {
        /// The unknown job id.
        job: u32,
    },
    /// Optical repair of a failure incident could not be completed.
    RepairFailed {
        /// The incident that could not be repaired.
        incident: u64,
    },
}

impl fmt::Display for CtrlFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlFault::NoSpace { job } => write!(f, "no space for job {job}"),
            CtrlFault::ProgramBatch { wafer } => {
                write!(f, "batch programming failed on wafer {wafer}")
            }
            CtrlFault::ProgramCross { index } => {
                write!(f, "cross-wafer splice #{index} failed to program")
            }
            CtrlFault::QueueTimeout { job } => write!(f, "job {job} timed out in queue"),
            CtrlFault::RetriesExhausted { job, attempts } => {
                write!(f, "job {job} gave up after {attempts} attempts")
            }
            CtrlFault::ReplayDiverged { seq, what } => {
                write!(f, "replay diverged at seq {seq}: {what}")
            }
            CtrlFault::UnknownJob { job } => write!(f, "unknown job {job}"),
            CtrlFault::RepairFailed { incident } => {
                write!(f, "repair of incident {incident} failed")
            }
        }
    }
}

/// A fault kind: one variant of one layer's sub-enum.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Physical layer.
    Phy(PhyFault),
    /// Circuit layer.
    Circuit(CircuitFault),
    /// Topology layer.
    Topo(TopoFault),
    /// Routing layer.
    Route(RouteFault),
    /// Collective layer.
    Collective(CollectiveFault),
    /// Control plane.
    Ctrl(CtrlFault),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Phy(e) => e.fmt(f),
            FaultKind::Circuit(e) => e.fmt(f),
            FaultKind::Topo(e) => e.fmt(f),
            FaultKind::Route(e) => e.fmt(f),
            FaultKind::Collective(e) => e.fmt(f),
            FaultKind::Ctrl(e) => e.fmt(f),
        }
    }
}

/// The workspace-wide structured fault: a layer-tagged kind plus an optional
/// source chain (the lower-layer fault that caused this one).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricError {
    /// What went wrong at this layer.
    pub kind: FaultKind,
    /// The lower-layer fault this one wraps, if any.
    pub source: Option<Box<FabricError>>,
}

/// Every reason code the taxonomy can emit, `layer/kebab-name`. Append-only:
/// journaled rejections reference these codes and `verify` CTL403 audits
/// journals against this registry.
pub const CODES: &[&str] = &[
    "phy/budget-not-closed",
    "phy/ber-above-target",
    "circuit/same-endpoints",
    "circuit/out-of-bounds",
    "circuit/tile-failed",
    "circuit/bad-lane-count",
    "circuit/insufficient-tx-lanes",
    "circuit/insufficient-rx-lanes",
    "circuit/edge-exhausted",
    "circuit/budget-failed",
    "circuit/path-mismatch",
    "circuit/unknown-circuit",
    "circuit/fiber-exhausted",
    "circuit/no-fiber-link",
    "topo/out-of-bounds",
    "topo/occupied",
    "topo/duplicate-id",
    "topo/no-space",
    "route/no-disjoint-path",
    "route/no-disjoint-backup",
    "route/establish",
    "route/wavelength-exhausted",
    "route/release-unheld",
    "collective/too-few-members",
    "collective/degenerate-extent",
    "collective/establish",
    "ctrl/no-space",
    "ctrl/program-batch",
    "ctrl/program-cross",
    "ctrl/queue-timeout",
    "ctrl/retries-exhausted",
    "ctrl/replay-diverged",
    "ctrl/unknown-job",
    "ctrl/repair-failed",
    "topo/degenerate-layout",
];

impl FabricError {
    /// A fault with no lower-layer cause.
    pub fn new(kind: impl Into<FaultKind>) -> Self {
        FabricError {
            kind: kind.into(),
            source: None,
        }
    }

    /// A fault caused by a lower-layer fault.
    pub fn caused_by(kind: impl Into<FaultKind>, source: FabricError) -> Self {
        FabricError {
            kind: kind.into(),
            source: Some(Box::new(source)),
        }
    }

    /// The layer this fault originates from.
    pub fn layer(&self) -> Layer {
        match self.kind {
            FaultKind::Phy(_) => Layer::Phy,
            FaultKind::Circuit(_) => Layer::Circuit,
            FaultKind::Topo(_) => Layer::Topo,
            FaultKind::Route(_) => Layer::Route,
            FaultKind::Collective(_) => Layer::Collective,
            FaultKind::Ctrl(_) => Layer::Ctrl,
        }
    }

    /// Stable machine-readable reason code, `layer/kebab-name`.
    pub fn code(&self) -> &'static str {
        match &self.kind {
            FaultKind::Phy(e) => match e {
                PhyFault::BudgetNotClosed { .. } => "phy/budget-not-closed",
                PhyFault::BerAboveTarget { .. } => "phy/ber-above-target",
            },
            FaultKind::Circuit(e) => match e {
                CircuitFault::SameEndpoints(_) => "circuit/same-endpoints",
                CircuitFault::OutOfBounds(_) => "circuit/out-of-bounds",
                CircuitFault::TileFailed(_) => "circuit/tile-failed",
                CircuitFault::BadLaneCount(_) => "circuit/bad-lane-count",
                CircuitFault::InsufficientTxLanes { .. } => "circuit/insufficient-tx-lanes",
                CircuitFault::InsufficientRxLanes { .. } => "circuit/insufficient-rx-lanes",
                CircuitFault::EdgeExhausted(_) => "circuit/edge-exhausted",
                CircuitFault::BudgetFailed { .. } => "circuit/budget-failed",
                CircuitFault::PathMismatch => "circuit/path-mismatch",
                CircuitFault::UnknownCircuit(_) => "circuit/unknown-circuit",
                CircuitFault::FiberExhausted { .. } => "circuit/fiber-exhausted",
                CircuitFault::NoFiberLink => "circuit/no-fiber-link",
            },
            FaultKind::Topo(e) => match e {
                TopoFault::OutOfBounds => "topo/out-of-bounds",
                TopoFault::Occupied { .. } => "topo/occupied",
                TopoFault::DuplicateId(_) => "topo/duplicate-id",
                TopoFault::NoSpace => "topo/no-space",
                TopoFault::DegenerateLayout { .. } => "topo/degenerate-layout",
            },
            FaultKind::Route(e) => match e {
                RouteFault::NoDisjointPath { .. } => "route/no-disjoint-path",
                RouteFault::NoDisjointBackup => "route/no-disjoint-backup",
                RouteFault::Establish { .. } => "route/establish",
                RouteFault::WavelengthExhausted { .. } => "route/wavelength-exhausted",
                RouteFault::ReleaseUnheld { .. } => "route/release-unheld",
            },
            FaultKind::Collective(e) => match e {
                CollectiveFault::TooFewMembers { .. } => "collective/too-few-members",
                CollectiveFault::DegenerateExtent { .. } => "collective/degenerate-extent",
                CollectiveFault::Establish { .. } => "collective/establish",
            },
            FaultKind::Ctrl(e) => match e {
                CtrlFault::NoSpace { .. } => "ctrl/no-space",
                CtrlFault::ProgramBatch { .. } => "ctrl/program-batch",
                CtrlFault::ProgramCross { .. } => "ctrl/program-cross",
                CtrlFault::QueueTimeout { .. } => "ctrl/queue-timeout",
                CtrlFault::RetriesExhausted { .. } => "ctrl/retries-exhausted",
                CtrlFault::ReplayDiverged { .. } => "ctrl/replay-diverged",
                CtrlFault::UnknownJob { .. } => "ctrl/unknown-job",
                CtrlFault::RepairFailed { .. } => "ctrl/repair-failed",
            },
        }
    }

    /// The deepest fault in the source chain (`self` if there is none).
    pub fn root_cause(&self) -> &FabricError {
        let mut cur = self;
        while let Some(src) = &cur.source {
            cur = src;
        }
        cur
    }

    /// Reason code of the root cause — the most specific "why" available,
    /// used for journaled rejections and per-reason counters.
    pub fn root_code(&self) -> &'static str {
        self.root_cause().code()
    }

    /// Whether `code` is a registered reason code (CTL403 audits journaled
    /// rejections against this).
    pub fn is_valid_code(code: &str) -> bool {
        CODES.contains(&code)
    }

    /// The entities this fault (top kind only) is about.
    pub fn entities(&self) -> Vec<EntityRef> {
        match &self.kind {
            FaultKind::Phy(_) => Vec::new(),
            FaultKind::Circuit(e) => match e {
                CircuitFault::SameEndpoints(t)
                | CircuitFault::OutOfBounds(t)
                | CircuitFault::TileFailed(t) => vec![EntityRef::Tile(*t)],
                CircuitFault::InsufficientTxLanes { tile, .. }
                | CircuitFault::InsufficientRxLanes { tile, .. } => vec![EntityRef::Tile(*tile)],
                CircuitFault::EdgeExhausted(edge) => vec![EntityRef::Edge(*edge)],
                CircuitFault::UnknownCircuit(id) => vec![EntityRef::Circuit(*id)],
                _ => Vec::new(),
            },
            FaultKind::Topo(e) => match e {
                TopoFault::Occupied { x, y, z } => vec![EntityRef::Chip {
                    x: *x,
                    y: *y,
                    z: *z,
                }],
                TopoFault::DuplicateId(id) => vec![EntityRef::Job(*id)],
                _ => Vec::new(),
            },
            FaultKind::Route(e) => match e {
                RouteFault::NoDisjointPath { demand } | RouteFault::Establish { demand } => {
                    vec![EntityRef::Demand(*demand)]
                }
                RouteFault::ReleaseUnheld { edge } => vec![EntityRef::Edge(*edge)],
                _ => Vec::new(),
            },
            FaultKind::Collective(e) => match e {
                CollectiveFault::Establish { hop } => vec![EntityRef::Demand(*hop)],
                _ => Vec::new(),
            },
            FaultKind::Ctrl(e) => match e {
                CtrlFault::NoSpace { job }
                | CtrlFault::QueueTimeout { job }
                | CtrlFault::RetriesExhausted { job, .. }
                | CtrlFault::UnknownJob { job } => vec![EntityRef::Job(*job)],
                CtrlFault::ProgramBatch { wafer } => vec![EntityRef::Wafer(*wafer)],
                CtrlFault::ProgramCross { index } => vec![EntityRef::Demand(*index)],
                CtrlFault::ReplayDiverged { seq, .. } => vec![EntityRef::Seq(*seq)],
                CtrlFault::RepairFailed { incident } => vec![EntityRef::Incident(*incident)],
            },
        }
    }

    /// All entities along the source chain, outermost first, deduplicated.
    pub fn entity_chain(&self) -> Vec<EntityRef> {
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(e) = cur {
            for ent in e.entities() {
                if !out.contains(&ent) {
                    out.push(ent);
                }
            }
            cur = e.source.as_deref();
        }
        out
    }
}

impl fmt::Display for FabricError {
    /// Renders the whole chain: `code: message: code: message ...`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.kind)?;
        if let Some(src) = &self.source {
            write!(f, ": {src}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

impl From<PhyFault> for FaultKind {
    fn from(e: PhyFault) -> Self {
        FaultKind::Phy(e)
    }
}

impl From<CircuitFault> for FaultKind {
    fn from(e: CircuitFault) -> Self {
        FaultKind::Circuit(e)
    }
}

impl From<TopoFault> for FaultKind {
    fn from(e: TopoFault) -> Self {
        FaultKind::Topo(e)
    }
}

impl From<RouteFault> for FaultKind {
    fn from(e: RouteFault) -> Self {
        FaultKind::Route(e)
    }
}

impl From<CollectiveFault> for FaultKind {
    fn from(e: CollectiveFault) -> Self {
        FaultKind::Collective(e)
    }
}

impl From<CtrlFault> for FaultKind {
    fn from(e: CtrlFault) -> Self {
        FaultKind::Ctrl(e)
    }
}

impl From<CircuitFault> for FabricError {
    fn from(e: CircuitFault) -> Self {
        FabricError::new(e)
    }
}

impl From<phy::link_budget::LinkInfeasible> for FabricError {
    fn from(e: phy::link_budget::LinkInfeasible) -> Self {
        FabricError::new(PhyFault::BudgetNotClosed {
            margin_db: e.margin_db,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in CODES {
            assert!(seen.insert(c), "duplicate code {c}");
            let (layer, name) = c.split_once('/').expect("layer/name");
            assert!(
                ["phy", "circuit", "topo", "route", "collective", "ctrl"].contains(&layer),
                "bad layer in {c}"
            );
            assert!(
                name.chars().all(|ch| ch.is_ascii_lowercase() || ch == '-'),
                "bad name in {c}"
            );
        }
    }

    #[test]
    fn every_kind_code_is_registered() {
        let samples: Vec<FabricError> = vec![
            FabricError::new(PhyFault::BudgetNotClosed { margin_db: -1.0 }),
            FabricError::new(CircuitFault::NoFiberLink),
            FabricError::new(TopoFault::NoSpace),
            FabricError::new(RouteFault::NoDisjointBackup),
            FabricError::new(CollectiveFault::TooFewMembers { members: 1 }),
            FabricError::new(CtrlFault::NoSpace { job: 3 }),
        ];
        for e in &samples {
            assert!(
                FabricError::is_valid_code(e.code()),
                "{} unregistered",
                e.code()
            );
        }
        assert!(!FabricError::is_valid_code("bogus/never"));
    }

    #[test]
    fn chain_renders_outermost_first_with_codes() {
        let root = FabricError::new(CircuitFault::EdgeExhausted(EdgeId::between(
            TileCoord::new(0, 0),
            TileCoord::new(0, 1),
        )));
        let mid = FabricError::caused_by(RouteFault::Establish { demand: 2 }, root);
        let top = FabricError::caused_by(CtrlFault::ProgramBatch { wafer: 0 }, mid);
        let s = top.to_string();
        assert!(s.starts_with("ctrl/program-batch:"));
        assert!(s.contains("route/establish"));
        assert!(s.contains("circuit/edge-exhausted"));
        assert_eq!(top.root_code(), "circuit/edge-exhausted");
        assert_eq!(top.layer(), Layer::Ctrl);
    }

    #[test]
    fn entity_chain_collects_across_layers() {
        let root = FabricError::new(CircuitFault::TileFailed(TileCoord::new(1, 2)));
        let top = FabricError::caused_by(CtrlFault::ProgramBatch { wafer: 1 }, root);
        let ents = top.entity_chain();
        assert!(ents.contains(&EntityRef::Wafer(1)));
        assert!(ents.contains(&EntityRef::Tile(TileCoord::new(1, 2))));
    }

    #[test]
    fn std_error_source_walks_the_chain() {
        let root = FabricError::new(CircuitFault::PathMismatch);
        let top = FabricError::caused_by(RouteFault::Establish { demand: 0 }, root.clone());
        let src = std::error::Error::source(&top).expect("has source");
        assert_eq!(src.to_string(), root.to_string());
    }
}
