//! The LIGHTPATH wafer: a grid of tiles, waveguide buses, and the circuit
//! manager that establishes contention-free optical circuits between them.
//!
//! Admission control enforces the three physical constraints of §3:
//!
//! 1. **SerDes lanes** — a tile can source/sink at most 16 wavelengths.
//! 2. **Waveguide capacity** — each inter-tile bus carries up to ~10,000
//!    guides; every circuit reserves one *dedicated* guide per edge it
//!    crosses, so admitted circuits are congestion-free by construction
//!    (the paper's definition of congestion is two transfers on one link).
//! 3. **Optical budget** — the end-to-end loss (propagation, crossings at
//!    0.25 dB, fabricated reticle-stitch losses, MZI stages) must close
//!    against the receiver sensitivity at 224 Gb/s.
//!
//! Establishing a circuit programs MZI switches, which costs the measured
//! **3.7 µs** reconfiguration latency (returned to the caller so the
//! collective/resilience layers can account the `r` term of the paper's
//! α–β–r cost model).

use std::collections::BTreeMap;

use desim::{SimDuration, SimRng};
use phy::link_budget::LinkBudget;
use phy::loss::{LossBudget, LossElement};
use phy::thermal::RECONFIG_LATENCY_S;
use phy::units::Gbps;
use phy::wdm::LambdaSet;

use crate::circuit::{Circuit, CircuitError, CircuitId, CircuitRequest};
use crate::config::WaferConfig;
use crate::geom::{EdgeId, EdgeIndex, Path, TileCoord};
use crate::tile::Tile;

/// Result of establishing a circuit.
#[derive(Debug, Clone, Copy)]
pub struct EstablishReport {
    /// Handle for teardown and lookup.
    pub id: CircuitId,
    /// Time until the circuit carries valid data: the MZI reconfiguration
    /// latency (switches along the path settle in parallel).
    pub setup: SimDuration,
    /// Link-budget margin and BER of the admitted circuit.
    pub link: phy::link_budget::LinkReport,
}

/// A LIGHTPATH wafer instance.
#[derive(Debug, Clone)]
pub struct Wafer {
    cfg: WaferConfig,
    tiles: Vec<Tile>,
    /// Dense `EdgeId -> usize` index for this grid; keys the two `Vec`s
    /// below and every routing scratch structure built against this wafer.
    edge_index: EdgeIndex,
    /// Waveguides in use per inter-tile bus, by dense edge index.
    edge_used: Vec<u32>,
    /// Fabricated stitch loss of each boundary (sampled once), by dense
    /// edge index.
    stitch_loss_db: Vec<f64>,
    circuits: BTreeMap<CircuitId, Circuit>,
    next_id: u64,
    reconfigs: u64,
    /// Monotonic counter bumped on every mutation that can change routing
    /// state (establish, teardown, tile failure/restore). Route-layer
    /// caches key on this: equal epochs guarantee identical search results.
    occupancy_epoch: u64,
}

impl Wafer {
    /// Fabricate a wafer: builds tiles and samples every boundary's reticle
    /// stitch loss from the config's fab model (deterministic in
    /// `cfg.fab_seed`).
    pub fn new(cfg: WaferConfig) -> Self {
        let cfg = cfg.validated();
        let tiles = (0..cfg.tiles())
            .map(|_| Tile::new(&cfg.wdm, cfg.mzi))
            .collect();
        let mut rng = SimRng::seed_from_u64(cfg.fab_seed);
        let edge_index = EdgeIndex::new(cfg.rows, cfg.cols);
        let mut stitch_loss_db = vec![0.0; edge_index.len()];
        // Sampling order (per tile: east bus, then south bus) is part of
        // the fabrication model: it fixes how the seed's RNG stream maps to
        // boundaries, so it must not change when the storage layout does.
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                let here = TileCoord::new(r, c);
                if c + 1 < cfg.cols {
                    let e = EdgeId::between(here, TileCoord::new(r, c + 1));
                    stitch_loss_db[edge_index.index(e)] = cfg.stitch.sample(&mut rng);
                }
                if r + 1 < cfg.rows {
                    let e = EdgeId::between(here, TileCoord::new(r + 1, c));
                    stitch_loss_db[edge_index.index(e)] = cfg.stitch.sample(&mut rng);
                }
            }
        }
        Wafer {
            cfg,
            tiles,
            edge_index,
            edge_used: vec![0; edge_index.len()],
            stitch_loss_db,
            circuits: BTreeMap::new(),
            next_id: 0,
            reconfigs: 0,
            occupancy_epoch: 0,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &WaferConfig {
        &self.cfg
    }

    fn index(&self, t: TileCoord) -> Result<usize, CircuitError> {
        if t.row >= self.cfg.rows || t.col >= self.cfg.cols {
            return Err(CircuitError::OutOfBounds(t));
        }
        Ok(t.row as usize * self.cfg.cols as usize + t.col as usize)
    }

    /// Inspect a tile.
    ///
    /// Panics if `t` is outside the grid.
    pub fn tile(&self, t: TileCoord) -> &Tile {
        let i = self.index(t).expect("tile coordinate out of bounds");
        &self.tiles[i]
    }

    /// Mutate a tile (switch programming, failure injection).
    ///
    /// Panics if `t` is outside the grid.
    pub fn tile_mut(&mut self, t: TileCoord) -> &mut Tile {
        let i = self.index(t).expect("tile coordinate out of bounds");
        &mut self.tiles[i]
    }

    /// All tile coordinates, row-major.
    pub fn coords(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let cols = self.cfg.cols;
        (0..self.cfg.rows).flat_map(move |r| (0..cols).map(move |c| TileCoord::new(r, c)))
    }

    /// Fabricated stitch loss of a boundary, dB.
    ///
    /// Panics if `e` is not a boundary of this wafer.
    pub fn stitch_loss_db(&self, e: EdgeId) -> f64 {
        match self.edge_index.try_index(e) {
            Some(i) => self.stitch_loss_db[i],
            None => panic!("edge is not a boundary of this wafer"),
        }
    }

    /// Waveguides currently reserved on a bus.
    pub fn edge_used(&self, e: EdgeId) -> u32 {
        self.edge_index
            .try_index(e)
            .map_or(0, |i| self.edge_used[i])
    }

    /// The dense edge index keying [`edge_loads`](Self::edge_loads) (and
    /// any routing scratch built for this wafer).
    pub fn edge_index(&self) -> EdgeIndex {
        self.edge_index
    }

    /// Waveguides in use on every bus, by dense edge index — the
    /// zero-overhead view the routing hot path reads instead of hashing
    /// `EdgeId`s.
    pub fn edge_loads(&self) -> &[u32] {
        &self.edge_used
    }

    /// Bus capacity (same for every edge).
    pub fn edge_capacity(&self) -> u32 {
        self.cfg.waveguides_per_edge
    }

    /// Total MZI reconfiguration events charged so far.
    pub fn reconfigs(&self) -> u64 {
        self.reconfigs
    }

    /// The wafer's occupancy epoch: advances on every establish, teardown,
    /// and tile failure/restore. Two calls returning the same epoch bracket
    /// a window in which routing inputs (bus loads, tile health) were
    /// unchanged, so a path computed inside the window is still valid —
    /// the contract [`route`]'s path cache relies on.
    ///
    /// [`route`]: https://docs.rs/route
    pub fn occupancy_epoch(&self) -> u64 {
        self.occupancy_epoch
    }

    /// The itemized optical loss budget a circuit on `path` would incur.
    pub fn path_loss_budget(&self, path: &Path) -> LossBudget {
        let mut b = LossBudget::new();
        b.push(LossElement::Waveguide {
            length_cm: path.hops() as f64 * self.cfg.tile_pitch_cm,
            db_per_cm: self.cfg.propagation_loss_db_per_cm,
        });
        for e in path.edges() {
            b.push(LossElement::ReticleStitch {
                loss_db: self.stitch_loss_db(e),
            });
        }
        let through_crossings = path.intermediate_tiles().len() as u32
            * self.cfg.crossings_per_through_tile
            + path.turns() as u32 * self.cfg.crossings_per_turn;
        for _ in 0..through_crossings {
            b.push(LossElement::Crossing);
        }
        // Crosstalk from circuits already co-propagating on each bus.
        for e in path.edges() {
            b.push(LossElement::Crosstalk {
                neighbours: self.edge_used(e),
                per_neighbour_db: self.cfg.crosstalk_per_cochannel_db,
            });
        }
        // MZI switches are traversed where the circuit is steered: at the
        // source (onto the bus), at each turn (between perpendicular
        // buses), and at the destination (off the bus). Straight
        // pass-through rides the bus waveguide without entering a switch.
        for _ in 0..(2 + path.turns()) {
            b.push(LossElement::MziStage {
                loss_db: 2.0 * self.cfg.mzi.insertion_loss_db,
            });
        }
        b
    }

    /// Evaluate the link budget a circuit on `path` would see.
    pub fn link_budget(&self, path: &Path) -> phy::link_budget::LinkReport {
        LinkBudget::lightpath_default(self.path_loss_budget(path)).evaluate()
    }

    /// Choose the default route for a request: XY, falling back to YX when
    /// any XY edge is exhausted.
    fn default_route(&self, src: TileCoord, dst: TileCoord) -> Path {
        let xy = Path::xy(src, dst);
        let xy_fits = xy
            .edges()
            .all(|e| self.edge_used(e) < self.cfg.waveguides_per_edge);
        if xy_fits {
            xy
        } else {
            Path::yx(src, dst)
        }
    }

    /// Establish a circuit. On success the circuit's waveguides, SerDes
    /// lanes, and switch programming are committed atomically; on error
    /// nothing changes.
    pub fn establish(&mut self, req: CircuitRequest) -> Result<EstablishReport, CircuitError> {
        self.establish_impl(req, None)
    }

    /// Establish with a link report captured from an earlier evaluation of
    /// the *same* path under the *same* crosstalk loads — the plan-library
    /// stamp path, which skips the dominant link-budget recomputation.
    ///
    /// Contract: `link` must equal `self.link_budget(path)` bit-for-bit at
    /// the moment of the call; callers guarantee this by only stamping when
    /// every load the budget reads is unchanged since capture. Debug builds
    /// (the test suite) recompute and assert the equality.
    pub fn establish_prebudgeted(
        &mut self,
        req: CircuitRequest,
        link: phy::link_budget::LinkReport,
    ) -> Result<EstablishReport, CircuitError> {
        self.establish_impl(req, Some(link))
    }

    fn establish_impl(
        &mut self,
        req: CircuitRequest,
        prebudgeted: Option<phy::link_budget::LinkReport>,
    ) -> Result<EstablishReport, CircuitError> {
        // --- validate endpoints -------------------------------------------------
        if req.src == req.dst {
            return Err(CircuitError::SameEndpoints(req.src));
        }
        let src_idx = self.index(req.src)?;
        let dst_idx = self.index(req.dst)?;
        if req.lanes == 0 || req.lanes > self.cfg.wdm.channels {
            return Err(CircuitError::BadLaneCount(req.lanes));
        }
        if req.claim_src_serdes && self.tiles[src_idx].is_failed() {
            return Err(CircuitError::TileFailed(req.src));
        }
        if req.claim_dst_serdes && self.tiles[dst_idx].is_failed() {
            return Err(CircuitError::TileFailed(req.dst));
        }

        // --- resolve route -------------------------------------------------------
        let path = match req.path {
            Some(p) => {
                if p.src() != req.src || p.dst() != req.dst {
                    return Err(CircuitError::PathMismatch);
                }
                for t in p.tiles() {
                    self.index(*t)?;
                }
                p
            }
            None => self.default_route(req.src, req.dst),
        };

        // --- read-only admission checks -----------------------------------------
        for e in path.edges() {
            if self.edge_used(e) >= self.cfg.waveguides_per_edge {
                return Err(CircuitError::EdgeExhausted(e));
            }
        }
        let lambdas = if req.claim_src_serdes {
            let avail = self.tiles[src_idx].serdes.tx_available();
            avail
                .take_lowest(req.lanes)
                .ok_or(CircuitError::InsufficientTxLanes {
                    tile: req.src,
                    free: avail.len(),
                    requested: req.lanes,
                })?
        } else {
            // Fiber-fed segment: wavelengths were chosen by the true source.
            LambdaSet::first_n(req.lanes)
        };
        let rx_lambdas = if req.claim_dst_serdes {
            let avail = self.tiles[dst_idx].serdes.rx_available();
            avail
                .take_lowest(req.lanes)
                .ok_or(CircuitError::InsufficientRxLanes {
                    tile: req.dst,
                    free: avail.len(),
                    requested: req.lanes,
                })?
        } else {
            LambdaSet::EMPTY
        };
        let link = match prebudgeted {
            Some(given) => {
                debug_assert_eq!(
                    report_bits(&given),
                    report_bits(&self.link_budget(&path)),
                    "prebudgeted link report diverged from a fresh evaluation"
                );
                given
            }
            None => self.link_budget(&path),
        };
        if let Err(infeasible) = link.require_closure(phy::DEFAULT_TARGET_BER) {
            return Err(CircuitError::BudgetFailed {
                margin_db: infeasible.margin_db,
            });
        }

        // --- commit --------------------------------------------------------------
        // Availability was checked above, so the claims cannot fail; handle
        // them fallibly anyway (with rollback) to keep this path panic-free.
        if req.claim_src_serdes && self.tiles[src_idx].serdes.claim_tx(lambdas).is_none() {
            return Err(CircuitError::InsufficientTxLanes {
                tile: req.src,
                free: self.tiles[src_idx].serdes.tx_available().len(),
                requested: req.lanes,
            });
        }
        if req.claim_dst_serdes && self.tiles[dst_idx].serdes.claim_rx(rx_lambdas).is_none() {
            if req.claim_src_serdes {
                self.tiles[src_idx].serdes.release_tx(lambdas);
            }
            return Err(CircuitError::InsufficientRxLanes {
                tile: req.dst,
                free: self.tiles[dst_idx].serdes.rx_available().len(),
                requested: req.lanes,
            });
        }
        for e in path.edges() {
            self.edge_used[self.edge_index.index(e)] += 1;
        }
        let id = CircuitId(self.next_id);
        self.next_id += 1;
        self.reconfigs += 1;
        self.occupancy_epoch += 1;
        let bandwidth = Gbps(self.cfg.wdm.rate.0 * req.lanes as f64);
        self.circuits.insert(
            id,
            Circuit {
                id,
                path,
                lambdas,
                claimed_src: req.claim_src_serdes,
                claimed_dst: req.claim_dst_serdes,
                bandwidth,
                link,
            },
        );
        Ok(EstablishReport {
            id,
            setup: SimDuration::from_secs_f64(RECONFIG_LATENCY_S),
            link,
        })
    }

    /// Tear a circuit down, releasing its waveguides and SerDes lanes.
    pub fn teardown(&mut self, id: CircuitId) -> Result<(), CircuitError> {
        // Resolve indices before removing so an (impossible) stale path
        // leaves the wafer untouched instead of panicking mid-teardown.
        let (src_idx, dst_idx) = {
            let ckt = self
                .circuits
                .get(&id)
                .ok_or(CircuitError::UnknownCircuit(id))?;
            (self.index(ckt.path.src())?, self.index(ckt.path.dst())?)
        };
        let ckt = self
            .circuits
            .remove(&id)
            .ok_or(CircuitError::UnknownCircuit(id))?;
        if ckt.claimed_src {
            self.tiles[src_idx].serdes.release_tx(ckt.lambdas);
        }
        if ckt.claimed_dst {
            // Rx lanes were claimed as the lowest-k at establish time; the
            // same count starting from the same base set is stored — we
            // re-derive by count since rx lane identity is interchangeable.
            let rx = rx_release_set(&self.tiles[dst_idx], ckt.lambdas.len());
            self.tiles[dst_idx].serdes.release_rx(rx);
        }
        for e in ckt.path.edges() {
            self.edge_used[self.edge_index.index(e)] -= 1;
        }
        self.occupancy_epoch += 1;
        Ok(())
    }

    /// Look up an established circuit.
    pub fn circuit(&self, id: CircuitId) -> Option<&Circuit> {
        self.circuits.get(&id)
    }

    /// All live circuits in id order.
    pub fn circuits(&self) -> impl Iterator<Item = &Circuit> {
        self.circuits.values()
    }

    /// Circuits that terminate (source or sink) at a tile.
    pub fn circuits_at(&self, t: TileCoord) -> Vec<CircuitId> {
        self.circuits
            .values()
            .filter(|c| c.path.src() == t || c.path.dst() == t)
            .map(|c| c.id)
            .collect()
    }

    /// Aggregate bandwidth of all live circuits.
    pub fn aggregate_bandwidth(&self) -> Gbps {
        self.circuits.values().map(|c| c.bandwidth).sum()
    }

    /// Mark a tile's accelerator failed. Existing circuits are untouched;
    /// the resilience layer decides what to tear down.
    pub fn fail_tile(&mut self, t: TileCoord) {
        self.tile_mut(t).fail();
        self.occupancy_epoch += 1;
    }

    /// Restore a tile's accelerator.
    pub fn restore_tile(&mut self, t: TileCoord) {
        self.tile_mut(t).restore();
        self.occupancy_epoch += 1;
    }

    /// Serialize all mutable wafer state into a canonical snapshot.
    ///
    /// The fabricated substrate (stitch losses, edge index, config) is NOT
    /// written: it is a pure function of `WaferConfig` and re-fabricated by
    /// [`new`](Self::new) on restore, so the snapshot carries only what a
    /// running campaign has changed — SerDes claims, tile health, bus
    /// loads, live circuits, and the monotonic counters.
    pub fn write_snap(&self, w: &mut desim::SnapWriter) {
        w.section("wafer");
        w.u64("next_id", self.next_id);
        w.u64("reconfigs", self.reconfigs);
        w.u64("occupancy_epoch", self.occupancy_epoch);
        w.u64("tiles", self.tiles.len() as u64);
        for t in &self.tiles {
            let all = LambdaSet::first_n(t.serdes.lanes());
            w.u64("tx", all.difference(t.serdes.tx_available()).bits());
            w.u64("rx", all.difference(t.serdes.rx_available()).bits());
            w.bool("failed", t.is_failed());
        }
        w.u64("edges", self.edge_used.len() as u64);
        for &used in &self.edge_used {
            w.u64("used", used as u64);
        }
        w.u64("circuits", self.circuits.len() as u64);
        for c in self.circuits.values() {
            w.u64("id", c.id.0);
            w.u64("hops", c.path.tiles().len() as u64);
            for t in c.path.tiles() {
                w.u64("row", t.row as u64);
                w.u64("col", t.col as u64);
            }
            w.u64("lambdas", c.lambdas.bits());
            w.bool("claimed_src", c.claimed_src);
            w.bool("claimed_dst", c.claimed_dst);
            w.f64("bandwidth", c.bandwidth.0);
            w.f64("received", c.link.received.0);
            w.f64("sensitivity", c.link.sensitivity.0);
            w.f64("margin", c.link.margin.0);
            w.f64("ber", c.link.ber);
            w.f64("rate", c.link.rate.0);
        }
    }

    /// Apply a [`write_snap`](Self::write_snap) snapshot onto a freshly
    /// fabricated wafer (same `WaferConfig`, no circuits established).
    ///
    /// Restoration goes through the SerDes pools' own claim API so their
    /// internal state is bit-identical to the original's, and errors out
    /// (leaving `self` possibly partially restored — callers discard it)
    /// on any inconsistency instead of panicking.
    pub fn read_snap(&mut self, r: &mut desim::SnapReader<'_>) -> Result<(), String> {
        r.section("wafer")?;
        self.next_id = r.u64("next_id")?;
        self.reconfigs = r.u64("reconfigs")?;
        self.occupancy_epoch = r.u64("occupancy_epoch")?;
        let tiles = r.u64("tiles")? as usize;
        if tiles != self.tiles.len() {
            return Err(format!(
                "wafer restore: {tiles} tiles in snapshot, {} fabricated",
                self.tiles.len()
            ));
        }
        for (i, t) in self.tiles.iter_mut().enumerate() {
            let tx = LambdaSet::from_bits(r.u64("tx")?);
            let rx = LambdaSet::from_bits(r.u64("rx")?);
            if !tx.is_empty() && t.serdes.claim_tx(tx).is_none() {
                return Err(format!("wafer restore: tile {i}: tx claim conflict"));
            }
            if !rx.is_empty() && t.serdes.claim_rx(rx).is_none() {
                return Err(format!("wafer restore: tile {i}: rx claim conflict"));
            }
            if r.bool("failed")? {
                t.fail();
            }
        }
        let edges = r.u64("edges")? as usize;
        if edges != self.edge_used.len() {
            return Err(format!(
                "wafer restore: {edges} edges in snapshot, {} fabricated",
                self.edge_used.len()
            ));
        }
        for used in self.edge_used.iter_mut() {
            *used = u32::try_from(r.u64("used")?)
                .map_err(|_| "wafer restore: edge load exceeds u32".to_string())?;
        }
        let circuits = r.u64("circuits")? as usize;
        for _ in 0..circuits {
            let id = CircuitId(r.u64("id")?);
            let hops = r.u64("hops")? as usize;
            let mut pts = Vec::with_capacity(hops);
            for _ in 0..hops {
                let row = u8::try_from(r.u64("row")?)
                    .map_err(|_| "wafer restore: tile row exceeds u8".to_string())?;
                let col = u8::try_from(r.u64("col")?)
                    .map_err(|_| "wafer restore: tile col exceeds u8".to_string())?;
                pts.push(TileCoord::new(row, col));
            }
            let path = Path::from_tiles(pts)
                .ok_or_else(|| format!("wafer restore: circuit {id}: invalid path"))?;
            let lambdas = LambdaSet::from_bits(r.u64("lambdas")?);
            let claimed_src = r.bool("claimed_src")?;
            let claimed_dst = r.bool("claimed_dst")?;
            let bandwidth = Gbps(r.f64("bandwidth")?);
            let link = phy::link_budget::LinkReport {
                received: phy::units::Dbm(r.f64("received")?),
                sensitivity: phy::units::Dbm(r.f64("sensitivity")?),
                margin: phy::units::Db(r.f64("margin")?),
                ber: r.f64("ber")?,
                rate: Gbps(r.f64("rate")?),
            };
            if self
                .circuits
                .insert(
                    id,
                    Circuit {
                        id,
                        path,
                        lambdas,
                        claimed_src,
                        claimed_dst,
                        bandwidth,
                        link,
                    },
                )
                .is_some()
            {
                return Err(format!("wafer restore: duplicate circuit {id}"));
            }
        }
        Ok(())
    }
}

/// Bitwise image of a link report, for exact (not epsilon) comparison in
/// the prebudgeted-establish contract check.
pub(crate) fn report_bits(r: &phy::link_budget::LinkReport) -> [u64; 5] {
    [
        r.received.0.to_bits(),
        r.sensitivity.0.to_bits(),
        r.margin.0.to_bits(),
        r.ber.to_bits(),
        r.rate.0.to_bits(),
    ]
}

/// The set of rx lanes a teardown should release: the *highest* `k` lanes
/// currently in use would be wrong if another circuit released first, so rx
/// lanes are modelled as interchangeable and we release the lowest `k` in
/// use. This is sound because rx claims are count-based (the receiver
/// demultiplexes whatever wavelengths arrive).
fn rx_release_set(tile: &Tile, k: usize) -> LambdaSet {
    let all = LambdaSet::first_n(tile.serdes.lanes());
    let free = tile.serdes.rx_available();
    let in_use = all.difference(free);
    // A live circuit holds at least k rx lanes; if bookkeeping ever
    // disagreed, releasing everything in use beats aborting the process.
    in_use.take_lowest(k).unwrap_or(in_use)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wafer() -> Wafer {
        Wafer::new(WaferConfig::default())
    }

    fn t(r: u8, c: u8) -> TileCoord {
        TileCoord::new(r, c)
    }

    #[test]
    fn fabrication_samples_every_boundary() {
        let w = wafer();
        // 4×8 grid: horizontal edges 4×7 = 28, vertical 3×8 = 24 → 52.
        assert_eq!(w.stitch_loss_db.len(), 52);
        assert_eq!(w.edge_index().len(), 52);
        for &l in &w.stitch_loss_db {
            assert!((0.0..3.0).contains(&l), "stitch loss {l} dB implausible");
        }
    }

    #[test]
    fn fabrication_is_deterministic_in_seed() {
        let a = Wafer::new(WaferConfig::default());
        let b = Wafer::new(WaferConfig::default());
        let e = EdgeId::between(t(0, 0), t(0, 1));
        assert_eq!(a.stitch_loss_db(e), b.stitch_loss_db(e));
        let c = Wafer::new(WaferConfig {
            fab_seed: 999,
            ..WaferConfig::default()
        });
        assert_ne!(a.stitch_loss_db(e), c.stitch_loss_db(e));
    }

    #[test]
    fn establish_reserves_and_reports() {
        let mut w = wafer();
        let rep = w
            .establish(CircuitRequest::new(t(0, 0), t(1, 2), 4))
            .expect("establish");
        assert_eq!(rep.setup, SimDuration::from_secs_f64(3.7e-6));
        assert!(rep.link.closes());
        let ckt = w.circuit(rep.id).unwrap();
        assert_eq!(ckt.bandwidth.0, 4.0 * 224.0);
        assert_eq!(ckt.path.hops(), 3);
        assert_eq!(w.tile(t(0, 0)).serdes.tx_free(), 12);
        assert_eq!(w.tile(t(1, 2)).serdes.rx_free(), 12);
        for e in ckt.path.edges() {
            assert_eq!(w.edge_used(e), 1);
        }
        assert!((w.aggregate_bandwidth().0 - 896.0).abs() < 1e-9);
    }

    #[test]
    fn teardown_releases_everything() {
        let mut w = wafer();
        let rep = w
            .establish(CircuitRequest::new(t(0, 0), t(3, 7), 16))
            .unwrap();
        let path = w.circuit(rep.id).unwrap().path.clone();
        w.teardown(rep.id).unwrap();
        assert_eq!(w.tile(t(0, 0)).serdes.tx_free(), 16);
        assert_eq!(w.tile(t(3, 7)).serdes.rx_free(), 16);
        for e in path.edges() {
            assert_eq!(w.edge_used(e), 0);
        }
        assert!(matches!(
            w.teardown(rep.id),
            Err(CircuitError::UnknownCircuit(_))
        ));
    }

    #[test]
    fn serdes_exhaustion_is_detected() {
        let mut w = wafer();
        // 16 lanes: four 4-lane circuits fit, a fifth does not.
        for i in 0..4 {
            w.establish(CircuitRequest::new(t(0, 0), t(1, (i + 1) as u8), 4))
                .unwrap();
        }
        let err = w
            .establish(CircuitRequest::new(t(0, 0), t(2, 2), 4))
            .unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InsufficientTxLanes { free: 0, .. }
        ));
    }

    #[test]
    fn rx_exhaustion_is_detected() {
        let mut w = wafer();
        w.establish(CircuitRequest::new(t(0, 0), t(1, 1), 16))
            .unwrap();
        let err = w
            .establish(CircuitRequest::new(t(2, 2), t(1, 1), 1))
            .unwrap_err();
        assert!(matches!(
            err,
            CircuitError::InsufficientRxLanes { free: 0, .. }
        ));
    }

    #[test]
    fn edge_capacity_is_enforced() {
        let mut w = Wafer::new(WaferConfig {
            waveguides_per_edge: 2,
            ..WaferConfig::default()
        });
        // Pin both XY and YX routes between distinct sources through the
        // single edge (0,0)-(0,1) using explicit paths.
        let p = |s: TileCoord, d: TileCoord| Path::from_tiles(vec![s, d]).unwrap();
        w.establish(CircuitRequest::new(t(0, 0), t(0, 1), 1).via(p(t(0, 0), t(0, 1))))
            .unwrap();
        w.establish(CircuitRequest::new(t(0, 1), t(0, 0), 1).via(p(t(0, 1), t(0, 0))))
            .unwrap();
        let err = w
            .establish(CircuitRequest::new(t(0, 0), t(0, 1), 2).via(p(t(0, 0), t(0, 1))))
            .unwrap_err();
        assert!(matches!(err, CircuitError::EdgeExhausted(_)));
    }

    #[test]
    fn default_route_falls_back_to_yx() {
        let mut w = Wafer::new(WaferConfig {
            waveguides_per_edge: 1,
            ..WaferConfig::default()
        });
        // Saturate the first XY edge out of (0,0).
        w.establish(CircuitRequest::new(t(0, 0), t(0, 1), 1))
            .unwrap();
        // Next circuit from (0,0) to (1,1): XY would reuse (0,0)-(0,1).
        let rep = w
            .establish(CircuitRequest::new(t(0, 0), t(1, 1), 1))
            .unwrap();
        let path = &w.circuit(rep.id).unwrap().path;
        assert_eq!(path.tiles()[1], t(1, 0), "took the YX route");
    }

    #[test]
    fn failed_tile_cannot_terminate_but_passes_through() {
        let mut w = wafer();
        w.fail_tile(t(1, 1));
        let err = w
            .establish(CircuitRequest::new(t(1, 1), t(0, 0), 1))
            .unwrap_err();
        assert_eq!(err, CircuitError::TileFailed(t(1, 1)));
        let err = w
            .establish(CircuitRequest::new(t(0, 0), t(1, 1), 1))
            .unwrap_err();
        assert_eq!(err, CircuitError::TileFailed(t(1, 1)));
        // Pass-through: (1,0) → (1,2) via the failed (1,1) succeeds.
        let via = Path::from_tiles(vec![t(1, 0), t(1, 1), t(1, 2)]).unwrap();
        assert!(w
            .establish(CircuitRequest::new(t(1, 0), t(1, 2), 1).via(via))
            .is_ok());
    }

    #[test]
    fn cross_wafer_segment_skips_serdes() {
        let mut w = wafer();
        let mut req = CircuitRequest::new(t(0, 0), t(0, 7), 4);
        req.claim_src_serdes = false;
        w.establish(req).unwrap();
        assert_eq!(w.tile(t(0, 0)).serdes.tx_free(), 16, "no tx lanes taken");
        assert_eq!(w.tile(t(0, 7)).serdes.rx_free(), 12);
    }

    #[test]
    fn longest_path_budget_closes() {
        let w = wafer();
        let link = w.link_budget(&Path::xy(t(0, 0), t(3, 7)));
        assert!(
            link.closes(),
            "corner-to-corner circuit must close: margin {}",
            link.margin
        );
    }

    #[test]
    fn loss_budget_itemization() {
        let w = wafer();
        let p = Path::xy(t(0, 0), t(1, 2)); // 3 hops, 1 turn, 2 intermediate
        let b = w.path_loss_budget(&p);
        assert_eq!(b.stitches(), 3);
        assert_eq!(b.crossings(), 2 + 1); // 2 through-tiles + 1 turn
        let expected_prop = 3.0 * 2.5 * 0.1;
        let prop: f64 = b
            .items()
            .iter()
            .filter_map(|e| match e {
                LossElement::Waveguide {
                    length_cm,
                    db_per_cm,
                } => Some(length_cm * db_per_cm),
                _ => None,
            })
            .sum();
        assert!((prop - expected_prop).abs() < 1e-12);
    }

    #[test]
    fn crosstalk_degrades_busy_buses() {
        let mut w = Wafer::new(WaferConfig {
            crosstalk_per_cochannel_db: 0.5, // exaggerated for the test
            ..WaferConfig::default()
        });
        let p = Path::from_tiles(vec![t(0, 0), t(0, 1)]).unwrap();
        let quiet = w.link_budget(&p).margin.0;
        // Load the same bus with unrelated circuits (distinct endpoints so
        // SerDes lanes suffice).
        for i in 0..8u8 {
            let via = Path::from_tiles(vec![t(0, 0), t(0, 1)]).unwrap();
            let mut req = CircuitRequest::new(t(0, 0), t(0, 1), 1).via(via);
            req.claim_src_serdes = i % 2 == 0; // vary to spread lane usage
            w.establish(req).unwrap();
        }
        let busy = w.link_budget(&p).margin.0;
        assert!(
            quiet - busy >= 8.0 * 0.5 - 1e-9,
            "8 co-channels at 0.5 dB each: {quiet} -> {busy}"
        );
    }

    #[test]
    fn bad_requests_rejected() {
        let mut w = wafer();
        assert!(matches!(
            w.establish(CircuitRequest::new(t(0, 0), t(0, 0), 1)),
            Err(CircuitError::SameEndpoints(_))
        ));
        assert!(matches!(
            w.establish(CircuitRequest::new(t(0, 0), t(9, 9), 1)),
            Err(CircuitError::OutOfBounds(_))
        ));
        assert!(matches!(
            w.establish(CircuitRequest::new(t(0, 0), t(0, 1), 0)),
            Err(CircuitError::BadLaneCount(0))
        ));
        assert!(matches!(
            w.establish(CircuitRequest::new(t(0, 0), t(0, 1), 17)),
            Err(CircuitError::BadLaneCount(17))
        ));
        let wrong = Path::xy(t(0, 0), t(1, 1));
        assert!(matches!(
            w.establish(CircuitRequest::new(t(0, 0), t(2, 2), 1).via(wrong)),
            Err(CircuitError::PathMismatch)
        ));
    }

    #[test]
    fn occupancy_epoch_tracks_every_mutation() {
        let mut w = wafer();
        assert_eq!(w.occupancy_epoch(), 0);
        let Ok(rep) = w.establish(CircuitRequest::new(t(0, 0), t(1, 1), 1)) else {
            panic!("establish failed");
        };
        assert_eq!(w.occupancy_epoch(), 1);
        // A failed establish commits nothing and must not advance the epoch.
        assert!(w
            .establish(CircuitRequest::new(t(0, 0), t(0, 0), 1))
            .is_err());
        assert_eq!(w.occupancy_epoch(), 1);
        w.fail_tile(t(2, 2));
        assert_eq!(w.occupancy_epoch(), 2);
        w.restore_tile(t(2, 2));
        assert_eq!(w.occupancy_epoch(), 3);
        assert!(w.teardown(rep.id).is_ok());
        assert_eq!(w.occupancy_epoch(), 4);
        // A failed teardown also leaves the epoch alone.
        assert!(w.teardown(rep.id).is_err());
        assert_eq!(w.occupancy_epoch(), 4);
    }

    #[test]
    fn circuits_at_finds_endpoints() {
        let mut w = wafer();
        let a = w
            .establish(CircuitRequest::new(t(0, 0), t(1, 1), 1))
            .unwrap();
        let b = w
            .establish(CircuitRequest::new(t(2, 2), t(0, 0), 1))
            .unwrap();
        w.establish(CircuitRequest::new(t(3, 3), t(2, 0), 1))
            .unwrap();
        let at = w.circuits_at(t(0, 0));
        assert_eq!(at, vec![a.id, b.id]);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut w = wafer();
        let a = w
            .establish(CircuitRequest::new(t(0, 0), t(1, 2), 4))
            .unwrap();
        let _b = w
            .establish(CircuitRequest::new(t(2, 2), t(0, 0), 2))
            .unwrap();
        w.teardown(a.id).unwrap();
        w.fail_tile(t(3, 3));
        let mut fiber_fed = CircuitRequest::new(t(0, 5), t(0, 7), 3);
        fiber_fed.claim_src_serdes = false;
        w.establish(fiber_fed).unwrap();

        let mut sw = desim::SnapWriter::new();
        w.write_snap(&mut sw);
        let text = sw.finish();

        let mut restored = wafer();
        let mut r = desim::SnapReader::new(&text);
        restored.read_snap(&mut r).expect("restore");
        r.done().expect("consumed fully");

        // The restored wafer must re-serialize to the identical bytes…
        let mut sw2 = desim::SnapWriter::new();
        restored.write_snap(&mut sw2);
        assert_eq!(sw2.finish(), text);
        // …and behave identically: next establish gets the same id, lanes,
        // and loads on both.
        let r1 = w
            .establish(CircuitRequest::new(t(1, 0), t(2, 1), 1))
            .unwrap();
        let r2 = restored
            .establish(CircuitRequest::new(t(1, 0), t(2, 1), 1))
            .unwrap();
        assert_eq!(r1.id, r2.id);
        assert_eq!(w.occupancy_epoch(), restored.occupancy_epoch());
        assert_eq!(
            w.tile(t(0, 0)).serdes.rx_free(),
            restored.tile(t(0, 0)).serdes.rx_free()
        );
        assert!(restored.tile(t(3, 3)).is_failed());
    }

    #[test]
    fn failed_establish_leaves_no_residue() {
        let mut w = wafer();
        let before_tx = w.tile(t(0, 0)).serdes.tx_free();
        // Fails at rx check (dst saturated) after tx/edges were checked.
        w.establish(CircuitRequest::new(t(2, 2), t(1, 1), 16))
            .unwrap();
        let _ = w
            .establish(CircuitRequest::new(t(0, 0), t(1, 1), 4))
            .unwrap_err();
        assert_eq!(w.tile(t(0, 0)).serdes.tx_free(), before_tx);
        let p = Path::xy(t(0, 0), t(1, 1));
        for e in p.edges() {
            // Only the first circuit's edges may be loaded.
            assert!(w.edge_used(e) <= 1);
        }
    }
}
