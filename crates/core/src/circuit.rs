//! Circuit types and errors.
//!
//! An optical circuit is a dedicated, contention-free light path between the
//! transceivers of two tiles: a set of WDM wavelengths launched by the
//! source tile, carried on waveguides reserved along a [`Path`], and
//! terminated at the destination tile's photodetectors. Circuits are the
//! unit the paper's opportunities are built from: bandwidth redirection
//! (§4.1) re-establishes circuits with more wavelengths in the active ring
//! dimension, and failure repair (§4.2) builds non-overlapping circuits
//! around a dead chip.

use crate::geom::{Path, TileCoord};
use phy::link_budget::LinkReport;
use phy::units::Gbps;
use phy::wdm::LambdaSet;
use std::fmt;

/// Handle to an established circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CircuitId(pub(crate) u64);

impl CircuitId {
    /// The raw handle value, for canonical snapshot serialization.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`raw`](Self::raw) output.
    ///
    /// Only meaningful against the wafer state the value was captured
    /// from; a fabricated id simply dangles (lookups return `None`).
    pub const fn from_raw(v: u64) -> Self {
        CircuitId(v)
    }
}

impl fmt::Display for CircuitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ckt#{}", self.0)
    }
}

/// A request to establish a circuit on a wafer.
#[derive(Debug, Clone)]
pub struct CircuitRequest {
    /// Source tile (its transmitter drives the circuit).
    pub src: TileCoord,
    /// Destination tile (its receiver terminates the circuit).
    pub dst: TileCoord,
    /// Number of WDM wavelengths (SerDes lanes) to carry; bandwidth is
    /// `lanes × 224 Gb/s`.
    pub lanes: usize,
    /// Explicit route; `None` selects dimension-ordered XY with YX fallback.
    pub path: Option<Path>,
    /// Claim transmit SerDes lanes at the source. `false` only for segments
    /// of a cross-wafer circuit that enter via fiber (no OE conversion).
    pub claim_src_serdes: bool,
    /// Claim receive SerDes lanes at the destination. `false` only for
    /// segments that exit via fiber.
    pub claim_dst_serdes: bool,
}

impl CircuitRequest {
    /// A standard chip-to-chip request with `lanes` wavelengths.
    pub fn new(src: TileCoord, dst: TileCoord, lanes: usize) -> Self {
        CircuitRequest {
            src,
            dst,
            lanes,
            path: None,
            claim_src_serdes: true,
            claim_dst_serdes: true,
        }
    }

    /// Use an explicit route instead of dimension-ordered default.
    pub fn via(mut self, path: Path) -> Self {
        self.path = Some(path);
        self
    }
}

/// An established circuit and its physical-layer report.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Handle.
    pub id: CircuitId,
    /// Route across the tile grid.
    pub path: Path,
    /// Wavelengths carried (as claimed at the source).
    pub lambdas: LambdaSet,
    /// Whether source/destination SerDes lanes were claimed (see
    /// [`CircuitRequest`]).
    pub claimed_src: bool,
    /// See [`CircuitRequest::claim_dst_serdes`].
    pub claimed_dst: bool,
    /// Data bandwidth carried.
    pub bandwidth: Gbps,
    /// Link-budget evaluation at establishment time.
    pub link: LinkReport,
}

/// Why a circuit could not be established.
///
/// The enum itself lives in the workspace fault taxonomy as
/// [`crate::fault::CircuitFault`]; this alias keeps the long-standing name
/// at the existing match sites.
pub use crate::fault::CircuitFault as CircuitError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::EdgeId;

    #[test]
    fn request_builder_defaults() {
        let r = CircuitRequest::new(TileCoord::new(0, 0), TileCoord::new(1, 1), 4);
        assert!(r.claim_src_serdes && r.claim_dst_serdes);
        assert!(r.path.is_none());
        let p = Path::xy(r.src, r.dst);
        let r = r.via(p.clone());
        assert_eq!(r.path, Some(p));
    }

    #[test]
    fn errors_render() {
        let e = CircuitError::BudgetFailed { margin_db: -2.5 };
        assert!(e.to_string().contains("-2.50"));
        let e = CircuitError::EdgeExhausted(EdgeId::between(
            TileCoord::new(0, 0),
            TileCoord::new(0, 1),
        ));
        assert!(e.to_string().contains("(0,0)-(0,1)"));
    }
}
