//! Wafer-grid geometry: tile coordinates, directions, edges, and circuit
//! paths.
//!
//! LIGHTPATH tiles form a 2-D grid on the wafer (Fig 2c); waveguide buses
//! run along the grid's edges. A circuit's [`Path`] is a sequence of
//! adjacent tiles from the source to the destination tile.

use std::fmt;

/// Position of a tile on the wafer grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Row index (0-based, increases southward).
    pub row: u8,
    /// Column index (0-based, increases eastward).
    pub col: u8,
}

impl TileCoord {
    /// Shorthand constructor.
    pub const fn new(row: u8, col: u8) -> Self {
        TileCoord { row, col }
    }

    /// The neighbouring coordinate in direction `d`, if it stays inside an
    /// `rows`×`cols` grid.
    pub fn step(self, d: Dir, rows: u8, cols: u8) -> Option<TileCoord> {
        let (r, c) = (self.row as i16, self.col as i16);
        let (nr, nc) = match d {
            Dir::North => (r - 1, c),
            Dir::South => (r + 1, c),
            Dir::East => (r, c + 1),
            Dir::West => (r, c - 1),
        };
        if nr < 0 || nc < 0 || nr >= rows as i16 || nc >= cols as i16 {
            None
        } else {
            Some(TileCoord::new(nr as u8, nc as u8))
        }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: TileCoord) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }

    /// Direction of travel to an adjacent coordinate.
    ///
    /// Panics if `to` is not a 4-neighbour of `self`.
    pub fn dir_to(self, to: TileCoord) -> Dir {
        match (
            to.row as i16 - self.row as i16,
            to.col as i16 - self.col as i16,
        ) {
            (-1, 0) => Dir::North,
            (1, 0) => Dir::South,
            (0, 1) => Dir::East,
            (0, -1) => Dir::West,
            _ => panic!("{to} is not adjacent to {self}"),
        }
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A cardinal direction on the wafer grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward row 0.
    North,
    /// Toward increasing columns.
    East,
    /// Toward increasing rows.
    South,
    /// Toward column 0.
    West,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
        }
    }

    /// True when `self` and `other` lie on perpendicular axes.
    pub fn is_turn(self, other: Dir) -> bool {
        matches!(
            (self, other),
            (Dir::North | Dir::South, Dir::East | Dir::West)
                | (Dir::East | Dir::West, Dir::North | Dir::South)
        )
    }
}

/// An undirected waveguide-bus edge between two adjacent tiles, stored in
/// normalized (smaller endpoint first) order so each physical bus has one id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(TileCoord, TileCoord);

impl EdgeId {
    /// Edge between two adjacent tiles (order-insensitive).
    ///
    /// Panics if the tiles are not 4-adjacent.
    pub fn between(a: TileCoord, b: TileCoord) -> Self {
        assert_eq!(a.manhattan(b), 1, "edge requires adjacent tiles: {a} {b}");
        if a <= b {
            EdgeId(a, b)
        } else {
            EdgeId(b, a)
        }
    }

    /// The two endpoints (normalized order).
    pub fn endpoints(self) -> (TileCoord, TileCoord) {
        (self.0, self.1)
    }

    /// True for a horizontal (east-west) bus.
    pub fn is_horizontal(self) -> bool {
        self.0.row == self.1.row
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.0, self.1)
    }
}

/// A simple path of adjacent tiles on the wafer grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    tiles: Vec<TileCoord>,
}

impl Path {
    /// Build a path from an explicit tile sequence.
    ///
    /// Validates: at least two tiles, consecutive tiles adjacent, no tile
    /// visited twice (simple path). Returns `None` on violation.
    pub fn from_tiles(tiles: Vec<TileCoord>) -> Option<Path> {
        if tiles.len() < 2 {
            return None;
        }
        for w in tiles.windows(2) {
            if w[0].manhattan(w[1]) != 1 {
                return None;
            }
        }
        let mut seen = tiles.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(Path { tiles })
    }

    /// Dimension-ordered (X-then-Y) route: travel along the row (columns
    /// first), then along the column. The default route shape on LIGHTPATH's
    /// bus grid.
    ///
    /// Panics if `src == dst`.
    pub fn xy(src: TileCoord, dst: TileCoord) -> Path {
        assert_ne!(src, dst, "path endpoints must differ");
        let mut tiles = vec![src];
        let mut cur = src;
        while cur.col != dst.col {
            cur.col = if dst.col > cur.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            tiles.push(cur);
        }
        while cur.row != dst.row {
            cur.row = if dst.row > cur.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            tiles.push(cur);
        }
        Path { tiles }
    }

    /// Dimension-ordered (Y-then-X) route: rows first, then columns. The
    /// alternate route shape, used to dodge congested buses.
    pub fn yx(src: TileCoord, dst: TileCoord) -> Path {
        assert_ne!(src, dst, "path endpoints must differ");
        let mut tiles = vec![src];
        let mut cur = src;
        while cur.row != dst.row {
            cur.row = if dst.row > cur.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            tiles.push(cur);
        }
        while cur.col != dst.col {
            cur.col = if dst.col > cur.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            tiles.push(cur);
        }
        Path { tiles }
    }

    /// Source tile.
    pub fn src(&self) -> TileCoord {
        self.tiles[0]
    }

    /// Destination tile.
    pub fn dst(&self) -> TileCoord {
        *self.tiles.last().expect("paths have >= 2 tiles")
    }

    /// Tiles in visit order.
    pub fn tiles(&self) -> &[TileCoord] {
        &self.tiles
    }

    /// Number of edges traversed.
    pub fn hops(&self) -> usize {
        self.tiles.len() - 1
    }

    /// Tiles strictly between the endpoints.
    pub fn intermediate_tiles(&self) -> &[TileCoord] {
        &self.tiles[1..self.tiles.len() - 1]
    }

    /// The edges traversed, in order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.tiles.windows(2).map(|w| EdgeId::between(w[0], w[1]))
    }

    /// Number of 90° turns along the path.
    pub fn turns(&self) -> usize {
        let dirs: Vec<Dir> = self.tiles.windows(2).map(|w| w[0].dir_to(w[1])).collect();
        dirs.windows(2).filter(|d| d[0].is_turn(d[1])).count()
    }

    /// True when this path shares no edge with `other` (the circuits can
    /// coexist on dedicated waveguides trivially; sharing an edge is also
    /// fine while bus capacity remains, this is the strict test).
    pub fn edge_disjoint(&self, other: &Path) -> bool {
        let mine: Vec<EdgeId> = self.edges().collect();
        !other.edges().any(|e| mine.contains(&e))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tiles.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: u8 = 4;
    const C: u8 = 8;

    #[test]
    fn step_respects_bounds() {
        let origin = TileCoord::new(0, 0);
        assert_eq!(origin.step(Dir::North, R, C), None);
        assert_eq!(origin.step(Dir::West, R, C), None);
        assert_eq!(origin.step(Dir::South, R, C), Some(TileCoord::new(1, 0)));
        assert_eq!(origin.step(Dir::East, R, C), Some(TileCoord::new(0, 1)));
        let corner = TileCoord::new(R - 1, C - 1);
        assert_eq!(corner.step(Dir::South, R, C), None);
        assert_eq!(corner.step(Dir::East, R, C), None);
    }

    #[test]
    fn dir_to_and_opposite() {
        let a = TileCoord::new(1, 1);
        assert_eq!(a.dir_to(TileCoord::new(0, 1)), Dir::North);
        assert_eq!(a.dir_to(TileCoord::new(1, 2)), Dir::East);
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert!(!d.is_turn(d));
            assert!(!d.is_turn(d.opposite()));
        }
        assert!(Dir::North.is_turn(Dir::East));
    }

    #[test]
    fn edge_id_is_order_insensitive() {
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(0, 1);
        assert_eq!(EdgeId::between(a, b), EdgeId::between(b, a));
        assert!(EdgeId::between(a, b).is_horizontal());
        let c = TileCoord::new(1, 0);
        assert!(!EdgeId::between(a, c).is_horizontal());
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn edge_between_distant_tiles_panics() {
        EdgeId::between(TileCoord::new(0, 0), TileCoord::new(0, 2));
    }

    #[test]
    fn xy_route_shape() {
        let p = Path::xy(TileCoord::new(0, 0), TileCoord::new(2, 3));
        assert_eq!(p.hops(), 5);
        assert_eq!(p.turns(), 1);
        assert_eq!(p.src(), TileCoord::new(0, 0));
        assert_eq!(p.dst(), TileCoord::new(2, 3));
        // X first: second tile moves in the column direction.
        assert_eq!(p.tiles()[1], TileCoord::new(0, 1));
    }

    #[test]
    fn yx_route_shape() {
        let p = Path::yx(TileCoord::new(0, 0), TileCoord::new(2, 3));
        assert_eq!(p.hops(), 5);
        assert_eq!(p.tiles()[1], TileCoord::new(1, 0));
        assert_eq!(p.turns(), 1);
    }

    #[test]
    fn straight_routes_have_no_turns() {
        let p = Path::xy(TileCoord::new(1, 0), TileCoord::new(1, 5));
        assert_eq!(p.turns(), 0);
        assert_eq!(p.hops(), 5);
        assert_eq!(p.intermediate_tiles().len(), 4);
    }

    #[test]
    fn xy_and_yx_are_edge_disjoint_off_axis() {
        let (s, d) = (TileCoord::new(0, 0), TileCoord::new(3, 3));
        let a = Path::xy(s, d);
        let b = Path::yx(s, d);
        assert!(a.edge_disjoint(&b));
    }

    #[test]
    fn from_tiles_validates() {
        let ok = Path::from_tiles(vec![
            TileCoord::new(0, 0),
            TileCoord::new(0, 1),
            TileCoord::new(1, 1),
        ]);
        assert!(ok.is_some());
        assert_eq!(ok.unwrap().turns(), 1);
        // Non-adjacent.
        assert!(Path::from_tiles(vec![TileCoord::new(0, 0), TileCoord::new(2, 0)]).is_none());
        // Too short.
        assert!(Path::from_tiles(vec![TileCoord::new(0, 0)]).is_none());
        // Revisits a tile.
        assert!(Path::from_tiles(vec![
            TileCoord::new(0, 0),
            TileCoord::new(0, 1),
            TileCoord::new(0, 0),
        ])
        .is_none());
    }

    #[test]
    fn edges_match_hops() {
        let p = Path::xy(TileCoord::new(0, 0), TileCoord::new(1, 2));
        let edges: Vec<EdgeId> = p.edges().collect();
        assert_eq!(edges.len(), p.hops());
        assert_eq!(
            edges[0],
            EdgeId::between(TileCoord::new(0, 0), TileCoord::new(0, 1))
        );
    }
}
