//! Wafer-grid geometry: tile coordinates, directions, edges, and circuit
//! paths.
//!
//! LIGHTPATH tiles form a 2-D grid on the wafer (Fig 2c); waveguide buses
//! run along the grid's edges. A circuit's [`Path`] is a sequence of
//! adjacent tiles from the source to the destination tile.

use std::fmt;

/// Position of a tile on the wafer grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Row index (0-based, increases southward).
    pub row: u8,
    /// Column index (0-based, increases eastward).
    pub col: u8,
}

impl TileCoord {
    /// Shorthand constructor.
    pub const fn new(row: u8, col: u8) -> Self {
        TileCoord { row, col }
    }

    /// The neighbouring coordinate in direction `d`, if it stays inside an
    /// `rows`×`cols` grid.
    pub fn step(self, d: Dir, rows: u8, cols: u8) -> Option<TileCoord> {
        let (r, c) = (self.row as i16, self.col as i16);
        let (nr, nc) = match d {
            Dir::North => (r - 1, c),
            Dir::South => (r + 1, c),
            Dir::East => (r, c + 1),
            Dir::West => (r, c - 1),
        };
        if nr < 0 || nc < 0 || nr >= rows as i16 || nc >= cols as i16 {
            None
        } else {
            Some(TileCoord::new(nr as u8, nc as u8))
        }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: TileCoord) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }

    /// This coordinate shifted by `(dr, dc)`, or `None` when the result
    /// leaves the `u8` coordinate space. Relocatable plan templates store
    /// their footprint at a canonical origin and translate with this.
    pub fn offset(self, dr: i16, dc: i16) -> Option<TileCoord> {
        let nr = self.row as i16 + dr;
        let nc = self.col as i16 + dc;
        if (0..=u8::MAX as i16).contains(&nr) && (0..=u8::MAX as i16).contains(&nc) {
            Some(TileCoord::new(nr as u8, nc as u8))
        } else {
            None
        }
    }

    /// Direction of travel to an adjacent coordinate.
    ///
    /// Panics if `to` is not a 4-neighbour of `self`.
    pub fn dir_to(self, to: TileCoord) -> Dir {
        match (
            to.row as i16 - self.row as i16,
            to.col as i16 - self.col as i16,
        ) {
            (-1, 0) => Dir::North,
            (1, 0) => Dir::South,
            (0, 1) => Dir::East,
            (0, -1) => Dir::West,
            _ => panic!("{to} is not adjacent to {self}"),
        }
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A cardinal direction on the wafer grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward row 0.
    North,
    /// Toward increasing columns.
    East,
    /// Toward increasing rows.
    South,
    /// Toward column 0.
    West,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
        }
    }

    /// True when `self` and `other` lie on perpendicular axes.
    pub fn is_turn(self, other: Dir) -> bool {
        matches!(
            (self, other),
            (Dir::North | Dir::South, Dir::East | Dir::West)
                | (Dir::East | Dir::West, Dir::North | Dir::South)
        )
    }
}

/// An undirected waveguide-bus edge between two adjacent tiles, stored in
/// normalized (smaller endpoint first) order so each physical bus has one id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(TileCoord, TileCoord);

impl EdgeId {
    /// Edge between two adjacent tiles (order-insensitive).
    ///
    /// Panics if the tiles are not 4-adjacent.
    pub fn between(a: TileCoord, b: TileCoord) -> Self {
        assert_eq!(a.manhattan(b), 1, "edge requires adjacent tiles: {a} {b}");
        if a <= b {
            EdgeId(a, b)
        } else {
            EdgeId(b, a)
        }
    }

    /// The two endpoints (normalized order).
    pub fn endpoints(self) -> (TileCoord, TileCoord) {
        (self.0, self.1)
    }

    /// True for a horizontal (east-west) bus.
    pub fn is_horizontal(self) -> bool {
        self.0.row == self.1.row
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.0, self.1)
    }
}

/// Dense, stable `EdgeId -> usize` index for every bus of a `rows`×`cols`
/// wafer grid.
///
/// Horizontal edges come first in row-major order, then vertical edges in
/// row-major order:
///
/// * `(r,c)-(r,c+1)` → `r·(cols-1) + c`
/// * `(r,c)-(r+1,c)` → `rows·(cols-1) + r·cols + c`
///
/// The index is a pure function of the grid shape, so every structure keyed
/// by it (`Vec` occupancy in [`Wafer`](crate::Wafer), routing scratch
/// arrays, forbidden-edge bitsets) agrees on edge positions without any
/// shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeIndex {
    rows: u8,
    cols: u8,
}

impl EdgeIndex {
    /// Index for a `rows`×`cols` grid.
    pub const fn new(rows: u8, cols: u8) -> EdgeIndex {
        EdgeIndex { rows, cols }
    }

    /// Grid rows.
    pub const fn rows(self) -> u8 {
        self.rows
    }

    /// Grid columns.
    pub const fn cols(self) -> u8 {
        self.cols
    }

    /// Number of horizontal (east-west) buses; vertical indices start here.
    pub const fn horizontal_count(self) -> usize {
        let (r, c) = (self.rows as usize, self.cols as usize);
        r * (c.saturating_sub(1))
    }

    /// Total buses on the grid.
    pub const fn len(self) -> usize {
        let (r, c) = (self.rows as usize, self.cols as usize);
        r * (c.saturating_sub(1)) + r.saturating_sub(1) * c
    }

    /// True for degenerate grids with no buses at all.
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Number of tiles on the grid.
    pub const fn tiles(self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Dense position of a tile (row-major).
    pub const fn tile_index(self, t: TileCoord) -> usize {
        t.row as usize * self.cols as usize + t.col as usize
    }

    /// Dense position of `e`, or `None` when `e` is not a bus of this grid.
    pub fn try_index(self, e: EdgeId) -> Option<usize> {
        // Endpoints are normalized smaller-first, so the second one has the
        // larger row (vertical) or column (horizontal); bounds-checking it
        // covers both.
        let (a, b) = e.endpoints();
        if b.row >= self.rows || b.col >= self.cols {
            return None;
        }
        let (r, c) = (a.row as usize, a.col as usize);
        Some(if e.is_horizontal() {
            r * (self.cols as usize - 1) + c
        } else {
            self.horizontal_count() + r * self.cols as usize + c
        })
    }

    /// Dense position of `e`.
    ///
    /// Panics when `e` is not a bus of this grid.
    pub fn index(self, e: EdgeId) -> usize {
        match self.try_index(e) {
            Some(i) => i,
            None => panic!("edge {e} is not on a {}x{} grid", self.rows, self.cols),
        }
    }

    /// Dense position of the bus leaving tile `t` in direction `d`,
    /// computed arithmetically — the hot-path form of
    /// [`index`](Self::index) that skips `EdgeId` construction entirely.
    ///
    /// The caller must have verified the step stays on the grid (e.g. via
    /// [`TileCoord::step`]); out-of-grid steps yield a meaningless index.
    #[inline]
    pub fn step_index(self, t: TileCoord, d: Dir) -> usize {
        let (r, c) = (t.row as usize, t.col as usize);
        let cols = self.cols as usize;
        match d {
            Dir::East => r * (cols - 1) + c,
            Dir::West => r * (cols - 1) + c - 1,
            Dir::South => self.horizontal_count() + r * cols + c,
            Dir::North => self.horizontal_count() + (r - 1) * cols + c,
        }
    }

    /// The edge at dense position `i` (inverse of [`index`](Self::index)).
    ///
    /// Panics when `i >= len()`.
    pub fn edge_at(self, i: usize) -> EdgeId {
        let h = self.horizontal_count();
        let cols = self.cols as usize;
        if i < h {
            let (r, c) = ((i / (cols - 1)) as u8, (i % (cols - 1)) as u8);
            EdgeId::between(TileCoord::new(r, c), TileCoord::new(r, c + 1))
        } else {
            let v = i - h;
            assert!(
                v < (self.rows as usize - 1) * cols,
                "edge index {i} out of range for a {}x{} grid",
                self.rows,
                self.cols
            );
            let (r, c) = ((v / cols) as u8, (v % cols) as u8);
            EdgeId::between(TileCoord::new(r, c), TileCoord::new(r + 1, c))
        }
    }
}

/// A fixed-size set of dense edge indices, stored as a bitset.
///
/// This is the zero-allocation form of `HashSet<EdgeId>` for hot routing
/// loops: membership is one shift-and-mask, clearing is a `memset`, and the
/// whole 4×8 grid (52 buses) fits in one cache line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeSet {
    words: Vec<u64>,
}

impl EdgeSet {
    /// An empty set sized for `len` edges.
    pub fn new(len: usize) -> EdgeSet {
        EdgeSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Re-size for `len` edges and clear every bit.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Clear every bit, keeping the size.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Insert edge index `i`.
    ///
    /// Panics when `i` is beyond the size given at construction.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// True when edge index `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when the two sets share at least one edge — one AND per word,
    /// the collision check a plan stamp runs instead of a route search.
    pub fn intersects(&self, other: &EdgeSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// OR every bit of `other` into this set. Both sets must be sized for
    /// the same grid.
    pub fn union_with(&mut self, other: &EdgeSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (w, &o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }
}

/// A simple path of adjacent tiles on the wafer grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    tiles: Vec<TileCoord>,
}

impl Path {
    /// Build a path from an explicit tile sequence.
    ///
    /// Validates: at least two tiles, consecutive tiles adjacent, no tile
    /// visited twice (simple path). Returns `None` on violation.
    pub fn from_tiles(tiles: Vec<TileCoord>) -> Option<Path> {
        if tiles.len() < 2 {
            return None;
        }
        for w in tiles.windows(2) {
            if w[0].manhattan(w[1]) != 1 {
                return None;
            }
        }
        let mut seen = tiles.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(Path { tiles })
    }

    /// Dimension-ordered (X-then-Y) route: travel along the row (columns
    /// first), then along the column. The default route shape on LIGHTPATH's
    /// bus grid.
    ///
    /// Panics if `src == dst`.
    pub fn xy(src: TileCoord, dst: TileCoord) -> Path {
        assert_ne!(src, dst, "path endpoints must differ");
        let mut tiles = vec![src];
        let mut cur = src;
        while cur.col != dst.col {
            cur.col = if dst.col > cur.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            tiles.push(cur);
        }
        while cur.row != dst.row {
            cur.row = if dst.row > cur.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            tiles.push(cur);
        }
        Path { tiles }
    }

    /// Dimension-ordered (Y-then-X) route: rows first, then columns. The
    /// alternate route shape, used to dodge congested buses.
    pub fn yx(src: TileCoord, dst: TileCoord) -> Path {
        assert_ne!(src, dst, "path endpoints must differ");
        let mut tiles = vec![src];
        let mut cur = src;
        while cur.row != dst.row {
            cur.row = if dst.row > cur.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            tiles.push(cur);
        }
        while cur.col != dst.col {
            cur.col = if dst.col > cur.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            tiles.push(cur);
        }
        Path { tiles }
    }

    /// Source tile.
    pub fn src(&self) -> TileCoord {
        self.tiles[0]
    }

    /// Destination tile.
    pub fn dst(&self) -> TileCoord {
        *self.tiles.last().expect("paths have >= 2 tiles")
    }

    /// Tiles in visit order.
    pub fn tiles(&self) -> &[TileCoord] {
        &self.tiles
    }

    /// Number of edges traversed.
    pub fn hops(&self) -> usize {
        self.tiles.len() - 1
    }

    /// Tiles strictly between the endpoints.
    pub fn intermediate_tiles(&self) -> &[TileCoord] {
        &self.tiles[1..self.tiles.len() - 1]
    }

    /// The edges traversed, in order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.tiles.windows(2).map(|w| EdgeId::between(w[0], w[1]))
    }

    /// Number of 90° turns along the path.
    pub fn turns(&self) -> usize {
        let dirs: Vec<Dir> = self.tiles.windows(2).map(|w| w[0].dir_to(w[1])).collect();
        dirs.windows(2).filter(|d| d[0].is_turn(d[1])).count()
    }

    /// True when this path shares no edge with `other` (the circuits can
    /// coexist on dedicated waveguides trivially; sharing an edge is also
    /// fine while bus capacity remains, this is the strict test).
    pub fn edge_disjoint(&self, other: &Path) -> bool {
        let mine: Vec<EdgeId> = self.edges().collect();
        !other.edges().any(|e| mine.contains(&e))
    }

    /// The path rigidly shifted by `(dr, dc)`, or `None` when any tile
    /// would leave the `u8` coordinate space. Adjacency and simplicity are
    /// translation-invariant, so the result needs no re-validation.
    pub fn translated(&self, dr: i16, dc: i16) -> Option<Path> {
        let mut tiles = Vec::with_capacity(self.tiles.len());
        for t in &self.tiles {
            tiles.push(t.offset(dr, dc)?);
        }
        Some(Path { tiles })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tiles.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: u8 = 4;
    const C: u8 = 8;

    #[test]
    fn step_respects_bounds() {
        let origin = TileCoord::new(0, 0);
        assert_eq!(origin.step(Dir::North, R, C), None);
        assert_eq!(origin.step(Dir::West, R, C), None);
        assert_eq!(origin.step(Dir::South, R, C), Some(TileCoord::new(1, 0)));
        assert_eq!(origin.step(Dir::East, R, C), Some(TileCoord::new(0, 1)));
        let corner = TileCoord::new(R - 1, C - 1);
        assert_eq!(corner.step(Dir::South, R, C), None);
        assert_eq!(corner.step(Dir::East, R, C), None);
    }

    #[test]
    fn dir_to_and_opposite() {
        let a = TileCoord::new(1, 1);
        assert_eq!(a.dir_to(TileCoord::new(0, 1)), Dir::North);
        assert_eq!(a.dir_to(TileCoord::new(1, 2)), Dir::East);
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert!(!d.is_turn(d));
            assert!(!d.is_turn(d.opposite()));
        }
        assert!(Dir::North.is_turn(Dir::East));
    }

    #[test]
    fn edge_id_is_order_insensitive() {
        let a = TileCoord::new(0, 0);
        let b = TileCoord::new(0, 1);
        assert_eq!(EdgeId::between(a, b), EdgeId::between(b, a));
        assert!(EdgeId::between(a, b).is_horizontal());
        let c = TileCoord::new(1, 0);
        assert!(!EdgeId::between(a, c).is_horizontal());
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn edge_between_distant_tiles_panics() {
        EdgeId::between(TileCoord::new(0, 0), TileCoord::new(0, 2));
    }

    #[test]
    fn xy_route_shape() {
        let p = Path::xy(TileCoord::new(0, 0), TileCoord::new(2, 3));
        assert_eq!(p.hops(), 5);
        assert_eq!(p.turns(), 1);
        assert_eq!(p.src(), TileCoord::new(0, 0));
        assert_eq!(p.dst(), TileCoord::new(2, 3));
        // X first: second tile moves in the column direction.
        assert_eq!(p.tiles()[1], TileCoord::new(0, 1));
    }

    #[test]
    fn yx_route_shape() {
        let p = Path::yx(TileCoord::new(0, 0), TileCoord::new(2, 3));
        assert_eq!(p.hops(), 5);
        assert_eq!(p.tiles()[1], TileCoord::new(1, 0));
        assert_eq!(p.turns(), 1);
    }

    #[test]
    fn straight_routes_have_no_turns() {
        let p = Path::xy(TileCoord::new(1, 0), TileCoord::new(1, 5));
        assert_eq!(p.turns(), 0);
        assert_eq!(p.hops(), 5);
        assert_eq!(p.intermediate_tiles().len(), 4);
    }

    #[test]
    fn xy_and_yx_are_edge_disjoint_off_axis() {
        let (s, d) = (TileCoord::new(0, 0), TileCoord::new(3, 3));
        let a = Path::xy(s, d);
        let b = Path::yx(s, d);
        assert!(a.edge_disjoint(&b));
    }

    #[test]
    fn from_tiles_validates() {
        let ok = Path::from_tiles(vec![
            TileCoord::new(0, 0),
            TileCoord::new(0, 1),
            TileCoord::new(1, 1),
        ]);
        assert!(ok.is_some());
        assert_eq!(ok.unwrap().turns(), 1);
        // Non-adjacent.
        assert!(Path::from_tiles(vec![TileCoord::new(0, 0), TileCoord::new(2, 0)]).is_none());
        // Too short.
        assert!(Path::from_tiles(vec![TileCoord::new(0, 0)]).is_none());
        // Revisits a tile.
        assert!(Path::from_tiles(vec![
            TileCoord::new(0, 0),
            TileCoord::new(0, 1),
            TileCoord::new(0, 0),
        ])
        .is_none());
    }

    #[test]
    fn edge_index_is_a_bijection() {
        let ix = EdgeIndex::new(R, C);
        // 4×8: 4·7 horizontal + 3·8 vertical = 52 buses.
        assert_eq!(ix.len(), 52);
        assert_eq!(ix.horizontal_count(), 28);
        let mut seen = vec![false; ix.len()];
        for r in 0..R {
            for c in 0..C {
                let t = TileCoord::new(r, c);
                for d in [Dir::East, Dir::South] {
                    if let Some(n) = t.step(d, R, C) {
                        let e = EdgeId::between(t, n);
                        let i = ix.index(e);
                        assert!(!seen[i], "index {i} assigned twice");
                        seen[i] = true;
                        assert_eq!(ix.edge_at(i), e, "edge_at inverts index");
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every index assigned");
    }

    #[test]
    fn step_index_agrees_with_index() {
        let ix = EdgeIndex::new(R, C);
        for r in 0..R {
            for c in 0..C {
                let t = TileCoord::new(r, c);
                for d in Dir::ALL {
                    if let Some(n) = t.step(d, R, C) {
                        assert_eq!(
                            ix.step_index(t, d),
                            ix.index(EdgeId::between(t, n)),
                            "step_index mismatch at {t} {d:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn edge_index_rejects_foreign_edges() {
        let ix = EdgeIndex::new(2, 4);
        let inside = EdgeId::between(TileCoord::new(0, 0), TileCoord::new(0, 1));
        assert!(ix.try_index(inside).is_some());
        // Edges of a larger grid fall outside this one.
        let below = EdgeId::between(TileCoord::new(2, 0), TileCoord::new(3, 0));
        let right = EdgeId::between(TileCoord::new(0, 4), TileCoord::new(0, 5));
        assert_eq!(ix.try_index(below), None);
        assert_eq!(ix.try_index(right), None);
    }

    #[test]
    #[should_panic(expected = "not on a")]
    fn edge_index_panics_on_foreign_edge() {
        EdgeIndex::new(2, 2).index(EdgeId::between(TileCoord::new(5, 5), TileCoord::new(5, 6)));
    }

    #[test]
    fn edge_set_membership() {
        let ix = EdgeIndex::new(R, C);
        let mut s = EdgeSet::new(ix.len());
        assert!(s.is_empty());
        s.insert(0);
        s.insert(51);
        assert!(s.contains(0) && s.contains(51) && !s.contains(1));
        s.clear();
        assert!(s.is_empty());
        s.reset(4);
        s.insert(3);
        assert!(s.contains(3));
    }

    #[test]
    fn edges_match_hops() {
        let p = Path::xy(TileCoord::new(0, 0), TileCoord::new(1, 2));
        let edges: Vec<EdgeId> = p.edges().collect();
        assert_eq!(edges.len(), p.hops());
        assert_eq!(
            edges[0],
            EdgeId::between(TileCoord::new(0, 0), TileCoord::new(0, 1))
        );
    }

    #[test]
    fn edge_set_intersection_and_union() {
        let mut a = EdgeSet::new(130);
        let mut b = EdgeSet::new(130);
        assert!(!a.intersects(&b), "empty sets are disjoint");
        a.insert(0);
        a.insert(129);
        b.insert(64);
        assert!(!a.intersects(&b));
        b.insert(129);
        assert!(a.intersects(&b), "shared bit in the last word detected");
        assert!(b.intersects(&a), "intersection is symmetric");
        a.union_with(&b);
        for i in [0, 64, 129] {
            assert!(a.contains(i), "union must carry bit {i}");
        }
        assert!(!a.contains(1));
    }

    #[test]
    fn tile_offset_translates_and_bounds_checks() {
        let t = TileCoord::new(2, 3);
        assert_eq!(t.offset(1, -2), Some(TileCoord::new(3, 1)));
        assert_eq!(t.offset(0, 0), Some(t));
        assert_eq!(t.offset(-3, 0), None, "negative row leaves u8 space");
        assert_eq!(TileCoord::new(255, 0).offset(1, 0), None, "row overflow");
        assert_eq!(TileCoord::new(0, 255).offset(0, 1), None, "col overflow");
    }

    #[test]
    fn path_translation_is_rigid_and_bounds_checked() {
        let p = Path::xy(TileCoord::new(1, 1), TileCoord::new(2, 3));
        let q = p.translated(1, 2).expect("in-bounds translation");
        assert_eq!(q.src(), TileCoord::new(2, 3));
        assert_eq!(q.dst(), TileCoord::new(3, 5));
        assert_eq!(q.hops(), p.hops(), "rigid translation preserves shape");
        // Round trip restores the original path byte for byte.
        assert_eq!(q.translated(-1, -2), Some(p.clone()));
        assert_eq!(p.translated(-2, 0), None, "any out-of-range tile refuses");
    }
}
