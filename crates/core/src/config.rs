//! Wafer configuration and the loss model constants tying geometry to the
//! physical layer.

use phy::mzi::MziParams;
use phy::stitch::StitchModel;
use phy::wdm::WdmGrid;

/// Static description of one LIGHTPATH wafer.
#[derive(Debug, Clone)]
pub struct WaferConfig {
    /// Grid rows. The commercial part is 32 tiles; default 4×8.
    pub rows: u8,
    /// Grid columns.
    pub cols: u8,
    /// Center-to-center tile pitch, centimeters. The prototype wafer is
    /// 200 mm × 200 mm (Fig 1); 32 tiles on a 4×8 grid gives a pitch of a
    /// few centimeters — default 2.5 cm.
    pub tile_pitch_cm: f64,
    /// Waveguide-bus capacity per inter-tile edge. The paper reports over
    /// 10,000 waveguides per tile at a 3 µm pitch (Fig 4).
    pub waveguides_per_edge: u32,
    /// Fiber attach points per wafer-edge tile, for inter-wafer links.
    pub fibers_per_edge_tile: u32,
    /// WDM channel plan of every tile (16 λ × 224 Gb/s by default).
    pub wdm: WdmGrid,
    /// MZI switch parameters (τ calibrated to 3.7 µs reconfiguration).
    pub mzi: MziParams,
    /// Reticle stitch loss model for inter-tile boundaries.
    pub stitch: StitchModel,
    /// Waveguide propagation loss, dB/cm. LIGHTPATH's hybrid CMOS photonic
    /// process uses low-loss guides; 0.1 dB/cm keeps cross-wafer budgets
    /// closing, consistent with the paper routing across the full wafer.
    pub propagation_loss_db_per_cm: f64,
    /// Extra waveguide crossings incurred per intermediate tile traversed
    /// (a circuit passing straight through a tile crosses its perpendicular
    /// bus; Fig 2b marks these crossings).
    pub crossings_per_through_tile: u32,
    /// Extra crossings per 90° turn (entering the perpendicular bus plane).
    pub crossings_per_turn: u32,
    /// Crosstalk penalty per co-propagating circuit on a shared bus, dB.
    /// At the 3 µm waveguide pitch the coupling is weak; the penalty only
    /// matters when thousands of circuits share a bus.
    pub crosstalk_per_cochannel_db: f64,
    /// Seed for sampling the fabricated per-boundary stitch losses.
    pub fab_seed: u64,
}

impl Default for WaferConfig {
    fn default() -> Self {
        WaferConfig {
            rows: 4,
            cols: 8,
            tile_pitch_cm: 2.5,
            waveguides_per_edge: 10_000,
            fibers_per_edge_tile: 16,
            wdm: WdmGrid::default(),
            mzi: MziParams::default(),
            stitch: StitchModel::default(),
            propagation_loss_db_per_cm: 0.1,
            crossings_per_through_tile: 1,
            crossings_per_turn: 1,
            crosstalk_per_cochannel_db: 0.002,
            fab_seed: 0xC0FFEE,
        }
    }
}

impl WaferConfig {
    /// Validate the configuration; panics with a description on error.
    pub fn validated(self) -> Self {
        assert!(self.rows >= 1 && self.cols >= 1, "grid must be non-empty");
        assert!(
            self.rows as usize * self.cols as usize <= 256,
            "grids beyond 256 tiles are not supported"
        );
        assert!(self.tile_pitch_cm > 0.0, "pitch must be positive");
        assert!(self.waveguides_per_edge > 0, "need at least one waveguide");
        assert!(
            self.propagation_loss_db_per_cm >= 0.0,
            "propagation loss must be non-negative"
        );
        self
    }

    /// Number of tiles on the wafer.
    pub fn tiles(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// The 32-tile configuration the paper describes.
    pub fn lightpath_32() -> Self {
        WaferConfig::default()
    }

    /// A small 2×4 wafer matching Fig 2c, handy for tests and examples.
    pub fn fig2c_2x4() -> Self {
        WaferConfig {
            rows: 2,
            cols: 4,
            ..WaferConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_32_tile_part() {
        let c = WaferConfig::default().validated();
        assert_eq!(c.tiles(), 32);
        assert_eq!(c.wdm.channels, 16);
        assert_eq!(c.waveguides_per_edge, 10_000);
    }

    #[test]
    fn fig2c_has_8_tiles() {
        assert_eq!(WaferConfig::fig2c_2x4().validated().tiles(), 8);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        WaferConfig {
            rows: 0,
            ..WaferConfig::default()
        }
        .validated();
    }
}
