//! One LIGHTPATH tile: the transceiver block and representative switches.
//!
//! Physically a tile carries thousands of MZIs (Fig 4); the four 1×3
//! switches modelled here are the representative programmable elements of
//! Fig 2a/2b, one facing each cardinal direction. Circuit bookkeeping
//! (waveguide capacity, wavelength claims) lives at the wafer level; the
//! tile owns the *electrical-side* resources — its SerDes lane pool — and
//! the accelerator-failure flag.

use crate::geom::Dir;
use phy::mzi::{MziParams, Switch1x3, SwitchPort};
use phy::serdes::SerdesPool;
use phy::wdm::WdmGrid;

/// A tile on the wafer grid with one accelerator stacked on top.
#[derive(Debug, Clone)]
pub struct Tile {
    /// SerDes lanes of the accelerator chip bonded to this tile.
    pub serdes: SerdesPool,
    /// Representative 1×3 switches, indexed by the direction they face.
    switches: [Switch1x3; 4],
    /// True when the stacked accelerator has failed. Light still passes
    /// through the photonic layer, but the tile cannot source or sink.
    failed: bool,
    /// Number of switch-programming events on this tile.
    programs: u64,
}

fn dir_index(d: Dir) -> usize {
    match d {
        Dir::North => 0,
        Dir::East => 1,
        Dir::South => 2,
        Dir::West => 3,
    }
}

impl Tile {
    /// A fresh tile with the given WDM plan and switch parameters.
    pub fn new(wdm: &WdmGrid, mzi: MziParams) -> Self {
        Tile {
            serdes: SerdesPool::new(wdm.channels, wdm.rate),
            switches: [
                Switch1x3::new(mzi, SwitchPort::Out0),
                Switch1x3::new(mzi, SwitchPort::Out0),
                Switch1x3::new(mzi, SwitchPort::Out0),
                Switch1x3::new(mzi, SwitchPort::Out0),
            ],
            failed: false,
            programs: 0,
        }
    }

    /// True when the stacked accelerator has failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Mark the stacked accelerator failed.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Restore the accelerator (chip replacement).
    pub fn restore(&mut self) {
        self.failed = false;
    }

    /// Inspect the switch facing direction `d`.
    pub fn switch(&self, d: Dir) -> &Switch1x3 {
        &self.switches[dir_index(d)]
    }

    /// Program the switch facing `d` to `port` at absolute time `now_s`;
    /// returns the settle latency in seconds (0 when already selected).
    pub fn program_switch(&mut self, d: Dir, port: SwitchPort, now_s: f64) -> f64 {
        let lat = self.switches[dir_index(d)].select(port, now_s);
        if lat > 0.0 {
            self.programs += 1;
        }
        lat
    }

    /// Switch-programming events so far.
    pub fn programs(&self) -> u64 {
        self.programs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> Tile {
        Tile::new(&WdmGrid::default(), MziParams::default())
    }

    #[test]
    fn fresh_tile_has_full_serdes() {
        let t = tile();
        assert_eq!(t.serdes.tx_free(), 16);
        assert_eq!(t.serdes.rx_free(), 16);
        assert!(!t.is_failed());
    }

    #[test]
    fn failure_roundtrip() {
        let mut t = tile();
        t.fail();
        assert!(t.is_failed());
        t.restore();
        assert!(!t.is_failed());
    }

    #[test]
    fn switch_programming_counts_and_reports_latency() {
        let mut t = tile();
        let lat = t.program_switch(Dir::East, SwitchPort::Out2, 0.0);
        assert!((lat - 3.7e-6).abs() < 1e-9);
        assert_eq!(t.programs(), 1);
        // Re-programming to the same port much later is free.
        let lat = t.program_switch(Dir::East, SwitchPort::Out2, 1.0);
        assert_eq!(lat, 0.0);
        assert_eq!(t.programs(), 1);
        // Other directions are independent.
        assert_eq!(t.switch(Dir::North).selected(), SwitchPort::Out0);
    }
}
