//! Periodic control-plane state snapshots.
//!
//! A [`FabricSnapshot`] is a canonical, FNV-fingerprinted serialization of
//! the entire replayed state of a [`FabricState`](crate::state::FabricState)
//! at one journal sequence number, plus the journal hash fold up to that
//! point. It is the unit of three operations:
//!
//! 1. **Delta replay** ([`crate::state::replay_from`]): restore the snapshot
//!    and fold only the journal tail above its watermark — O(tail), not
//!    O(journal).
//! 2. **Compaction** ([`crate::journal::Journal::compact_to`]): records
//!    below a snapshot's watermark can be truncated because the snapshot
//!    embodies them; the journal hash chain survives via the folded base.
//! 3. **Crash restart** (`spsim ctrl --restart-from`): a resumed run
//!    restores the snapshot, re-journals from the snapshot's own sequence
//!    number, and ends with the byte-identical journal hash and state
//!    fingerprint an uninterrupted run would have produced.
//!
//! The protocol invariant (established by
//! [`capture_snapshot`](crate::state::FabricState::capture_snapshot)): a
//! snapshot at sequence `seq` fingerprints the state *after* applying every
//! record with sequence `< seq`, and `base_fnv` is the journal hash fold
//! *before* the `Snapshot` record itself. [`FabricSnapshot::restore`]
//! therefore re-pushes the identical `Snapshot` record first, so the resumed
//! journal occupies exactly the hash-chain position the original did.

use crate::journal::{Journal, JournalEntry, JournalHeader};
use crate::state::FabricState;
use desim::{SimTime, SnapReader, SnapWriter};
use lightpath::{CtrlFault, FabricError};
use topo::Shape3;

/// Artifact format tag; bump on any incompatible layout change.
const MAGIC: &str = "spsim-snapshot v1";

/// A point-in-time capture of the control plane, sufficient to resume a
/// campaign without the journal prefix it summarizes.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSnapshot {
    /// Simulated instant of capture.
    pub at: SimTime,
    /// Sequence number of the `Snapshot` journal record this capture
    /// emitted; the fingerprint covers all records with sequence `< seq`.
    pub seq: u64,
    /// Journal hash fold over the canonical header and all records below
    /// [`seq`](Self::seq) — the resume point of the hash chain.
    pub base_fnv: u64,
    /// FNV-1a fingerprint of [`state`](Self::state); also committed in the
    /// journal's `Snapshot` record so replay cross-checks it (CTL406).
    pub fingerprint: u64,
    /// The campaign binding the snapshot belongs to.
    pub header: JournalHeader,
    /// Canonical state serialization (the fingerprinted bytes).
    pub state: String,
}

/// A snapshot-corruption fault anchored at the snapshot's watermark.
fn corrupt(seq: u64, what: String) -> FabricError {
    FabricError::new(CtrlFault::ReplayDiverged { seq, what })
}

impl FabricSnapshot {
    /// Rebuild the live state this snapshot captured.
    ///
    /// The restored state's journal resumes at [`seq`](Self::seq) with the
    /// identical `Snapshot` record re-pushed, so subsequent appends chain to
    /// byte-identical hashes with the uninterrupted run. The decoded state
    /// is re-fingerprinted and must match [`fingerprint`](Self::fingerprint)
    /// — a tampered or truncated snapshot is rejected, never resumed.
    pub fn restore(&self) -> Result<FabricState, FabricError> {
        let mut journal = Journal::with_base(self.header, self.seq, self.base_fnv);
        journal.push(
            self.at,
            JournalEntry::Snapshot {
                fingerprint: self.fingerprint,
            },
        );
        let mut r = SnapReader::new(&self.state);
        let st = FabricState::restore_body(journal, &mut r).map_err(|e| corrupt(self.seq, e))?;
        r.done().map_err(|e| corrupt(self.seq, e))?;
        let fp = st.fingerprint();
        if fp != self.fingerprint {
            return Err(corrupt(
                self.seq,
                format!(
                    "restored state fingerprint {fp:#018x} does not match the \
                     snapshot's committed {:#018x}",
                    self.fingerprint
                ),
            ));
        }
        Ok(st)
    }

    /// Serialize the snapshot as a self-describing text artifact (the
    /// `--snapshot-every` output format; the workspace carries no serde).
    /// The state body travels verbatim after a `---` separator, length-
    /// prefixed so truncation is detected before fingerprinting.
    pub fn to_text(&self) -> String {
        let mut w = SnapWriter::new();
        w.section("snapshot");
        w.str("magic", MAGIC);
        w.u64("at_ps", self.at.as_ps());
        w.u64("seq", self.seq);
        w.u64("base_fnv", self.base_fnv);
        w.u64("fingerprint", self.fingerprint);
        w.u64("racks", self.header.racks as u64);
        w.u64("lanes", self.header.lanes as u64);
        w.u64("seed", self.header.seed);
        let [sx, sy, sz] = self.header.shape.dims;
        w.u64("sx", sx as u64);
        w.u64("sy", sy as u64);
        w.u64("sz", sz as u64);
        w.u64("state_len", self.state.len() as u64);
        let mut out = w.finish();
        out.push_str("---\n");
        out.push_str(&self.state);
        out
    }

    /// Parse a [`to_text`](Self::to_text) artifact. Header fields, the
    /// length prefix, and the state fingerprint are all verified; any
    /// mismatch is an `Err` naming what broke, never a resumed campaign on
    /// corrupt state.
    pub fn parse(text: &str) -> Result<FabricSnapshot, String> {
        let (head, body) = text
            .split_once("---\n")
            .ok_or_else(|| "snapshot artifact: missing ----separated state body".to_string())?;
        let mut r = SnapReader::new(head);
        r.section("snapshot")?;
        let magic = r.str("magic")?;
        if magic != MAGIC {
            return Err(format!(
                "snapshot artifact: magic {magic:?} is not {MAGIC:?}"
            ));
        }
        let at = SimTime::from_ps(r.u64("at_ps")?);
        let seq = r.u64("seq")?;
        let base_fnv = r.u64("base_fnv")?;
        let fingerprint = r.u64("fingerprint")?;
        let racks = r.u64("racks")? as usize;
        let lanes = r.u64("lanes")? as usize;
        let seed = r.u64("seed")?;
        let sx = r.u64("sx")? as usize;
        let sy = r.u64("sy")? as usize;
        let sz = r.u64("sz")? as usize;
        let state_len = r.u64("state_len")? as usize;
        r.done()?;
        if body.len() != state_len {
            return Err(format!(
                "snapshot artifact: state body is {} bytes, header promises {state_len}",
                body.len()
            ));
        }
        let fp = desim::snap::fingerprint(body);
        if fp != fingerprint {
            return Err(format!(
                "snapshot artifact: state fingerprint {fp:#018x} does not match the \
                 header's {fingerprint:#018x}"
            ));
        }
        Ok(FabricSnapshot {
            at,
            seq,
            base_fnv,
            fingerprint,
            header: JournalHeader {
                racks,
                lanes,
                seed,
                shape: Shape3::new(sx, sy, sz),
            },
            state: body.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{replay, replay_from, Admission};
    use desim::SimDuration;

    /// Drive a small campaign: admissions, a failure + repair, an eviction.
    fn busy_state() -> FabricState {
        let mut st = FabricState::new(1, 2, 7);
        let mut t = SimTime::ZERO;
        for job in 0..3u32 {
            t += SimDuration::from_secs(1);
            assert!(matches!(
                st.admit(t, job, Shape3::new(2, 2, 1)),
                Admission::Admitted { .. }
            ));
        }
        t += SimDuration::from_secs(1);
        assert!(st.inject_failure(t).is_some());
        t += SimDuration::from_secs(1);
        st.evict(t, 1);
        st
    }

    #[test]
    fn snapshot_restore_is_fingerprint_identical() {
        let mut st = busy_state();
        let snap = st.capture_snapshot(SimTime::from_ps(1 << 40));
        assert_eq!(snap.fingerprint, st.fingerprint());
        let restored = snap.restore().expect("restore");
        assert_eq!(restored.fingerprint(), st.fingerprint());
        // The resumed journal sits at the same hash-chain position.
        assert_eq!(restored.journal().hash(), st.journal().hash());
        assert_eq!(restored.journal().len(), st.journal().len());
        assert_eq!(restored.journal().next_seq(), st.journal().next_seq());
    }

    #[test]
    fn resumed_run_matches_uninterrupted_run() {
        // Uninterrupted: campaign, snapshot mid-way, more work.
        let mut full = busy_state();
        let snap = full.capture_snapshot(SimTime::from_ps(1 << 40));
        let t2 = SimTime::from_ps(2 << 40);
        assert!(matches!(
            full.admit(t2, 9, Shape3::new(2, 2, 1)),
            Admission::Admitted { .. }
        ));
        full.evict(t2 + SimDuration::from_secs(5), 9);

        // Crashed-and-restarted: restore the snapshot, redo the tail.
        let mut resumed = snap.restore().expect("restore");
        assert!(matches!(
            resumed.admit(t2, 9, Shape3::new(2, 2, 1)),
            Admission::Admitted { .. }
        ));
        resumed.evict(t2 + SimDuration::from_secs(5), 9);

        assert_eq!(resumed.fingerprint(), full.fingerprint());
        assert_eq!(resumed.journal().hash(), full.journal().hash());
        assert_eq!(resumed.journal().len(), full.journal().len());
    }

    #[test]
    fn artifact_round_trips_and_rejects_tampering() {
        let mut st = busy_state();
        let snap = st.capture_snapshot(SimTime::from_ps(1 << 40));
        let text = snap.to_text();
        let back = FabricSnapshot::parse(&text).expect("parse");
        assert_eq!(back, snap);
        assert!(back.restore().is_ok());

        // Truncated body: length check trips.
        let truncated = &text[..text.len() - 2];
        assert!(FabricSnapshot::parse(truncated)
            .unwrap_err()
            .contains("bytes"));

        // Flipped state byte: fingerprint check trips.
        let tampered = text.replacen("[occupancy]", "[occupancyX]", 1);
        assert!(FabricSnapshot::parse(&tampered).is_err());

        // Forged fingerprint on an otherwise-valid capture: restore refuses.
        let mut forged = snap.clone();
        forged.fingerprint ^= 1;
        assert!(forged.restore().is_err());
    }

    #[test]
    fn delta_replay_equals_full_replay_and_survives_compaction() {
        // Build a campaign with a mid-stream snapshot and a tail.
        let mut live = busy_state();
        let snap = live.capture_snapshot(SimTime::from_ps(1 << 40));
        let t2 = SimTime::from_ps(2 << 40);
        assert!(matches!(
            live.admit(t2, 9, Shape3::new(2, 2, 1)),
            Admission::Admitted { .. }
        ));
        live.evict(t2 + SimDuration::from_secs(5), 9);

        // Full replay from scratch vs delta replay from the snapshot.
        let full = replay(live.journal()).expect("full replay");
        let delta = replay_from(&snap, live.journal()).expect("delta replay");
        assert_eq!(full.fingerprint(), live.fingerprint());
        assert_eq!(delta.fingerprint(), live.fingerprint());

        // Compact the journal to the snapshot watermark: full replay is now
        // impossible (prefix gone), delta replay still lands on the same
        // state, and the hash chain is unbroken.
        let mut compacted = live.journal().clone();
        let dropped = compacted.compact_to(snap.seq).expect("compact");
        assert!(dropped > 0);
        assert_eq!(compacted.hash(), live.journal().hash());
        assert_eq!(compacted.len(), live.journal().len());
        assert!(replay(&compacted).is_err());
        let delta2 = replay_from(&snap, &compacted).expect("delta replay, compacted");
        assert_eq!(delta2.fingerprint(), live.fingerprint());
    }
}
