//! The control plane's event loop: Poisson job arrivals from
//! [`workloads`], FIFO admission with a queue timeout, departures, failure
//! injections, and periodic metric sampling — all scheduled on the
//! deterministic [`desim::Engine`].
//!
//! `run_scenario` is the one entry point: given a [`CtrlConfig`] it builds
//! a fresh [`FabricState`], drives every event to quiescence, and returns
//! the final state (with its journal) plus the metrics registry. Same
//! config ⇒ same journal hash, bit for bit.

use crate::metrics::Metrics;
use crate::state::{Admission, FabricState};
use desim::{Engine, SimDuration, SimTime};
use std::collections::VecDeque;
use topo::Shape3;
use workloads::{generate, ArrivalParams, JobRequest};

/// Scenario parameters for a control-plane run.
#[derive(Debug, Clone, Copy)]
pub struct CtrlConfig {
    /// TPUv4 racks in the fabric.
    pub racks: usize,
    /// Wavelength lanes per ring circuit.
    pub lanes: usize,
    /// Jobs drawn from the arrival process.
    pub jobs: usize,
    /// RNG seed for the arrival process (and the journal header).
    pub seed: u64,
    /// Arrival process parameters.
    pub arrivals: ArrivalParams,
    /// How long a job may queue before it is denied.
    pub queue_timeout: SimDuration,
    /// Chip failures to inject, 30 s apart, starting mid-trace.
    pub failures: usize,
    /// Gauge samples to spread across the horizon.
    pub samples: usize,
    /// Extra programming attempts after a rejected plan (0 preserves the
    /// legacy deny-on-first-failure behavior and journal byte-for-byte).
    pub program_retries: u32,
    /// Base backoff before a rejected plan is retried; attempt `k` waits
    /// `retry_backoff × 2^min(k, 6)`.
    pub retry_backoff: SimDuration,
    /// Every Nth arrival requests an infeasible slice shape (wider than
    /// the torus itself) to exercise graceful rejection; 0 disables.
    pub infeasible_every: usize,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            racks: 1,
            lanes: 2,
            jobs: 12,
            seed: 7,
            arrivals: ArrivalParams::default(),
            queue_timeout: SimDuration::from_secs(1_800),
            failures: 1,
            samples: 64,
            program_retries: 0,
            retry_backoff: SimDuration::from_ms(100),
            infeasible_every: 0,
        }
    }
}

/// What `run_scenario` hands back.
#[derive(Debug)]
pub struct CtrlOutcome {
    /// Final control-plane state, including the journal.
    pub state: FabricState,
    /// The metrics registry after the run.
    pub metrics: Metrics,
    /// Simulated instant the last event executed at.
    pub horizon: SimTime,
}

/// A job waiting for capacity.
#[derive(Debug, Clone, Copy)]
struct Queued {
    job: u32,
    shape: Shape3,
    duration: SimDuration,
    arrival: SimTime,
    /// Zero-based programming attempt; bumped on each `Reject`.
    attempt: u32,
}

/// The event-loop model: state + metrics + the admission queue.
struct ControlPlane {
    st: FabricState,
    metrics: Metrics,
    queue: VecDeque<Queued>,
    timeout: SimDuration,
    /// Extra programming attempts after a rejection.
    retries: u32,
    /// Base retry backoff (doubles per attempt, capped at 2⁶×).
    backoff: SimDuration,
}

impl ControlPlane {
    /// Admit now if a slice fits and programs; true when the job started
    /// (or was consumed by a programming denial or a scheduled retry,
    /// which also resolve it from the queue's point of view).
    fn try_start(&mut self, eng: &mut Engine<ControlPlane>, q: Queued) -> bool {
        let now = eng.now();
        let last = q.attempt >= self.retries;
        match self
            .st
            .admit_retryable(now, q.job, q.shape, q.attempt, last)
        {
            Admission::Admitted { setup } => {
                self.metrics.bump("jobs.admitted");
                self.metrics
                    .record_wait(now.saturating_since(q.arrival).as_secs_f64());
                // Admission just journaled Admit + Program + Reconfigure;
                // the Program record carries the circuit count.
                if let Some(crate::journal::JournalEntry::Program { circuits, .. }) = self
                    .st
                    .journal()
                    .records()
                    .iter()
                    .rev()
                    .map(|r| &r.entry)
                    .find(|e| matches!(e, crate::journal::JournalEntry::Program { .. }))
                {
                    self.metrics.add("circuits.programmed", *circuits as u64);
                }
                let job = q.job;
                eng.schedule_at(now + setup + q.duration, move |m: &mut ControlPlane, e| {
                    m.on_depart(e, job);
                });
                true
            }
            Admission::NoSpace => false,
            Admission::ProgramDenied { error } => {
                self.metrics.bump("jobs.denied.program");
                self.metrics.bump_rejection(error.root_code());
                true
            }
            Admission::Infeasible { error } => {
                // The shape can never fit: journaled as an immediate
                // Reject + zero-circuit Rollback, never queued or retried.
                self.metrics.bump("jobs.rejected.infeasible");
                self.metrics.bump_rejection(error.root_code());
                true
            }
            Admission::ProgramRejected { error } => {
                // The slice was rolled back and a Reject + Rollback pair
                // journaled; re-attempt after bounded exponential backoff.
                self.metrics.bump("jobs.rejected.program");
                self.metrics.bump_rejection(error.root_code());
                let delay = self.backoff * (1u64 << q.attempt.min(6));
                let retry = Queued {
                    attempt: q.attempt + 1,
                    ..q
                };
                eng.schedule_at(now + delay, move |m: &mut ControlPlane, e| {
                    m.on_retry(e, retry);
                });
                true
            }
        }
    }

    /// A rejected job's backoff expired: try again, or queue (with a fresh
    /// timeout) if the fabric has no space now.
    fn on_retry(&mut self, eng: &mut Engine<ControlPlane>, q: Queued) {
        self.metrics.bump("jobs.retried");
        if !self.try_start(eng, q) {
            self.metrics.bump("jobs.queued");
            self.queue.push_back(q);
            let job = q.job;
            let deadline = eng.now() + self.timeout;
            eng.schedule_at(deadline, move |m: &mut ControlPlane, e| {
                m.on_timeout(e, job);
            });
        }
    }

    fn on_arrival(&mut self, eng: &mut Engine<ControlPlane>, q: Queued) {
        self.metrics.bump("jobs.arrived");
        if !self.try_start(eng, q) {
            self.metrics.bump("jobs.queued");
            self.queue.push_back(q);
            let job = q.job;
            let deadline = eng.now() + self.timeout;
            eng.schedule_at(deadline, move |m: &mut ControlPlane, e| {
                m.on_timeout(e, job);
            });
        }
    }

    fn on_timeout(&mut self, eng: &mut Engine<ControlPlane>, job: u32) {
        if let Some(pos) = self.queue.iter().position(|q| q.job == job) {
            if let Some(q) = self.queue.remove(pos) {
                self.st.deny_timeout(eng.now(), q.job, q.shape);
                self.metrics.bump("jobs.denied.timeout");
            }
        }
    }

    fn on_depart(&mut self, eng: &mut Engine<ControlPlane>, job: u32) {
        self.st.evict(eng.now(), job);
        self.metrics.bump("jobs.departed");
        // Freed capacity: retry queued jobs FIFO until one fails to fit.
        while let Some(&head) = self.queue.front() {
            if self.try_start(eng, head) {
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    fn on_failure(&mut self, eng: &mut Engine<ControlPlane>) {
        let now = eng.now();
        self.metrics.bump("failures.injected");
        let (spliced, ok, failed) = match self.st.inject_failure(now) {
            Some(rec) => (
                rec.spliced as u64,
                rec.repair.is_some() as u64,
                rec.repair_error.is_some() as u64,
            ),
            None => (0, 0, 0),
        };
        self.metrics.add("circuits.spliced", spliced);
        self.metrics.add("repairs.ok", ok);
        self.metrics.add("repairs.failed", failed);
    }
}

/// Run a full control-plane scenario to quiescence.
pub fn run_scenario(cfg: &CtrlConfig) -> CtrlOutcome {
    let trace: Vec<JobRequest> = generate(cfg.jobs, &cfg.arrivals, cfg.seed);
    let mut model = ControlPlane {
        st: FabricState::new(cfg.racks, cfg.lanes, cfg.seed),
        metrics: Metrics::new(),
        queue: VecDeque::new(),
        timeout: cfg.queue_timeout,
        retries: cfg.program_retries,
        backoff: cfg.retry_backoff,
    };
    // An infeasible probe shape: one chip wider than the torus itself in X,
    // so placement is structurally impossible (typed NoSpace, never a
    // panic). Used by the fault campaign (`infeasible_every > 0`).
    let torus = model.st.rack().cluster.occupancy().shape();
    let infeasible = Shape3::new(torus.dims[0] + 1, torus.dims[1], torus.dims[2]);
    let mut eng: Engine<ControlPlane> = Engine::new();

    for (i, req) in trace.iter().enumerate() {
        let shape = if cfg.infeasible_every > 0 && (i + 1) % cfg.infeasible_every == 0 {
            infeasible
        } else {
            req.shape
        };
        let q = Queued {
            job: i as u32,
            shape,
            duration: req.duration,
            arrival: req.arrival,
            attempt: 0,
        };
        eng.schedule_at(req.arrival, move |m: &mut ControlPlane, e| {
            m.on_arrival(e, q);
        });
    }

    // Failures anchor at the median arrival so tenants are live, 30 s apart.
    let anchor = trace
        .get(trace.len() / 2)
        .map(|r| r.arrival)
        .unwrap_or(SimTime::ZERO);
    for k in 0..cfg.failures {
        let at = anchor + SimDuration::from_secs(30) * (k as u64 + 1);
        eng.schedule_at(at, |m: &mut ControlPlane, e| m.on_failure(e));
    }

    // Gauge samples across the estimated horizon.
    let est = trace
        .iter()
        .map(|r| r.arrival + r.duration)
        .max()
        .unwrap_or(SimTime::ZERO)
        + cfg.queue_timeout;
    if cfg.samples > 0 {
        let step = est.since_origin() / cfg.samples as u64;
        for s in 1..=cfg.samples {
            eng.schedule_at(
                SimTime::ZERO + step * s as u64,
                |m: &mut ControlPlane, e| {
                    let now = e.now();
                    m.metrics.sample(now, &m.st);
                },
            );
        }
    }

    eng.run(&mut model);
    let horizon = eng.now();
    CtrlOutcome {
        state: model.st,
        metrics: model.metrics,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_to_quiescence_and_journals() {
        let cfg = CtrlConfig {
            jobs: 6,
            ..CtrlConfig::default()
        };
        let out = run_scenario(&cfg);
        assert_eq!(out.metrics.counter("jobs.arrived"), 6);
        let resolved = out.metrics.counter("jobs.admitted")
            + out.metrics.counter("jobs.denied.timeout")
            + out.metrics.counter("jobs.denied.program");
        assert_eq!(resolved, 6, "every arrival resolves");
        assert_eq!(
            out.metrics.counter("jobs.departed"),
            out.metrics.counter("jobs.admitted"),
            "every admitted job departs"
        );
        if out.metrics.counter("jobs.admitted") > 0 {
            assert!(out.metrics.counter("circuits.programmed") > 0);
        }
        assert_eq!(out.state.live_jobs(), 0, "fabric drains");
        assert!(!out.state.journal().is_empty());
        assert!(out.horizon > SimTime::ZERO);
    }

    #[test]
    fn same_seed_same_journal_hash() {
        let cfg = CtrlConfig::default();
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.state.journal().hash(), b.state.journal().hash());
        let other = CtrlConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let c = run_scenario(&other);
        assert_ne!(
            a.state.journal().hash(),
            c.state.journal().hash(),
            "different seed should produce a different trace"
        );
    }

    #[test]
    fn injected_failure_is_repaired_with_blast_radius_one() {
        let cfg = CtrlConfig {
            jobs: 8,
            failures: 1,
            ..CtrlConfig::default()
        };
        let out = run_scenario(&cfg);
        assert_eq!(out.metrics.counter("failures.injected"), 1);
        let repaired: Vec<_> = out
            .state
            .incidents()
            .iter()
            .filter_map(|i| i.repair)
            .collect();
        assert!(
            !repaired.is_empty(),
            "mid-trace tenants exist, repair must happen"
        );
        for rep in repaired {
            assert_eq!(rep.blast_servers, 1);
        }
    }
}
