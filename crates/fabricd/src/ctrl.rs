//! The control plane's event loop: Poisson job arrivals from
//! [`workloads`], FIFO admission with a queue timeout, departures, failure
//! injections, and periodic metric sampling.
//!
//! The loop is *data-driven*: every pending event lives in an ordered
//! `BTreeMap` keyed by `(time, insertion seq)` — exactly the pop order of
//! [`desim::Engine`], FIFO among same-instant ties — rather than in opaque
//! scheduled closures. That makes the whole campaign a value: it can be
//! captured mid-flight into a [`CtrlSnapshot`] (fabric state, admission
//! queue, pending events, metrics), written to disk, and resumed after a
//! crash with bit-identical decisions, journal hashes, and metrics.
//!
//! Three entry points:
//! - [`run_scenario`]: the classic snapshot-free run; same config ⇒ same
//!   journal hash, byte for byte (unchanged from the closure-based loop).
//! - [`run_campaign`]: the same loop with periodic state snapshots every
//!   [`CampaignOptions::snapshot_every`], optional journal compaction at
//!   each snapshot watermark, and an optional simulated crash.
//! - [`resume_campaign`]: restore a [`CtrlSnapshot`] and drive the rest of
//!   the campaign; the finished run is indistinguishable from one that
//!   never crashed.

use crate::metrics::Metrics;
use crate::snapshot::FabricSnapshot;
use crate::state::{Admission, FabricState};
use desim::{SimDuration, SimTime, SnapReader, SnapWriter};
use std::collections::{BTreeMap, VecDeque};
use topo::Shape3;
use workloads::{generate, ArrivalParams, JobRequest};

/// Scenario parameters for a control-plane run.
#[derive(Debug, Clone, Copy)]
pub struct CtrlConfig {
    /// TPUv4 racks in the fabric.
    pub racks: usize,
    /// Wavelength lanes per ring circuit.
    pub lanes: usize,
    /// Jobs drawn from the arrival process.
    pub jobs: usize,
    /// RNG seed for the arrival process (and the journal header).
    pub seed: u64,
    /// Arrival process parameters.
    pub arrivals: ArrivalParams,
    /// How long a job may queue before it is denied.
    pub queue_timeout: SimDuration,
    /// Chip failures to inject, 30 s apart, starting mid-trace.
    pub failures: usize,
    /// Gauge samples to spread across the horizon.
    pub samples: usize,
    /// Extra programming attempts after a rejected plan (0 preserves the
    /// legacy deny-on-first-failure behavior and journal byte-for-byte).
    pub program_retries: u32,
    /// Base backoff before a rejected plan is retried; attempt `k` waits
    /// `retry_backoff × 2^min(k, 6)`.
    pub retry_backoff: SimDuration,
    /// Every Nth arrival requests an infeasible slice shape (wider than
    /// the torus itself) to exercise graceful rejection; 0 disables.
    pub infeasible_every: usize,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            racks: 1,
            lanes: 2,
            jobs: 12,
            seed: 7,
            arrivals: ArrivalParams::default(),
            queue_timeout: SimDuration::from_secs(1_800),
            failures: 1,
            samples: 64,
            program_retries: 0,
            retry_backoff: SimDuration::from_ms(100),
            infeasible_every: 0,
        }
    }
}

/// Snapshot / crash-restart knobs for [`run_campaign`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOptions {
    /// Capture a [`CtrlSnapshot`] every this much simulated time (`None`
    /// or zero disables). Each capture journals a `Snapshot` record, so
    /// runs with different cadences have different (but individually
    /// deterministic) journal hashes.
    pub snapshot_every: Option<SimDuration>,
    /// Compact the journal down to each snapshot's watermark as it is
    /// captured. The journal hash and logical length are invariant under
    /// compaction (audited by verify CTL407).
    pub compact: bool,
    /// Simulate a crash: stop dead after this many events of this run
    /// segment have executed, without draining the campaign. The outcome
    /// has [`CampaignOutcome::crashed`] set; restart from the last
    /// captured snapshot via [`resume_campaign`].
    pub crash_after_events: Option<u64>,
}

/// What `run_scenario` hands back.
#[derive(Debug)]
pub struct CtrlOutcome {
    /// Final control-plane state, including the journal.
    pub state: FabricState,
    /// The metrics registry after the run.
    pub metrics: Metrics,
    /// Simulated instant the last event executed at.
    pub horizon: SimTime,
}

/// What [`run_campaign`] / [`resume_campaign`] hand back.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Final control-plane state, including the journal.
    pub state: FabricState,
    /// The metrics registry after the run.
    pub metrics: Metrics,
    /// Simulated instant the last event executed at.
    pub horizon: SimTime,
    /// Snapshots captured along the way, in capture order.
    pub snapshots: Vec<CtrlSnapshot>,
    /// True when the run stopped at `crash_after_events` with work left.
    pub crashed: bool,
    /// Events executed by this run segment.
    pub events_executed: u64,
}

/// A job waiting for capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Queued {
    job: u32,
    shape: Shape3,
    duration: SimDuration,
    arrival: SimTime,
    /// Zero-based programming attempt; bumped on each `Reject`.
    attempt: u32,
}

/// One pending control-plane event. The payload carries everything the
/// handler needs, so the whole future of the campaign is serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CtrlEvent {
    /// A job arrives from the workload trace.
    Arrive(Queued),
    /// A rejected job's backoff expired.
    Retry(Queued),
    /// A queued job's admission deadline passed.
    Timeout(u32),
    /// An admitted job's duration elapsed.
    Depart(u32),
    /// Inject one chip failure.
    Fail,
    /// Sample the fabric gauges into the metrics time-series.
    Sample,
}

/// The event-loop model: state + metrics + the admission queue + every
/// pending event. Pure data — no closures — so a campaign can stop and
/// resume anywhere.
struct ControlPlane {
    st: FabricState,
    metrics: Metrics,
    queue: VecDeque<Queued>,
    timeout: SimDuration,
    /// Extra programming attempts after a rejection.
    retries: u32,
    /// Base retry backoff (doubles per attempt, capped at 2⁶×).
    backoff: SimDuration,
    /// Pending events in execution order: `(instant, insertion seq)` keys
    /// reproduce [`desim::Engine`]'s pop order exactly (earliest first,
    /// FIFO among same-instant ties).
    events: BTreeMap<(SimTime, u64), CtrlEvent>,
    /// Monotonic insertion counter for the event-key tie-break.
    next_event_seq: u64,
}

impl ControlPlane {
    /// A fresh campaign: build the fabric and seed arrivals, failures, and
    /// gauge samples in the same insertion order the closure-based loop
    /// used, so event keys — and therefore journal hashes — are unchanged.
    fn fresh(cfg: &CtrlConfig) -> Self {
        let mut model = ControlPlane {
            st: FabricState::new(cfg.racks, cfg.lanes, cfg.seed),
            metrics: Metrics::new(),
            queue: VecDeque::new(),
            timeout: cfg.queue_timeout,
            retries: cfg.program_retries,
            backoff: cfg.retry_backoff,
            events: BTreeMap::new(),
            next_event_seq: 0,
        };
        model.seed_events(cfg);
        model
    }

    /// Rebuild the mid-campaign model a [`CtrlSnapshot`] captured.
    fn from_snapshot(snap: &CtrlSnapshot) -> Result<Self, String> {
        let st = snap.fabric.restore().map_err(|e| e.to_string())?;
        let mut r = SnapReader::new(&snap.metrics);
        let metrics = Metrics::read_snap(&mut r)?;
        r.done()?;
        let mut events = BTreeMap::new();
        for (t, s, ev) in &snap.events {
            if *s >= snap.next_event_seq {
                return Err(format!(
                    "ctrl snapshot: event seq {s} is not below the insertion counter {}",
                    snap.next_event_seq
                ));
            }
            if events.insert((*t, *s), ev.clone()).is_some() {
                return Err(format!(
                    "ctrl snapshot: duplicate event key ({}, {s})",
                    t.as_ps()
                ));
            }
        }
        Ok(ControlPlane {
            st,
            metrics,
            queue: snap.queue.iter().copied().collect(),
            timeout: snap.timeout,
            retries: snap.retries,
            backoff: snap.backoff,
            events,
            next_event_seq: snap.next_event_seq,
        })
    }

    /// Schedule `ev` at `at`; FIFO among same-instant events.
    fn schedule(&mut self, at: SimTime, ev: CtrlEvent) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.events.insert((at, seq), ev);
    }

    /// Seed the workload trace, failure injections, and gauge samples.
    fn seed_events(&mut self, cfg: &CtrlConfig) {
        let trace: Vec<JobRequest> = generate(cfg.jobs, &cfg.arrivals, cfg.seed);
        // An infeasible probe shape: one chip wider than the torus itself
        // in X, so placement is structurally impossible (typed NoSpace,
        // never a panic). Used by the fault campaign (`infeasible_every >
        // 0`).
        let [tx, ty, tz] = self.st.rack().cluster.occupancy().shape().dims;
        let infeasible = Shape3::new(tx + 1, ty, tz);

        for (i, req) in trace.iter().enumerate() {
            let shape = if cfg.infeasible_every > 0 && (i + 1) % cfg.infeasible_every == 0 {
                infeasible
            } else {
                req.shape
            };
            let q = Queued {
                job: i as u32,
                shape,
                duration: req.duration,
                arrival: req.arrival,
                attempt: 0,
            };
            self.schedule(req.arrival, CtrlEvent::Arrive(q));
        }

        // Failures anchor at the median arrival so tenants are live, 30 s
        // apart.
        let anchor = trace
            .get(trace.len() / 2)
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO);
        for k in 0..cfg.failures {
            let at = anchor + SimDuration::from_secs(30) * (k as u64 + 1);
            self.schedule(at, CtrlEvent::Fail);
        }

        // Gauge samples across the estimated horizon.
        let est = trace
            .iter()
            .map(|r| r.arrival + r.duration)
            .max()
            .unwrap_or(SimTime::ZERO)
            + cfg.queue_timeout;
        if cfg.samples > 0 {
            let step = est.since_origin() / cfg.samples as u64;
            for s in 1..=cfg.samples {
                self.schedule(SimTime::ZERO + step * s as u64, CtrlEvent::Sample);
            }
        }
    }

    /// Execute one event at its scheduled instant.
    fn execute(&mut self, now: SimTime, ev: CtrlEvent) {
        match ev {
            CtrlEvent::Arrive(q) => self.on_arrival(now, q),
            CtrlEvent::Retry(q) => self.on_retry(now, q),
            CtrlEvent::Timeout(job) => self.on_timeout(now, job),
            CtrlEvent::Depart(job) => self.on_depart(now, job),
            CtrlEvent::Fail => self.on_failure(now),
            CtrlEvent::Sample => self.metrics.sample(now, &self.st),
        }
    }

    /// Drain every event; returns the instant the last one executed at.
    fn drive_to_quiescence(&mut self) -> SimTime {
        let mut horizon = SimTime::ZERO;
        while let Some(((t, _), ev)) = self.events.pop_first() {
            horizon = t;
            self.execute(t, ev);
        }
        horizon
    }

    /// Capture the whole campaign — fabric (which journals a `Snapshot`
    /// record), admission queue, pending events, metrics — at instant
    /// `at`.
    fn capture(&mut self, at: SimTime) -> CtrlSnapshot {
        let fabric = self.st.capture_snapshot(at);
        let mut w = SnapWriter::new();
        self.metrics.write_snap(&mut w);
        CtrlSnapshot {
            fabric,
            timeout: self.timeout,
            retries: self.retries,
            backoff: self.backoff,
            next_event_seq: self.next_event_seq,
            queue: self.queue.iter().copied().collect(),
            events: self
                .events
                .iter()
                .map(|(&(t, s), ev)| (t, s, ev.clone()))
                .collect(),
            metrics: w.finish(),
        }
    }

    /// The campaign loop: snapshots on cadence, optional compaction,
    /// optional simulated crash. `start` is the resume instant (`ZERO` for
    /// a fresh run); snapshot boundaries land at `start + k×every`, so a
    /// resumed run captures at exactly the instants the uninterrupted run
    /// would have.
    fn drive_campaign(
        mut self,
        start: SimTime,
        opts: &CampaignOptions,
    ) -> Result<CampaignOutcome, String> {
        let every = opts.snapshot_every.filter(|d| d.as_ps() > 0);
        let mut next_snap = every.map(|d| start + d);
        let mut snapshots = Vec::new();
        let mut horizon = start;
        let mut executed = 0u64;
        let mut crashed = false;
        while let Some((&key, _)) = self.events.iter().next() {
            let (t, _) = key;
            // Snapshot boundaries due at or before the next event fire
            // first, so the capture sees every record below it and none
            // above — the watermark invariant CTL406/CTL407 audit.
            if let (Some(d), Some(mut ns)) = (every, next_snap) {
                while ns <= t {
                    let snap = self.capture(ns);
                    if opts.compact {
                        self.st.compact_journal(snap.fabric.seq)?;
                    }
                    snapshots.push(snap);
                    ns += d;
                }
                next_snap = Some(ns);
            }
            if let Some(limit) = opts.crash_after_events {
                if executed >= limit {
                    crashed = true;
                    break;
                }
            }
            let Some(ev) = self.events.remove(&key) else {
                break;
            };
            horizon = t;
            self.execute(t, ev);
            executed += 1;
        }
        Ok(CampaignOutcome {
            state: self.st,
            metrics: self.metrics,
            horizon,
            snapshots,
            crashed,
            events_executed: executed,
        })
    }

    /// Admit now if a slice fits and programs; true when the job started
    /// (or was consumed by a programming denial or a scheduled retry,
    /// which also resolve it from the queue's point of view).
    fn try_start(&mut self, now: SimTime, q: Queued) -> bool {
        let last = q.attempt >= self.retries;
        match self
            .st
            .admit_retryable(now, q.job, q.shape, q.attempt, last)
        {
            Admission::Admitted { setup } => {
                self.metrics.bump("jobs.admitted");
                self.metrics
                    .record_wait(now.saturating_since(q.arrival).as_secs_f64());
                // Admission just journaled Admit + Program + Reconfigure;
                // the Program record carries the circuit count.
                if let Some(crate::journal::JournalEntry::Program { circuits, .. }) = self
                    .st
                    .journal()
                    .records()
                    .iter()
                    .rev()
                    .map(|r| &r.entry)
                    .find(|e| matches!(e, crate::journal::JournalEntry::Program { .. }))
                {
                    self.metrics.add("circuits.programmed", *circuits as u64);
                }
                self.schedule(now + setup + q.duration, CtrlEvent::Depart(q.job));
                true
            }
            Admission::NoSpace => false,
            Admission::ProgramDenied { error } => {
                self.metrics.bump("jobs.denied.program");
                self.metrics.bump_rejection(error.root_code());
                true
            }
            Admission::Infeasible { error } => {
                // The shape can never fit: journaled as an immediate
                // Reject + zero-circuit Rollback, never queued or retried.
                self.metrics.bump("jobs.rejected.infeasible");
                self.metrics.bump_rejection(error.root_code());
                true
            }
            Admission::ProgramRejected { error } => {
                // The slice was rolled back and a Reject + Rollback pair
                // journaled; re-attempt after bounded exponential backoff.
                self.metrics.bump("jobs.rejected.program");
                self.metrics.bump_rejection(error.root_code());
                let delay = self.backoff * (1u64 << q.attempt.min(6));
                let retry = Queued {
                    attempt: q.attempt + 1,
                    ..q
                };
                self.schedule(now + delay, CtrlEvent::Retry(retry));
                true
            }
        }
    }

    /// A rejected job's backoff expired: try again, or queue (with a fresh
    /// timeout) if the fabric has no space now.
    fn on_retry(&mut self, now: SimTime, q: Queued) {
        self.metrics.bump("jobs.retried");
        if !self.try_start(now, q) {
            self.metrics.bump("jobs.queued");
            self.queue.push_back(q);
            self.schedule(now + self.timeout, CtrlEvent::Timeout(q.job));
        }
    }

    fn on_arrival(&mut self, now: SimTime, q: Queued) {
        self.metrics.bump("jobs.arrived");
        if !self.try_start(now, q) {
            self.metrics.bump("jobs.queued");
            self.queue.push_back(q);
            self.schedule(now + self.timeout, CtrlEvent::Timeout(q.job));
        }
    }

    fn on_timeout(&mut self, now: SimTime, job: u32) {
        if let Some(pos) = self.queue.iter().position(|q| q.job == job) {
            if let Some(q) = self.queue.remove(pos) {
                self.st.deny_timeout(now, q.job, q.shape);
                self.metrics.bump("jobs.denied.timeout");
            }
        }
    }

    fn on_depart(&mut self, now: SimTime, job: u32) {
        self.st.evict(now, job);
        self.metrics.bump("jobs.departed");
        // Freed capacity: retry queued jobs FIFO until one fails to fit.
        while let Some(&head) = self.queue.front() {
            if self.try_start(now, head) {
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    fn on_failure(&mut self, now: SimTime) {
        self.metrics.bump("failures.injected");
        let (spliced, ok, failed) = match self.st.inject_failure(now) {
            Some(rec) => (
                rec.spliced as u64,
                rec.repair.is_some() as u64,
                rec.repair_error.is_some() as u64,
            ),
            None => (0, 0, 0),
        };
        self.metrics.add("circuits.spliced", spliced);
        self.metrics.add("repairs.ok", ok);
        self.metrics.add("repairs.failed", failed);
    }
}

/// Run a full control-plane scenario to quiescence.
pub fn run_scenario(cfg: &CtrlConfig) -> CtrlOutcome {
    let mut model = ControlPlane::fresh(cfg);
    let horizon = model.drive_to_quiescence();
    CtrlOutcome {
        state: model.st,
        metrics: model.metrics,
        horizon,
    }
}

/// Run a campaign with periodic snapshots, optional journal compaction,
/// and an optional simulated crash (see [`CampaignOptions`]).
pub fn run_campaign(cfg: &CtrlConfig, opts: &CampaignOptions) -> Result<CampaignOutcome, String> {
    ControlPlane::fresh(cfg).drive_campaign(SimTime::ZERO, opts)
}

/// Restore a mid-campaign snapshot and drive the rest of the campaign.
///
/// The resumed run re-executes exactly the decisions the uninterrupted run
/// would have taken from the snapshot instant on: final state fingerprint,
/// journal hash, logical journal length, metrics, and horizon all match
/// bit for bit (pinned by `tests/restart.rs`).
pub fn resume_campaign(
    snap: &CtrlSnapshot,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, String> {
    let model = ControlPlane::from_snapshot(snap)?;
    model.drive_campaign(snap.fabric.at, opts)
}

/// Artifact format tag; bump on any incompatible layout change.
const CTRL_MAGIC: &str = "spsim-ctrl-snapshot v1";

/// A whole campaign captured mid-flight: the fabric snapshot (state +
/// journal resume point), retry policy, admission queue, pending events,
/// and metrics. [`resume_campaign`] turns it back into a running loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlSnapshot {
    /// The fabric-state snapshot, including the journal resume point.
    pub fabric: FabricSnapshot,
    /// Admission-queue timeout policy at capture.
    pub timeout: SimDuration,
    /// Extra programming attempts after a rejection.
    pub retries: u32,
    /// Base retry backoff.
    pub backoff: SimDuration,
    /// The event-key insertion counter at capture.
    pub next_event_seq: u64,
    queue: Vec<Queued>,
    events: Vec<(SimTime, u64, CtrlEvent)>,
    metrics: String,
}

/// Encode a queue entry's fields.
fn write_queued(w: &mut SnapWriter, q: &Queued) {
    w.u64("job", q.job as u64);
    let [qx, qy, qz] = q.shape.dims;
    w.u64("qx", qx as u64);
    w.u64("qy", qy as u64);
    w.u64("qz", qz as u64);
    w.u64("duration_ps", q.duration.as_ps());
    w.u64("arrival_ps", q.arrival.as_ps());
    w.u64("attempt", q.attempt as u64);
}

/// Decode a queue entry's fields.
fn read_queued(r: &mut SnapReader<'_>) -> Result<Queued, String> {
    let job = u32::try_from(r.u64("job")?)
        .map_err(|_| "ctrl snapshot: job id exceeds u32".to_string())?;
    let qx = r.u64("qx")? as usize;
    let qy = r.u64("qy")? as usize;
    let qz = r.u64("qz")? as usize;
    let duration = SimDuration::from_ps(r.u64("duration_ps")?);
    let arrival = SimTime::from_ps(r.u64("arrival_ps")?);
    let attempt = u32::try_from(r.u64("attempt")?)
        .map_err(|_| "ctrl snapshot: attempt exceeds u32".to_string())?;
    Ok(Queued {
        job,
        shape: Shape3::new(qx, qy, qz),
        duration,
        arrival,
        attempt,
    })
}

impl CtrlSnapshot {
    /// Serialize as a self-describing text artifact. The first line names
    /// the format and carries an FNV-1a fingerprint of the body, so
    /// truncation or tampering is detected before any state is rebuilt.
    pub fn to_text(&self) -> String {
        let mut w = SnapWriter::new();
        w.section("campaign");
        w.u64("timeout_ps", self.timeout.as_ps());
        w.u64("retries", self.retries as u64);
        w.u64("backoff_ps", self.backoff.as_ps());
        w.u64("event_seq", self.next_event_seq);
        w.u64("queue", self.queue.len() as u64);
        for q in &self.queue {
            write_queued(&mut w, q);
        }
        w.u64("events", self.events.len() as u64);
        for (t, s, ev) in &self.events {
            w.u64("at", t.as_ps());
            w.u64("seq", *s);
            match ev {
                CtrlEvent::Arrive(q) => {
                    w.u64("kind", 0);
                    write_queued(&mut w, q);
                }
                CtrlEvent::Retry(q) => {
                    w.u64("kind", 1);
                    write_queued(&mut w, q);
                }
                CtrlEvent::Timeout(job) => {
                    w.u64("kind", 2);
                    w.u64("job", *job as u64);
                }
                CtrlEvent::Depart(job) => {
                    w.u64("kind", 3);
                    w.u64("job", *job as u64);
                }
                CtrlEvent::Fail => w.u64("kind", 4),
                CtrlEvent::Sample => w.u64("kind", 5),
            }
        }
        w.str("metrics", &self.metrics);
        w.str("fabric", &self.fabric.to_text());
        let body = w.finish();
        let fnv = desim::snap::fingerprint(&body);
        format!("{CTRL_MAGIC} fnv={fnv:016x}\n{body}")
    }

    /// Parse a [`to_text`](Self::to_text) artifact, verifying the body
    /// fingerprint and every structural field.
    pub fn parse(text: &str) -> Result<CtrlSnapshot, String> {
        let (first, body) = text
            .split_once('\n')
            .ok_or_else(|| "ctrl snapshot: empty artifact".to_string())?;
        let fnv_hex = first
            .strip_prefix(CTRL_MAGIC)
            .and_then(|rest| rest.trim().strip_prefix("fnv="))
            .ok_or_else(|| format!("ctrl snapshot: bad magic line {first:?}"))?;
        let fnv = u64::from_str_radix(fnv_hex, 16)
            .map_err(|_| format!("ctrl snapshot: bad fnv field {fnv_hex:?}"))?;
        let got = desim::snap::fingerprint(body);
        if got != fnv {
            return Err(format!(
                "ctrl snapshot: body fingerprint {got:016x} does not match the \
                 header's {fnv:016x}"
            ));
        }
        let mut r = SnapReader::new(body);
        r.section("campaign")?;
        let timeout = SimDuration::from_ps(r.u64("timeout_ps")?);
        let retries = u32::try_from(r.u64("retries")?)
            .map_err(|_| "ctrl snapshot: retries exceeds u32".to_string())?;
        let backoff = SimDuration::from_ps(r.u64("backoff_ps")?);
        let next_event_seq = r.u64("event_seq")?;
        let nq = r.u64("queue")? as usize;
        let mut queue = Vec::with_capacity(nq);
        for _ in 0..nq {
            queue.push(read_queued(&mut r)?);
        }
        let ne = r.u64("events")? as usize;
        let mut events = Vec::with_capacity(ne);
        for _ in 0..ne {
            let at = SimTime::from_ps(r.u64("at")?);
            let seq = r.u64("seq")?;
            let job = |r: &mut SnapReader<'_>| -> Result<u32, String> {
                u32::try_from(r.u64("job")?)
                    .map_err(|_| "ctrl snapshot: job id exceeds u32".to_string())
            };
            let ev = match r.u64("kind")? {
                0 => CtrlEvent::Arrive(read_queued(&mut r)?),
                1 => CtrlEvent::Retry(read_queued(&mut r)?),
                2 => CtrlEvent::Timeout(job(&mut r)?),
                3 => CtrlEvent::Depart(job(&mut r)?),
                4 => CtrlEvent::Fail,
                5 => CtrlEvent::Sample,
                k => return Err(format!("ctrl snapshot: unknown event kind {k}")),
            };
            events.push((at, seq, ev));
        }
        let metrics = r.str("metrics")?;
        let fabric = FabricSnapshot::parse(&r.str("fabric")?)?;
        r.done()?;
        Ok(CtrlSnapshot {
            fabric,
            timeout,
            retries,
            backoff,
            next_event_seq,
            queue,
            events,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_to_quiescence_and_journals() {
        let cfg = CtrlConfig {
            jobs: 6,
            ..CtrlConfig::default()
        };
        let out = run_scenario(&cfg);
        assert_eq!(out.metrics.counter("jobs.arrived"), 6);
        let resolved = out.metrics.counter("jobs.admitted")
            + out.metrics.counter("jobs.denied.timeout")
            + out.metrics.counter("jobs.denied.program");
        assert_eq!(resolved, 6, "every arrival resolves");
        assert_eq!(
            out.metrics.counter("jobs.departed"),
            out.metrics.counter("jobs.admitted"),
            "every admitted job departs"
        );
        if out.metrics.counter("jobs.admitted") > 0 {
            assert!(out.metrics.counter("circuits.programmed") > 0);
        }
        assert_eq!(out.state.live_jobs(), 0, "fabric drains");
        assert!(!out.state.journal().is_empty());
        assert!(out.horizon > SimTime::ZERO);
    }

    #[test]
    fn same_seed_same_journal_hash() {
        let cfg = CtrlConfig::default();
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.state.journal().hash(), b.state.journal().hash());
        let other = CtrlConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let c = run_scenario(&other);
        assert_ne!(
            a.state.journal().hash(),
            c.state.journal().hash(),
            "different seed should produce a different trace"
        );
    }

    #[test]
    fn injected_failure_is_repaired_with_blast_radius_one() {
        let cfg = CtrlConfig {
            jobs: 8,
            failures: 1,
            ..CtrlConfig::default()
        };
        let out = run_scenario(&cfg);
        assert_eq!(out.metrics.counter("failures.injected"), 1);
        let repaired: Vec<_> = out
            .state
            .incidents()
            .iter()
            .filter_map(|i| i.repair)
            .collect();
        assert!(
            !repaired.is_empty(),
            "mid-trace tenants exist, repair must happen"
        );
        for rep in repaired {
            assert_eq!(rep.blast_servers, 1);
        }
    }

    #[test]
    fn campaign_without_snapshots_matches_scenario() {
        let cfg = CtrlConfig::default();
        let plain = run_scenario(&cfg);
        let camp = run_campaign(&cfg, &CampaignOptions::default()).expect("campaign");
        assert!(!camp.crashed);
        assert!(camp.snapshots.is_empty());
        assert_eq!(camp.state.journal().hash(), plain.state.journal().hash());
        assert_eq!(camp.state.fingerprint(), plain.state.fingerprint());
        assert_eq!(camp.horizon, plain.horizon);
    }

    #[test]
    fn crash_restart_resumes_bit_identically() {
        let cfg = CtrlConfig {
            jobs: 10,
            program_retries: 1,
            ..CtrlConfig::default()
        };
        let opts = CampaignOptions {
            snapshot_every: Some(SimDuration::from_secs(300)),
            ..CampaignOptions::default()
        };
        let full = run_campaign(&cfg, &opts).expect("uninterrupted");
        assert!(!full.crashed);
        assert!(
            full.snapshots.len() >= 2,
            "cadence must produce snapshots: {}",
            full.snapshots.len()
        );

        // Crash two-thirds of the way in, restart from the last snapshot.
        let crash_at = full.events_executed * 2 / 3;
        let crashed = run_campaign(
            &cfg,
            &CampaignOptions {
                crash_after_events: Some(crash_at),
                ..opts
            },
        )
        .expect("crashed run");
        assert!(crashed.crashed);
        let last = crashed.snapshots.last().expect("snapshot before crash");
        let resumed = resume_campaign(last, &opts).expect("resume");
        assert!(!resumed.crashed);

        assert_eq!(resumed.state.journal().hash(), full.state.journal().hash());
        assert_eq!(resumed.state.journal().len(), full.state.journal().len());
        assert_eq!(resumed.state.fingerprint(), full.state.fingerprint());
        assert_eq!(resumed.horizon, full.horizon);
        let render = |m: &Metrics| {
            let mut w = SnapWriter::new();
            m.write_snap(&mut w);
            w.finish()
        };
        assert_eq!(
            render(&resumed.metrics),
            render(&full.metrics),
            "resumed metrics must be bit-identical"
        );
    }

    #[test]
    fn compaction_is_invisible_to_the_hash_chain() {
        let cfg = CtrlConfig {
            jobs: 10,
            ..CtrlConfig::default()
        };
        let opts = CampaignOptions {
            snapshot_every: Some(SimDuration::from_secs(300)),
            ..CampaignOptions::default()
        };
        let keep = run_campaign(&cfg, &opts).expect("uncompacted");
        let drop = run_campaign(
            &cfg,
            &CampaignOptions {
                compact: true,
                ..opts
            },
        )
        .expect("compacted");
        assert!(drop.state.journal().base_seq() > 0, "compaction happened");
        assert_eq!(keep.state.journal().base_seq(), 0);
        assert_eq!(drop.state.journal().hash(), keep.state.journal().hash());
        assert_eq!(drop.state.journal().len(), keep.state.journal().len());
        assert_eq!(drop.state.fingerprint(), keep.state.fingerprint());
        assert!(
            drop.state.journal().records().len() < keep.state.journal().records().len(),
            "compaction must actually shed records"
        );
    }

    #[test]
    fn ctrl_snapshot_artifact_round_trips() {
        let cfg = CtrlConfig {
            jobs: 10,
            ..CtrlConfig::default()
        };
        let opts = CampaignOptions {
            snapshot_every: Some(SimDuration::from_secs(600)),
            ..CampaignOptions::default()
        };
        let out = run_campaign(&cfg, &opts).expect("campaign");
        let snap = out.snapshots.first().expect("at least one snapshot");
        let text = snap.to_text();
        let back = CtrlSnapshot::parse(&text).expect("parse");
        assert_eq!(&back, snap);

        // A flipped body byte is rejected by the header fingerprint.
        let tampered = text.replacen("kind=4", "kind=5", 1);
        if tampered != text {
            assert!(CtrlSnapshot::parse(&tampered).is_err());
        }
        assert!(CtrlSnapshot::parse(&text[..text.len() - 1]).is_err());
    }
}
