//! The control plane's event loop: Poisson job arrivals from
//! [`workloads`], FIFO admission with a queue timeout, departures, failure
//! injections, and periodic metric sampling — all scheduled on the
//! deterministic [`desim::Engine`].
//!
//! `run_scenario` is the one entry point: given a [`CtrlConfig`] it builds
//! a fresh [`FabricState`], drives every event to quiescence, and returns
//! the final state (with its journal) plus the metrics registry. Same
//! config ⇒ same journal hash, bit for bit.

use crate::metrics::Metrics;
use crate::state::{Admission, FabricState};
use desim::{Engine, SimDuration, SimTime};
use std::collections::VecDeque;
use topo::Shape3;
use workloads::{generate, ArrivalParams, JobRequest};

/// Scenario parameters for a control-plane run.
#[derive(Debug, Clone, Copy)]
pub struct CtrlConfig {
    /// TPUv4 racks in the fabric.
    pub racks: usize,
    /// Wavelength lanes per ring circuit.
    pub lanes: usize,
    /// Jobs drawn from the arrival process.
    pub jobs: usize,
    /// RNG seed for the arrival process (and the journal header).
    pub seed: u64,
    /// Arrival process parameters.
    pub arrivals: ArrivalParams,
    /// How long a job may queue before it is denied.
    pub queue_timeout: SimDuration,
    /// Chip failures to inject, 30 s apart, starting mid-trace.
    pub failures: usize,
    /// Gauge samples to spread across the horizon.
    pub samples: usize,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            racks: 1,
            lanes: 2,
            jobs: 12,
            seed: 7,
            arrivals: ArrivalParams::default(),
            queue_timeout: SimDuration::from_secs(1_800),
            failures: 1,
            samples: 64,
        }
    }
}

/// What `run_scenario` hands back.
#[derive(Debug)]
pub struct CtrlOutcome {
    /// Final control-plane state, including the journal.
    pub state: FabricState,
    /// The metrics registry after the run.
    pub metrics: Metrics,
    /// Simulated instant the last event executed at.
    pub horizon: SimTime,
}

/// A job waiting for capacity.
#[derive(Debug, Clone, Copy)]
struct Queued {
    job: u32,
    shape: Shape3,
    duration: SimDuration,
    arrival: SimTime,
}

/// The event-loop model: state + metrics + the admission queue.
struct ControlPlane {
    st: FabricState,
    metrics: Metrics,
    queue: VecDeque<Queued>,
    timeout: SimDuration,
}

impl ControlPlane {
    /// Admit now if a slice fits and programs; true when the job started
    /// (or was consumed by a programming denial, which also resolves it).
    fn try_start(&mut self, eng: &mut Engine<ControlPlane>, q: Queued) -> bool {
        let now = eng.now();
        match self.st.admit(now, q.job, q.shape) {
            Admission::Admitted { setup } => {
                self.metrics.bump("jobs.admitted");
                self.metrics
                    .record_wait(now.saturating_since(q.arrival).as_secs_f64());
                // Admission just journaled Admit + Program + Reconfigure;
                // the Program record carries the circuit count.
                if let Some(crate::journal::JournalEntry::Program { circuits, .. }) = self
                    .st
                    .journal()
                    .records()
                    .iter()
                    .rev()
                    .map(|r| &r.entry)
                    .find(|e| matches!(e, crate::journal::JournalEntry::Program { .. }))
                {
                    self.metrics.add("circuits.programmed", *circuits as u64);
                }
                let job = q.job;
                eng.schedule_at(now + setup + q.duration, move |m: &mut ControlPlane, e| {
                    m.on_depart(e, job);
                });
                true
            }
            Admission::NoSpace => false,
            Admission::ProgramDenied => {
                self.metrics.bump("jobs.denied.program");
                true
            }
        }
    }

    fn on_arrival(&mut self, eng: &mut Engine<ControlPlane>, q: Queued) {
        self.metrics.bump("jobs.arrived");
        if !self.try_start(eng, q) {
            self.metrics.bump("jobs.queued");
            self.queue.push_back(q);
            let job = q.job;
            let deadline = eng.now() + self.timeout;
            eng.schedule_at(deadline, move |m: &mut ControlPlane, e| {
                m.on_timeout(e, job);
            });
        }
    }

    fn on_timeout(&mut self, eng: &mut Engine<ControlPlane>, job: u32) {
        if let Some(pos) = self.queue.iter().position(|q| q.job == job) {
            if let Some(q) = self.queue.remove(pos) {
                self.st.deny_timeout(eng.now(), q.job, q.shape);
                self.metrics.bump("jobs.denied.timeout");
            }
        }
    }

    fn on_depart(&mut self, eng: &mut Engine<ControlPlane>, job: u32) {
        self.st.evict(eng.now(), job);
        self.metrics.bump("jobs.departed");
        // Freed capacity: retry queued jobs FIFO until one fails to fit.
        while let Some(&head) = self.queue.front() {
            if self.try_start(eng, head) {
                self.queue.pop_front();
            } else {
                break;
            }
        }
    }

    fn on_failure(&mut self, eng: &mut Engine<ControlPlane>) {
        let now = eng.now();
        self.metrics.bump("failures.injected");
        let (spliced, ok, failed) = match self.st.inject_failure(now) {
            Some(rec) => (
                rec.spliced as u64,
                rec.repair.is_some() as u64,
                rec.repair_error.is_some() as u64,
            ),
            None => (0, 0, 0),
        };
        self.metrics.add("circuits.spliced", spliced);
        self.metrics.add("repairs.ok", ok);
        self.metrics.add("repairs.failed", failed);
    }
}

/// Run a full control-plane scenario to quiescence.
pub fn run_scenario(cfg: &CtrlConfig) -> CtrlOutcome {
    let trace: Vec<JobRequest> = generate(cfg.jobs, &cfg.arrivals, cfg.seed);
    let mut model = ControlPlane {
        st: FabricState::new(cfg.racks, cfg.lanes, cfg.seed),
        metrics: Metrics::new(),
        queue: VecDeque::new(),
        timeout: cfg.queue_timeout,
    };
    let mut eng: Engine<ControlPlane> = Engine::new();

    for (i, req) in trace.iter().enumerate() {
        let q = Queued {
            job: i as u32,
            shape: req.shape,
            duration: req.duration,
            arrival: req.arrival,
        };
        eng.schedule_at(req.arrival, move |m: &mut ControlPlane, e| {
            m.on_arrival(e, q);
        });
    }

    // Failures anchor at the median arrival so tenants are live, 30 s apart.
    let anchor = trace
        .get(trace.len() / 2)
        .map(|r| r.arrival)
        .unwrap_or(SimTime::ZERO);
    for k in 0..cfg.failures {
        let at = anchor + SimDuration::from_secs(30) * (k as u64 + 1);
        eng.schedule_at(at, |m: &mut ControlPlane, e| m.on_failure(e));
    }

    // Gauge samples across the estimated horizon.
    let est = trace
        .iter()
        .map(|r| r.arrival + r.duration)
        .max()
        .unwrap_or(SimTime::ZERO)
        + cfg.queue_timeout;
    if cfg.samples > 0 {
        let step = est.since_origin() / cfg.samples as u64;
        for s in 1..=cfg.samples {
            eng.schedule_at(
                SimTime::ZERO + step * s as u64,
                |m: &mut ControlPlane, e| {
                    let now = e.now();
                    m.metrics.sample(now, &m.st);
                },
            );
        }
    }

    eng.run(&mut model);
    let horizon = eng.now();
    CtrlOutcome {
        state: model.st,
        metrics: model.metrics,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_to_quiescence_and_journals() {
        let cfg = CtrlConfig {
            jobs: 6,
            ..CtrlConfig::default()
        };
        let out = run_scenario(&cfg);
        assert_eq!(out.metrics.counter("jobs.arrived"), 6);
        let resolved = out.metrics.counter("jobs.admitted")
            + out.metrics.counter("jobs.denied.timeout")
            + out.metrics.counter("jobs.denied.program");
        assert_eq!(resolved, 6, "every arrival resolves");
        assert_eq!(
            out.metrics.counter("jobs.departed"),
            out.metrics.counter("jobs.admitted"),
            "every admitted job departs"
        );
        if out.metrics.counter("jobs.admitted") > 0 {
            assert!(out.metrics.counter("circuits.programmed") > 0);
        }
        assert_eq!(out.state.live_jobs(), 0, "fabric drains");
        assert!(!out.state.journal().is_empty());
        assert!(out.horizon > SimTime::ZERO);
    }

    #[test]
    fn same_seed_same_journal_hash() {
        let cfg = CtrlConfig::default();
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.state.journal().hash(), b.state.journal().hash());
        let other = CtrlConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let c = run_scenario(&other);
        assert_ne!(
            a.state.journal().hash(),
            c.state.journal().hash(),
            "different seed should produce a different trace"
        );
    }

    #[test]
    fn injected_failure_is_repaired_with_blast_radius_one() {
        let cfg = CtrlConfig {
            jobs: 8,
            failures: 1,
            ..CtrlConfig::default()
        };
        let out = run_scenario(&cfg);
        assert_eq!(out.metrics.counter("failures.injected"), 1);
        let repaired: Vec<_> = out
            .state
            .incidents()
            .iter()
            .filter_map(|i| i.repair)
            .collect();
        assert!(
            !repaired.is_empty(),
            "mid-trace tenants exist, repair must happen"
        );
        for rep in repaired {
            assert_eq!(rep.blast_servers, 1);
        }
    }
}
