//! Control-plane observability: named counters, an admission-wait
//! histogram, and gauge time-series sampled from [`FabricState`] on a
//! fixed tick.
//!
//! Everything builds on [`desim::stats`] so the numbers carry the same
//! deterministic semantics as the simulation itself: same seed, same
//! metrics, bit for bit.
//!
//! [`FabricState`]: crate::state::FabricState

use crate::plan::CrossPlanStats;
use crate::state::{FabricState, Utilization};
use desim::stats::{Histogram, OnlineStats, TimeSeries};
use desim::{SimTime, SnapReader, SnapWriter};
use route::{CacheStats, PlanStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counter names bumped by the control plane, in render order.
pub const COUNTERS: &[&str] = &[
    "jobs.arrived",
    "jobs.admitted",
    "jobs.queued",
    "jobs.denied.timeout",
    "jobs.denied.program",
    "jobs.departed",
    "circuits.programmed",
    "failures.injected",
    "circuits.spliced",
    "repairs.ok",
    "repairs.failed",
];

/// Counter names bumped outside the render-order list (fault-campaign and
/// retry-path counters created on first bump). Snapshot restore resolves
/// serialized names back to `'static` strings through this registry and
/// [`COUNTERS`]; a name in neither is a corrupt snapshot.
pub const EXTRA_COUNTERS: &[&str] = &[
    "jobs.rejected.infeasible",
    "jobs.rejected.program",
    "jobs.retried",
    "jobs.stitched",
    "stitch.legs",
    "stitch.legs.departed",
    "stitch.rollbacks",
];

/// Resolve a snapshot-serialized counter name to its `'static` identity.
fn static_counter(name: &str) -> Result<&'static str, String> {
    COUNTERS
        .iter()
        .chain(EXTRA_COUNTERS)
        .find(|&&n| n == name)
        .copied()
        .ok_or_else(|| format!("metrics restore: unknown counter {name:?}"))
}

/// Resolve a snapshot-serialized fault code against the workspace fault
/// registry (`lightpath::fault::CODES`, the same registry verify CTL403
/// audits journals against).
fn static_code(code: &str) -> Result<&'static str, String> {
    lightpath::fault::CODES
        .iter()
        .find(|&&c| c == code)
        .copied()
        .ok_or_else(|| format!("metrics restore: unknown fault code {code:?}"))
}

/// Routing-cache telemetry in one place: the plan library, the cross-plan
/// cache, and optionally a [`route::PathCache`] when the caller drives one.
/// Telemetry only — read from the live engine at report time, never
/// journaled, snapshotted, or folded into fingerprints (a cold cache must
/// replay bit-identically to a warm one).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteTelemetry {
    /// Intra-wafer plan-library counters.
    pub plan: PlanStats,
    /// Plan-library instances resident at report time.
    pub plan_resident: usize,
    /// Cross-wafer plan cache counters.
    pub cross: CrossPlanStats,
    /// Cross plans resident at report time.
    pub cross_resident: usize,
    /// `PathCache` counters, when one is in play.
    pub path_cache: Option<CacheStats>,
}

impl RouteTelemetry {
    /// Snapshot the counters of a state's plan engine.
    pub fn of(state: &FabricState) -> RouteTelemetry {
        let engine = state.plan_engine();
        RouteTelemetry {
            plan: engine.plan_stats(),
            plan_resident: engine.resident_instances(),
            cross: engine.cross_stats(),
            cross_resident: engine.resident_cross_plans(),
            path_cache: None,
        }
    }

    /// Fold another telemetry snapshot into this one (pod aggregation).
    /// Counters add; `path_cache` sums when either side carries one.
    pub fn merge(&mut self, other: &RouteTelemetry) {
        self.plan.hits += other.plan.hits;
        self.plan.misses += other.plan.misses;
        self.plan.evictions += other.plan.evictions;
        self.plan.fallbacks += other.plan.fallbacks;
        self.plan.stamped_circuits += other.plan.stamped_circuits;
        self.plan_resident += other.plan_resident;
        self.cross.hits += other.cross.hits;
        self.cross.misses += other.cross.misses;
        self.cross.fallbacks += other.cross.fallbacks;
        self.cross.evictions += other.cross.evictions;
        self.cross_resident += other.cross_resident;
        if let Some(o) = &other.path_cache {
            let c = self.path_cache.get_or_insert(CacheStats::default());
            c.hits += o.hits;
            c.misses += o.misses;
            c.invalidations += o.invalidations;
        }
    }

    /// Fixed-key-order JSON object (no trailing newline). Key order is
    /// hand-rolled and byte-stable: same counters, same bytes, regardless
    /// of shard count or merge order.
    pub fn json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "{inner}\"plan_library\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"fallbacks\": {}, \"stamped_circuits\": {}, \"resident\": {} }},",
            self.plan.hits,
            self.plan.misses,
            self.plan.evictions,
            self.plan.fallbacks,
            self.plan.stamped_circuits,
            self.plan_resident,
        );
        let _ = write!(
            out,
            "{inner}\"cross_plans\": {{ \"hits\": {}, \"misses\": {}, \"fallbacks\": {}, \
             \"evictions\": {}, \"resident\": {} }}",
            self.cross.hits,
            self.cross.misses,
            self.cross.fallbacks,
            self.cross.evictions,
            self.cross_resident,
        );
        if let Some(c) = &self.path_cache {
            let _ = write!(
                out,
                ",\n{inner}\"path_cache\": {{ \"hits\": {}, \"misses\": {}, \
                 \"invalidations\": {} }}",
                c.hits, c.misses, c.invalidations,
            );
        }
        let _ = write!(out, "\n{pad}}}");
        out
    }

    /// Human-readable lines for the CLI report.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan library:  hits={} misses={} fallbacks={} evictions={} stamped={} resident={}",
            self.plan.hits,
            self.plan.misses,
            self.plan.fallbacks,
            self.plan.evictions,
            self.plan.stamped_circuits,
            self.plan_resident,
        );
        let _ = writeln!(
            out,
            "cross plans:   hits={} misses={} fallbacks={} evictions={} resident={}",
            self.cross.hits,
            self.cross.misses,
            self.cross.fallbacks,
            self.cross.evictions,
            self.cross_resident,
        );
        if let Some(c) = &self.path_cache {
            let _ = writeln!(
                out,
                "path cache:    hits={} misses={} invalidations={} hit_rate={:.3}",
                c.hits,
                c.misses,
                c.invalidations,
                c.hit_rate(),
            );
        }
        out
    }
}

/// The control plane's metrics registry.
#[derive(Debug)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    /// Rejections and denials by machine-readable fault code (the
    /// [`lightpath::FabricError::root_code`] of the failing plan commit).
    rejections: BTreeMap<&'static str, u64>,
    /// Time a job spent between arrival and admission, in seconds.
    admission_wait: Histogram,
    occupancy: TimeSeries,
    live_circuits: TimeSeries,
    reconfigs: TimeSeries,
    aggregate_gbps: TimeSeries,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// An empty registry. The wait histogram spans 0 s – 1 h in 64 bins,
    /// wide enough for any queue-timeout policy the CLI exposes.
    pub fn new() -> Self {
        Metrics {
            counters: COUNTERS.iter().map(|&n| (n, 0)).collect(),
            rejections: BTreeMap::new(),
            admission_wait: Histogram::new(0.0, 3600.0, 64),
            occupancy: TimeSeries::new(),
            live_circuits: TimeSeries::new(),
            reconfigs: TimeSeries::new(),
            aggregate_gbps: TimeSeries::new(),
        }
    }

    /// Increment `name` by one. Unknown names are created on first bump.
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment `name` by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Count one rejection/denial under its machine-readable fault code.
    pub fn bump_rejection(&mut self, code: &'static str) {
        *self.rejections.entry(code).or_insert(0) += 1;
    }

    /// Rejection counts by fault code, in code order.
    pub fn rejections(&self) -> &BTreeMap<&'static str, u64> {
        &self.rejections
    }

    /// The per-reason rejection report as a small JSON object — the CI
    /// fault-smoke artifact. Keys are fault codes, values are counts;
    /// `total` sums them.
    pub fn rejection_report_json(&self) -> String {
        let mut out = String::from("{\n  \"rejections\": {");
        for (i, (code, n)) in self.rejections.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{code}\": {n}");
        }
        if !self.rejections.is_empty() {
            out.push_str("\n  ");
        }
        let total: u64 = self.rejections.values().sum();
        let _ = write!(out, "}},\n  \"total\": {total}\n}}\n");
        out
    }

    /// Fold another registry into this one — the pod-level aggregation
    /// path. Counters and per-reason rejection counts merge through their
    /// `BTreeMap`s (so [`Metrics::rejection_report_json`] on the merged
    /// registry is byte-stable no matter how many shards or worker
    /// threads produced the inputs), the admission-wait histograms merge
    /// bin-wise, and gauge series merge in time order.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (code, n) in &other.rejections {
            *self.rejections.entry(code).or_insert(0) += n;
        }
        self.admission_wait.merge(&other.admission_wait);
        self.occupancy.merge_by_time(&other.occupancy);
        self.live_circuits.merge_by_time(&other.live_circuits);
        self.reconfigs.merge_by_time(&other.reconfigs);
        self.aggregate_gbps.merge_by_time(&other.aggregate_gbps);
    }

    /// Record how long a job waited from arrival to admission.
    pub fn record_wait(&mut self, seconds: f64) {
        self.admission_wait.record(seconds);
    }

    /// The admission-wait histogram.
    pub fn admission_wait(&self) -> &Histogram {
        &self.admission_wait
    }

    /// Sample the fabric's gauges at `now` into the time-series.
    pub fn sample(&mut self, now: SimTime, state: &FabricState) {
        let t = now.since_origin().as_secs_f64();
        let u: Utilization = state.utilization();
        self.occupancy.push(t, u.occupancy);
        self.live_circuits.push(t, u.circuits as f64);
        self.reconfigs.push(t, u.reconfigs as f64);
        self.aggregate_gbps.push(t, u.aggregate_gbps);
    }

    /// The sampled gauge series, for plotting or assertions:
    /// `(occupancy, live_circuits, reconfigs, aggregate_gbps)`.
    pub fn series(&self) -> (&TimeSeries, &TimeSeries, &TimeSeries, &TimeSeries) {
        (
            &self.occupancy,
            &self.live_circuits,
            &self.reconfigs,
            &self.aggregate_gbps,
        )
    }

    /// Canonical snapshot encoding of the whole registry. Floats travel as
    /// exact bit patterns, so [`read_snap`](Self::read_snap) is
    /// bit-identical — a resumed campaign's metrics keep accumulating from
    /// exactly where the crashed run's left off.
    pub fn write_snap(&self, w: &mut SnapWriter) {
        w.section("metrics");
        w.u64("counters", self.counters.len() as u64);
        for (name, v) in &self.counters {
            w.str("name", name);
            w.u64("value", *v);
        }
        w.u64("rejections", self.rejections.len() as u64);
        for (code, n) in &self.rejections {
            w.str("code", code);
            w.u64("count", *n);
        }
        w.f64("wait_lo", self.admission_wait.lo());
        w.f64("wait_hi", self.admission_wait.hi());
        w.u64("wait_bins", self.admission_wait.counts().len() as u64);
        for &c in self.admission_wait.counts() {
            w.u64("bin", c);
        }
        w.u64("wait_under", self.admission_wait.underflow());
        w.u64("wait_over", self.admission_wait.overflow());
        let (n, mean, m2, min, max) = self.admission_wait.stats().to_raw();
        w.u64("wait_n", n);
        w.f64("wait_mean", mean);
        w.f64("wait_m2", m2);
        w.f64("wait_min", min);
        w.f64("wait_max", max);
        for (key, series) in [
            ("occupancy", &self.occupancy),
            ("live_circuits", &self.live_circuits),
            ("reconfigs", &self.reconfigs),
            ("aggregate_gbps", &self.aggregate_gbps),
        ] {
            w.u64(key, series.len() as u64);
            for &(t, v) in series.points() {
                w.f64("t", t);
                w.f64("v", v);
            }
        }
    }

    /// Decode a [`write_snap`](Self::write_snap) section. Counter names and
    /// fault codes are resolved against their compile-time registries;
    /// anything unknown is a corrupt snapshot, reported as `Err`.
    pub fn read_snap(r: &mut SnapReader<'_>) -> Result<Metrics, String> {
        r.section("metrics")?;
        let mut counters = BTreeMap::new();
        for _ in 0..r.u64("counters")? {
            let name = static_counter(&r.str("name")?)?;
            counters.insert(name, r.u64("value")?);
        }
        let mut rejections = BTreeMap::new();
        for _ in 0..r.u64("rejections")? {
            let code = static_code(&r.str("code")?)?;
            rejections.insert(code, r.u64("count")?);
        }
        let lo = r.f64("wait_lo")?;
        let hi = r.f64("wait_hi")?;
        let nbins = r.u64("wait_bins")? as usize;
        let mut bins = Vec::with_capacity(nbins);
        for _ in 0..nbins {
            bins.push(r.u64("bin")?);
        }
        let underflow = r.u64("wait_under")?;
        let overflow = r.u64("wait_over")?;
        let stats = OnlineStats::from_raw(
            r.u64("wait_n")?,
            r.f64("wait_mean")?,
            r.f64("wait_m2")?,
            r.f64("wait_min")?,
            r.f64("wait_max")?,
        );
        let admission_wait = Histogram::from_raw(lo, hi, bins, underflow, overflow, stats)?;
        let mut read_series = |key: &str| -> Result<TimeSeries, String> {
            let n = r.u64(key)? as usize;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push((r.f64("t")?, r.f64("v")?));
            }
            TimeSeries::from_points(points)
        };
        let occupancy = read_series("occupancy")?;
        let live_circuits = read_series("live_circuits")?;
        let reconfigs = read_series("reconfigs")?;
        let aggregate_gbps = read_series("aggregate_gbps")?;
        Ok(Metrics {
            counters,
            rejections,
            admission_wait,
            occupancy,
            live_circuits,
            reconfigs,
            aggregate_gbps,
        })
    }

    /// Render a human-readable summary block for the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "counters:");
        for name in COUNTERS {
            let _ = writeln!(out, "  {:<22} {}", name, self.counter(name));
        }
        for (name, v) in &self.counters {
            if !COUNTERS.contains(name) {
                let _ = writeln!(out, "  {name:<22} {v}");
            }
        }
        if !self.rejections.is_empty() {
            let _ = writeln!(out, "rejections by reason:");
            for (code, n) in &self.rejections {
                let _ = writeln!(out, "  {code:<38} {n}");
            }
        }
        if self.admission_wait.count() > 0 {
            let s = self.admission_wait.stats();
            let _ = writeln!(
                out,
                "admission wait: n={} mean={:.3}s p50={:.3}s p99={:.3}s max={:.3}s",
                self.admission_wait.count(),
                s.mean(),
                self.admission_wait.quantile(0.5).unwrap_or(0.0),
                self.admission_wait.quantile(0.99).unwrap_or(0.0),
                s.max().unwrap_or(0.0),
            );
        } else {
            let _ = writeln!(out, "admission wait: no queued admissions");
        }
        for (label, series, unit) in [
            ("occupancy", &self.occupancy, ""),
            ("live circuits", &self.live_circuits, ""),
            ("reconfigs", &self.reconfigs, ""),
            ("aggregate bw", &self.aggregate_gbps, " Gb/s"),
        ] {
            if series.is_empty() {
                continue;
            }
            let mut peak = f64::MIN;
            let mut last = 0.0;
            for &(_, v) in series.points() {
                if v > peak {
                    peak = v;
                }
                last = v;
            }
            let _ = writeln!(
                out,
                "{label:<14} samples={} peak={peak:.2}{unit} final={last:.2}{unit}",
                series.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("jobs.admitted"), 0);
        m.bump("jobs.admitted");
        m.add("jobs.admitted", 2);
        assert_eq!(m.counter("jobs.admitted"), 3);
        assert_eq!(m.counter("no.such.counter"), 0);
    }

    #[test]
    fn summary_mentions_every_counter() {
        let m = Metrics::new();
        let text = m.summary();
        for name in COUNTERS {
            assert!(text.contains(name), "summary missing {name}");
        }
    }

    #[test]
    fn merging_an_empty_rejection_map_is_identity() {
        let mut m = Metrics::new();
        m.bump_rejection("route/no-disjoint-path");
        m.bump_rejection("route/no-disjoint-path");
        m.bump_rejection("circuit/insufficient-tx-lanes");
        let before = m.rejection_report_json();
        m.merge(&Metrics::new());
        assert_eq!(
            m.rejection_report_json(),
            before,
            "a shard that rejected nothing must not perturb the map"
        );
        assert_eq!(m.rejections().get("route/no-disjoint-path"), Some(&2));
        // The other direction too: empty absorbs the populated map whole.
        let mut empty = Metrics::new();
        empty.merge(&m);
        assert_eq!(empty.rejection_report_json(), before);
    }

    #[test]
    fn merging_disjoint_rejection_keys_unions_the_maps() {
        let mut a = Metrics::new();
        a.bump_rejection("route/no-disjoint-path");
        let mut b = Metrics::new();
        b.bump_rejection("circuit/insufficient-tx-lanes");
        b.bump_rejection("topo/degenerate-layout");
        a.merge(&b);
        assert_eq!(a.rejections().len(), 3, "disjoint keys union, none lost");
        assert_eq!(a.rejections().get("route/no-disjoint-path"), Some(&1));
        assert_eq!(
            a.rejections().get("circuit/insufficient-tx-lanes"),
            Some(&1)
        );
        assert_eq!(a.rejections().get("topo/degenerate-layout"), Some(&1));
    }

    #[test]
    fn merging_overlapping_rejection_keys_sums_counts() {
        let mut a = Metrics::new();
        for _ in 0..3 {
            a.bump_rejection("route/no-disjoint-path");
        }
        let mut b = Metrics::new();
        for _ in 0..5 {
            b.bump_rejection("route/no-disjoint-path");
        }
        b.bump_rejection("circuit/insufficient-tx-lanes");
        a.merge(&b);
        assert_eq!(
            a.rejections().get("route/no-disjoint-path"),
            Some(&8),
            "overlapping keys sum, they do not overwrite"
        );
        assert_eq!(
            a.rejections().get("circuit/insufficient-tx-lanes"),
            Some(&1)
        );
        let total: u64 = a.rejections().values().sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn merged_rejection_report_is_byte_stable_across_merge_order() {
        let shard = |codes: &[&'static str], waits: &[f64]| {
            let mut m = Metrics::new();
            for c in codes {
                m.bump_rejection(c);
                m.bump("jobs.rejected.program");
            }
            for &w in waits {
                m.record_wait(w);
            }
            m
        };
        let a = shard(&["route/no-disjoint-path"], &[1.5]);
        let b = shard(
            &["circuit/insufficient-tx-lanes", "route/no-disjoint-path"],
            &[7.25, 0.5],
        );
        let c = shard(&["topo/out-of-bounds"], &[]);
        let mut fwd = Metrics::new();
        for m in [&a, &b, &c] {
            fwd.merge(m);
        }
        let mut rev = Metrics::new();
        for m in [&c, &b, &a] {
            rev.merge(m);
        }
        assert_eq!(
            fwd.rejection_report_json(),
            rev.rejection_report_json(),
            "per-shard counter aggregation must be merge-order invariant"
        );
        assert_eq!(fwd.counter("jobs.rejected.program"), 4);
        assert_eq!(fwd.rejections().get("route/no-disjoint-path"), Some(&2));
        assert_eq!(fwd.admission_wait().count(), 3);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        use topo::Shape3;
        let mut st = FabricState::new(1, 2, 0);
        let mut m = Metrics::new();
        m.sample(SimTime::ZERO, &st);
        st.admit(SimTime::ZERO, 0, Shape3::new(2, 2, 1));
        m.sample(SimTime::from_ps(1_000), &st);
        m.bump("jobs.admitted");
        m.bump("jobs.retried");
        m.bump_rejection("route/no-disjoint-path");
        m.record_wait(12.5);
        m.record_wait(0.125);

        let mut w = SnapWriter::new();
        m.write_snap(&mut w);
        let text = w.finish();
        let mut r = SnapReader::new(&text);
        let back = Metrics::read_snap(&mut r).expect("read_snap");
        r.done().expect("consumed");

        let mut w2 = SnapWriter::new();
        back.write_snap(&mut w2);
        assert_eq!(w2.finish(), text, "round trip must be byte-identical");
        assert_eq!(back.counter("jobs.retried"), 1);
        assert_eq!(back.admission_wait().count(), 2);

        // A counter name outside the registries is corrupt, not creatable.
        let forged = text.replacen("jobs.retried", "jobs.invented", 1);
        let mut r = SnapReader::new(&forged);
        assert!(Metrics::read_snap(&mut r).is_err());
    }

    #[test]
    fn sampling_tracks_fabric_gauges() {
        use topo::Shape3;
        let mut st = FabricState::new(1, 2, 0);
        let mut m = Metrics::new();
        m.sample(SimTime::ZERO, &st);
        st.admit(SimTime::ZERO, 0, Shape3::new(2, 2, 1));
        m.sample(SimTime::from_ps(1_000), &st);
        let (occ, circuits, _, _) = m.series();
        assert_eq!(occ.len(), 2);
        let pts = circuits.points();
        assert_eq!(pts[0].1, 0.0);
        assert!(pts[1].1 > 0.0);
    }
}
