//! Control-plane state: the photonic rack, tenant table, incident log, and
//! the journal, with one set of `apply_*` mutations shared by the live
//! event loop and journal replay.
//!
//! Determinism is the design constraint everything here bends around. The
//! wafer's establish path increments its reconfiguration and circuit-id
//! counters even when a batch is later rolled back, so *failed* programming
//! attempts and *failed* repairs are journaled too and mechanically
//! re-attempted during replay — otherwise a replayed wafer would drift from
//! the live one in exactly those counters. Spare chips are chosen by a pure
//! rule (first healthy free chip in coordinate order not already reserved),
//! and every container iterated during decision-making is ordered
//! (`BTreeMap`/`BTreeSet`/coordinate order), never hash-ordered.

use crate::journal::{DenyReason, Journal, JournalEntry, JournalHeader, Record};
use crate::plan::{program_planned, ring_plan, PlanEngine};
use crate::snapshot::FabricSnapshot;
use desim::{SimDuration, SimTime, SnapReader, SnapWriter};
use lightpath::{CtrlFault, FabricCircuit, FabricError, TopoFault, WaferId, WaferTelemetry};
use phy::thermal::RECONFIG_LATENCY_S;
use resilience::{chip_to_tile, optical_repair, PhotonicRack};
use std::collections::{BTreeMap, BTreeSet};
use topo::{Coord3, Shape3, Slice, SliceId};

/// Reason code journaled when a requested shape can never fit the torus.
const INFEASIBLE_CODE: &str = "topo/out-of-bounds";

/// A tenant holding a slice and the circuits programmed for it.
#[derive(Debug)]
pub struct JobRecord {
    /// The slice the tenant occupies.
    pub slice: Slice,
    /// Live circuits: the ring plan plus any repair splices.
    pub handles: Vec<FabricCircuit>,
    /// Spare chips spliced into this tenant by repairs.
    pub spares: Vec<Coord3>,
}

/// What a successful repair did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairOutcome {
    /// Repair circuits established.
    pub circuits: usize,
    /// Servers whose wafers terminate repair circuits (victim's + spare's).
    pub servers_touched: usize,
    /// Servers whose tenant chips were disturbed — the paper's blast
    /// radius.
    pub blast_servers: usize,
    /// MZI settling time for the splice.
    pub setup: SimDuration,
}

/// One failure incident and how it was handled.
#[derive(Debug, Clone)]
pub struct IncidentRecord {
    /// Dense incident id.
    pub incident: u64,
    /// The failed chip.
    pub chip: Coord3,
    /// The tenant that owned it, if any.
    pub victim: Option<u32>,
    /// Circuits spliced out because they terminated on the failed chip.
    pub spliced: usize,
    /// The successful repair, if one was made.
    pub repair: Option<RepairOutcome>,
    /// The error of a failed repair attempt, if one was made and failed.
    pub repair_error: Option<String>,
}

/// Outcome of an admission attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Slice granted and circuits programmed; ready after `setup`.
    Admitted {
        /// MZI settling time before the tenant's rings can run.
        setup: SimDuration,
    },
    /// No slice of the requested shape is free; the caller may queue.
    NoSpace,
    /// A slice was free but programming its circuits failed on the final
    /// attempt; the slice was released and the job denied (journaled).
    ProgramDenied {
        /// The fault chain the failing plan commit produced.
        error: FabricError,
    },
    /// A non-final attempt failed: the slice was released, a `Reject` +
    /// `Rollback` pair was journaled, and the caller may retry after
    /// backoff.
    ProgramRejected {
        /// The fault chain the failing plan commit produced.
        error: FabricError,
    },
    /// The requested shape can never fit this torus, no matter how empty
    /// it is. Journaled as a `Reject` (code `topo/out-of-bounds`) with a
    /// zero-circuit `Rollback`; queueing or retrying cannot help.
    Infeasible {
        /// The topology fault describing the impossible extent.
        error: FabricError,
    },
}

/// The control plane's entire mutable world.
#[derive(Debug)]
pub struct FabricState {
    rack: PhotonicRack,
    lanes: usize,
    jobs: BTreeMap<u32, JobRecord>,
    incidents: Vec<IncidentRecord>,
    /// Spares spliced into running tenants; excluded from replacement
    /// choice until their tenant departs.
    reserved: BTreeSet<Coord3>,
    journal: Journal,
    /// Routing scratch and plan caches shared by every plan this daemon
    /// programs — one A* searcher per campaign (retries and replays never
    /// allocate a fresh scratch) plus the relocatable plan library and
    /// cross-plan cache. Pure accelerator: excluded from snapshots and
    /// fingerprints because a cold engine reproduces identical bytes.
    plans: PlanEngine,
    /// Replay bookkeeping: a `Reject` record awaiting its paired
    /// `Rollback` — `(job, attempt, circuits rolled back)`.
    pending_rollback: Option<(u32, u32, usize)>,
}

impl FabricState {
    /// A fresh fabric of `racks` TPUv4 racks with an empty journal.
    pub fn new(racks: usize, lanes: usize, seed: u64) -> Self {
        let rack = PhotonicRack::new(racks);
        let shape = rack.cluster.occupancy().shape();
        FabricState {
            rack,
            lanes,
            jobs: BTreeMap::new(),
            incidents: Vec::new(),
            reserved: BTreeSet::new(),
            journal: Journal::new(JournalHeader {
                racks,
                lanes,
                seed,
                shape,
            }),
            plans: PlanEngine::new(),
            pending_rollback: None,
        }
    }

    /// The underlying photonic rack.
    pub fn rack(&self) -> &PhotonicRack {
        &self.rack
    }

    /// The command journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The plan engine (routing scratch + plan caches), for telemetry.
    pub fn plan_engine(&self) -> &PlanEngine {
        &self.plans
    }

    /// Failure incidents, in injection order.
    pub fn incidents(&self) -> &[IncidentRecord] {
        &self.incidents
    }

    /// Tenants currently holding slices.
    pub fn live_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Per-wafer telemetry snapshots, in wafer-id order. Two states whose
    /// snapshots are equal ended in the same observable fabric state.
    pub fn telemetry(&self) -> Vec<WaferTelemetry> {
        (0..self.rack.fabric.wafer_count())
            .map(|w| self.rack.fabric.wafer(WaferId(w)).telemetry())
            .collect()
    }

    /// Instantaneous utilization gauges for metric sampling.
    pub fn utilization(&self) -> Utilization {
        let occ = self.rack.cluster.occupancy();
        let total = occ.shape().volume() as f64;
        let used: usize = occ.slices().map(|s| s.chips()).sum();
        let mut circuits = self.rack.fabric.cross_circuits().count();
        let mut reconfigs = 0u64;
        let mut gbps = 0.0;
        for w in 0..self.rack.fabric.wafer_count() {
            let wafer = self.rack.fabric.wafer(WaferId(w));
            circuits += wafer.circuits().count();
            reconfigs += wafer.reconfigs();
            gbps += wafer.aggregate_bandwidth().0;
        }
        Utilization {
            occupancy: used as f64 / total,
            circuits,
            reconfigs,
            aggregate_gbps: gbps,
        }
    }

    // ------------------------------------------------- snapshot layer ----

    /// FNV-1a fingerprint of the canonical serialization of all replayed
    /// state: config binding (racks/lanes/seed), occupancy, the full
    /// photonic fabric, tenant table, incidents, reserved spares, and
    /// replay bookkeeping. The journal itself is *excluded* — a replayed
    /// state carries an empty journal yet must fingerprint identically to
    /// the live state it reproduces — and so is the routing scratch
    /// (semantically stateless).
    pub fn fingerprint(&self) -> u64 {
        let mut w = SnapWriter::new();
        self.write_state(&mut w);
        w.fingerprint()
    }

    /// Capture a canonical snapshot at instant `at` and journal the
    /// [`JournalEntry::Snapshot`] record committing to its fingerprint.
    ///
    /// Protocol: the snapshot's `seq` is the Snapshot record's own
    /// sequence number and its `base_fnv` is the journal hash fold *before*
    /// that record, so [`FabricSnapshot::restore`]'s resumed journal — base
    /// at `seq`, the identical Snapshot record re-pushed first — chains to
    /// byte-identical hashes with the uninterrupted run.
    pub fn capture_snapshot(&mut self, at: SimTime) -> FabricSnapshot {
        let seq = self.journal.next_seq();
        let base_fnv = self.journal.hash();
        let mut w = SnapWriter::new();
        self.write_state(&mut w);
        let fingerprint = w.fingerprint();
        let state = w.finish();
        self.journal
            .push(at, JournalEntry::Snapshot { fingerprint });
        FabricSnapshot {
            at,
            seq,
            base_fnv,
            fingerprint,
            header: *self.journal.header(),
            state,
        }
    }

    /// Truncate journal records below `watermark`, which must be the
    /// sequence number of a captured snapshot's `Snapshot` record (see
    /// [`Journal::compact_to`]). Downward-only; the journal hash and
    /// logical length are invariant.
    pub fn compact_journal(&mut self, watermark: u64) -> Result<usize, String> {
        self.journal.compact_to(watermark)
    }

    /// Canonical encoding of all replayed state (see
    /// [`fingerprint`](Self::fingerprint) for what is covered and why the
    /// journal is not).
    fn write_state(&self, w: &mut SnapWriter) {
        let h = self.journal.header();
        w.section("state");
        w.u64("racks", h.racks as u64);
        w.u64("lanes", h.lanes as u64);
        w.u64("seed", h.seed);

        w.section("occupancy");
        let occ = self.rack.cluster.occupancy();
        let slices: Vec<_> = occ.slices().collect();
        w.u64("slices", slices.len() as u64);
        for s in slices {
            w.u64("id", s.id.0 as u64);
            let [ox, oy, oz] = s.origin.p;
            for (k, v) in [("ox", ox), ("oy", oy), ("oz", oz)] {
                w.u64(k, v as u64);
            }
            let [ex, ey, ez] = s.extent.dims;
            for (k, v) in [("ex", ex), ("ey", ey), ("ez", ez)] {
                w.u64(k, v as u64);
            }
        }
        let failed: Vec<Coord3> = occ.shape().coords().filter(|&c| occ.is_failed(c)).collect();
        w.u64("failed", failed.len() as u64);
        for c in failed {
            let [x, y, z] = c.p;
            w.u64("x", x as u64);
            w.u64("y", y as u64);
            w.u64("z", z as u64);
        }

        self.rack.fabric.write_snap(w);

        w.section("jobs");
        w.u64("count", self.jobs.len() as u64);
        for (job, rec) in &self.jobs {
            w.u64("job", *job as u64);
            let [ox, oy, oz] = rec.slice.origin.p;
            let [ex, ey, ez] = rec.slice.extent.dims;
            w.u64("ox", ox as u64);
            w.u64("oy", oy as u64);
            w.u64("oz", oz as u64);
            w.u64("ex", ex as u64);
            w.u64("ey", ey as u64);
            w.u64("ez", ez as u64);
            w.u64("handles", rec.handles.len() as u64);
            for h in &rec.handles {
                match h {
                    FabricCircuit::Wafer(wid, cid) => {
                        w.u64("kind", 0);
                        w.u64("wafer", wid.0 as u64);
                        w.u64("ckt", cid.raw());
                    }
                    FabricCircuit::Cross(cid) => {
                        w.u64("kind", 1);
                        w.u64("cross", cid.raw());
                    }
                }
            }
            w.u64("spares", rec.spares.len() as u64);
            for s in &rec.spares {
                let [x, y, z] = s.p;
                w.u64("x", x as u64);
                w.u64("y", y as u64);
                w.u64("z", z as u64);
            }
        }

        w.section("incidents");
        w.u64("count", self.incidents.len() as u64);
        for i in &self.incidents {
            w.u64("incident", i.incident);
            let [x, y, z] = i.chip.p;
            w.u64("x", x as u64);
            w.u64("y", y as u64);
            w.u64("z", z as u64);
            match i.victim {
                Some(v) => {
                    w.bool("has_victim", true);
                    w.u64("victim", v as u64);
                }
                None => w.bool("has_victim", false),
            }
            w.u64("spliced", i.spliced as u64);
            match &i.repair {
                Some(rep) => {
                    w.bool("has_repair", true);
                    w.u64("circuits", rep.circuits as u64);
                    w.u64("servers_touched", rep.servers_touched as u64);
                    w.u64("blast_servers", rep.blast_servers as u64);
                    w.u64("setup_ps", rep.setup.as_ps());
                }
                None => w.bool("has_repair", false),
            }
            match &i.repair_error {
                Some(e) => {
                    w.bool("has_repair_error", true);
                    w.str("repair_error", e);
                }
                None => w.bool("has_repair_error", false),
            }
        }

        w.section("reserved");
        w.u64("count", self.reserved.len() as u64);
        for c in &self.reserved {
            let [x, y, z] = c.p;
            w.u64("x", x as u64);
            w.u64("y", y as u64);
            w.u64("z", z as u64);
        }

        w.section("pending");
        match self.pending_rollback {
            Some((job, attempt, circuits)) => {
                w.bool("has", true);
                w.u64("job", job as u64);
                w.u64("attempt", attempt as u64);
                w.u64("circuits", circuits as u64);
            }
            None => w.bool("has", false),
        }
    }

    /// Rebuild a state from a [`write_state`](Self::write_state) body,
    /// adopting `journal` as the (resumed or empty) journal. The fabric is
    /// re-fabricated from the header template and the recorded mutable
    /// state applied on top.
    pub(crate) fn restore_body(
        journal: Journal,
        r: &mut SnapReader<'_>,
    ) -> Result<FabricState, String> {
        r.section("state")?;
        let racks = r.u64("racks")? as usize;
        let lanes = r.u64("lanes")? as usize;
        let seed = r.u64("seed")?;
        let h = *journal.header();
        if racks != h.racks || lanes != h.lanes || seed != h.seed {
            return Err(format!(
                "state restore: snapshot config ({racks}, {lanes}, {seed}) does not match \
                 journal header ({}, {}, {})",
                h.racks, h.lanes, h.seed
            ));
        }
        let mut st = FabricState::new(racks, lanes, seed);
        st.journal = journal;

        r.section("occupancy")?;
        let slices = r.u64("slices")? as usize;
        for _ in 0..slices {
            let id = u32::try_from(r.u64("id")?)
                .map_err(|_| "state restore: slice id exceeds u32".to_string())?;
            let ox = r.u64("ox")? as usize;
            let oy = r.u64("oy")? as usize;
            let oz = r.u64("oz")? as usize;
            let ex = r.u64("ex")? as usize;
            let ey = r.u64("ey")? as usize;
            let ez = r.u64("ez")? as usize;
            st.rack
                .cluster
                .occupancy_mut()
                .place(Slice::new(
                    id,
                    Coord3::new(ox, oy, oz),
                    Shape3::new(ex, ey, ez),
                ))
                .map_err(|e| format!("state restore: slice {id} placement rejected: {e:?}"))?;
        }
        let failed = r.u64("failed")? as usize;
        for _ in 0..failed {
            let x = r.u64("x")? as usize;
            let y = r.u64("y")? as usize;
            let z = r.u64("z")? as usize;
            st.rack
                .cluster
                .occupancy_mut()
                .fail_chip(Coord3::new(x, y, z));
        }

        st.rack.fabric.read_snap(r)?;

        r.section("jobs")?;
        let jobs = r.u64("count")? as usize;
        for _ in 0..jobs {
            let job = u32::try_from(r.u64("job")?)
                .map_err(|_| "state restore: job id exceeds u32".to_string())?;
            let ox = r.u64("ox")? as usize;
            let oy = r.u64("oy")? as usize;
            let oz = r.u64("oz")? as usize;
            let ex = r.u64("ex")? as usize;
            let ey = r.u64("ey")? as usize;
            let ez = r.u64("ez")? as usize;
            let nh = r.u64("handles")? as usize;
            let mut handles = Vec::with_capacity(nh);
            for _ in 0..nh {
                match r.u64("kind")? {
                    0 => handles.push(FabricCircuit::Wafer(
                        WaferId(r.u64("wafer")? as usize),
                        lightpath::CircuitId::from_raw(r.u64("ckt")?),
                    )),
                    1 => handles.push(FabricCircuit::Cross(lightpath::CrossCircuitId::from_raw(
                        r.u64("cross")?,
                    ))),
                    k => return Err(format!("state restore: bad handle kind {k}")),
                }
            }
            let ns = r.u64("spares")? as usize;
            let mut spares = Vec::with_capacity(ns);
            for _ in 0..ns {
                let x = r.u64("x")? as usize;
                let y = r.u64("y")? as usize;
                let z = r.u64("z")? as usize;
                spares.push(Coord3::new(x, y, z));
            }
            st.jobs.insert(
                job,
                JobRecord {
                    slice: Slice::new(job, Coord3::new(ox, oy, oz), Shape3::new(ex, ey, ez)),
                    handles,
                    spares,
                },
            );
        }

        r.section("incidents")?;
        let incidents = r.u64("count")? as usize;
        for _ in 0..incidents {
            let incident = r.u64("incident")?;
            let x = r.u64("x")? as usize;
            let y = r.u64("y")? as usize;
            let z = r.u64("z")? as usize;
            let victim = if r.bool("has_victim")? {
                Some(
                    u32::try_from(r.u64("victim")?)
                        .map_err(|_| "state restore: victim exceeds u32".to_string())?,
                )
            } else {
                None
            };
            let spliced = r.u64("spliced")? as usize;
            let repair = if r.bool("has_repair")? {
                Some(RepairOutcome {
                    circuits: r.u64("circuits")? as usize,
                    servers_touched: r.u64("servers_touched")? as usize,
                    blast_servers: r.u64("blast_servers")? as usize,
                    setup: SimDuration::from_ps(r.u64("setup_ps")?),
                })
            } else {
                None
            };
            let repair_error = if r.bool("has_repair_error")? {
                Some(r.str("repair_error")?)
            } else {
                None
            };
            st.incidents.push(IncidentRecord {
                incident,
                chip: Coord3::new(x, y, z),
                victim,
                spliced,
                repair,
                repair_error,
            });
        }

        r.section("reserved")?;
        let reserved = r.u64("count")? as usize;
        for _ in 0..reserved {
            let x = r.u64("x")? as usize;
            let y = r.u64("y")? as usize;
            let z = r.u64("z")? as usize;
            st.reserved.insert(Coord3::new(x, y, z));
        }

        r.section("pending")?;
        if r.bool("has")? {
            let job = u32::try_from(r.u64("job")?)
                .map_err(|_| "state restore: pending job exceeds u32".to_string())?;
            let attempt = u32::try_from(r.u64("attempt")?)
                .map_err(|_| "state restore: pending attempt exceeds u32".to_string())?;
            let circuits = r.u64("circuits")? as usize;
            st.pending_rollback = Some((job, attempt, circuits));
        }

        Ok(st)
    }

    // ------------------------------------------------------- live ops ----

    /// True when `shape` exceeds the torus in some dimension (or is
    /// empty): no eviction schedule can ever make it placeable, so
    /// admission rejects it outright instead of queueing it.
    fn shape_infeasible(&self, shape: Shape3) -> bool {
        let torus = self.rack.cluster.occupancy().shape();
        shape
            .dims
            .iter()
            .zip(torus.dims.iter())
            .any(|(&s, &t)| s == 0 || s > t)
    }

    /// Try to admit `job`: place a best-fit slice, program its ring. On
    /// success journals `Admit` + `Program` + `Reconfigure`; a programming
    /// failure releases the slice and journals a `Deny`.
    pub fn admit(&mut self, now: SimTime, job: u32, shape: Shape3) -> Admission {
        self.admit_retryable(now, job, shape, 0, true)
    }

    /// [`FabricState::admit`] with retry semantics: `attempt` is the
    /// zero-based attempt index and `last` marks the final try. A
    /// programming failure on the final attempt journals the legacy
    /// `Deny { ProgramFailed }`; a non-final failure journals a
    /// machine-readable `Reject` (carrying the root fault code) plus its
    /// paired `Rollback`, and the caller re-queues the job. Both paths
    /// release the slice before returning, so a rejected plan leaves the
    /// occupancy untouched.
    pub fn admit_retryable(
        &mut self,
        now: SimTime,
        job: u32,
        shape: Shape3,
        attempt: u32,
        last: bool,
    ) -> Admission {
        if self.shape_infeasible(shape) {
            // An impossible extent is a plan error, not congestion: reject
            // it immediately with a machine-readable code instead of
            // parking it in the queue until timeout.
            self.journal.push(
                now,
                JournalEntry::Reject {
                    job,
                    shape,
                    attempt,
                    code: INFEASIBLE_CODE,
                },
            );
            self.journal.push(
                now,
                JournalEntry::Rollback {
                    job,
                    attempt,
                    circuits: 0,
                },
            );
            return Admission::Infeasible {
                error: FabricError::new(TopoFault::OutOfBounds),
            };
        }
        let slice = match self.rack.cluster.occupancy_mut().place_best_fit(job, shape) {
            Ok(s) => s,
            Err(_) => return Admission::NoSpace,
        };
        let plan = ring_plan(&self.rack.cluster, &slice, self.lanes);
        match program_planned(&mut self.rack.fabric, &plan, &mut self.plans) {
            Ok(handles) => {
                self.journal.push(
                    now,
                    JournalEntry::Admit {
                        job,
                        origin: slice.origin,
                        extent: slice.extent,
                    },
                );
                self.journal.push(
                    now,
                    JournalEntry::Program {
                        job,
                        circuits: handles.len(),
                        batches: plan.batches.len(),
                        cross: plan.cross.len(),
                    },
                );
                self.journal.push(
                    now,
                    JournalEntry::Reconfigure {
                        job,
                        micros: RECONFIG_LATENCY_S * 1e6,
                    },
                );
                self.jobs.insert(
                    job,
                    JobRecord {
                        slice,
                        handles,
                        spares: Vec::new(),
                    },
                );
                Admission::Admitted {
                    setup: SimDuration::from_secs_f64(RECONFIG_LATENCY_S),
                }
            }
            Err(failure) => {
                self.rack.cluster.occupancy_mut().remove(SliceId(job));
                if last {
                    self.journal.push(
                        now,
                        JournalEntry::Deny {
                            job,
                            shape,
                            reason: DenyReason::ProgramFailed,
                        },
                    );
                    Admission::ProgramDenied {
                        error: failure.error,
                    }
                } else {
                    self.journal.push(
                        now,
                        JournalEntry::Reject {
                            job,
                            shape,
                            attempt,
                            code: failure.error.root_code(),
                        },
                    );
                    self.journal.push(
                        now,
                        JournalEntry::Rollback {
                            job,
                            attempt,
                            circuits: failure.rolled_back,
                        },
                    );
                    Admission::ProgramRejected {
                        error: failure.error,
                    }
                }
            }
        }
    }

    /// Journal a queue-timeout denial (no fabric state changes).
    pub fn deny_timeout(&mut self, now: SimTime, job: u32, shape: Shape3) {
        self.journal.push(
            now,
            JournalEntry::Deny {
                job,
                shape,
                reason: DenyReason::QueueTimeout,
            },
        );
    }

    /// Evict a departing tenant: tear down its circuits (ring + repair
    /// splices), free its slice, release its reserved spares.
    pub fn evict(&mut self, now: SimTime, job: u32) {
        if self.apply_evict(job) {
            self.journal.push(now, JournalEntry::Evict { job });
        }
    }

    /// Inject a failure on the first in-coordinate-order chip owned by a
    /// multi-chip tenant, then orchestrate optical repair with the first
    /// unreserved healthy free chip. Journals `Fail` and `Repair` /
    /// `RepairFailed`. Returns the incident, or `None` when no eligible
    /// chip exists (nothing is journaled then).
    pub fn inject_failure(&mut self, now: SimTime) -> Option<&IncidentRecord> {
        let chip = {
            let occ = self.rack.cluster.occupancy();
            occ.shape().coords().find(|&c| {
                !occ.is_failed(c)
                    && occ
                        .owner(c)
                        .and_then(|id| occ.slice(id))
                        .is_some_and(|s| s.chips() >= 2)
            })?
        };
        let incident = self.incidents.len() as u64;
        let (victim, spliced) = self.apply_fail(chip);
        self.journal.push(
            now,
            JournalEntry::Fail {
                incident,
                chip,
                victim,
                spliced,
            },
        );
        let mut rec = IncidentRecord {
            incident,
            chip,
            victim,
            spliced,
            repair: None,
            repair_error: None,
        };
        if let Some(v) = victim {
            let replacement = {
                let occ = self.rack.cluster.occupancy();
                occ.healthy_free_chips()
                    .into_iter()
                    .find(|c| !self.reserved.contains(c))
            };
            if let Some(spare) = replacement {
                match self.apply_repair(chip, v, spare) {
                    Ok(out) => {
                        self.journal.push(
                            now,
                            JournalEntry::Repair {
                                incident,
                                replacement: spare,
                                circuits: out.circuits,
                                servers_touched: out.servers_touched,
                                blast_servers: out.blast_servers,
                            },
                        );
                        rec.repair = Some(out);
                    }
                    Err(error) => {
                        self.journal.push(
                            now,
                            JournalEntry::RepairFailed {
                                incident,
                                replacement: spare,
                                error: error.clone(),
                            },
                        );
                        rec.repair_error = Some(error);
                    }
                }
            }
        }
        self.incidents.push(rec);
        self.incidents.last()
    }

    // --------------------------------------------- shared apply layer ----

    /// Fail `chip`: mark it failed in the allocator and on its wafer, and
    /// splice out the victim's circuits that *terminate* there (light still
    /// passes through a failed tile). Returns the victim and splice count.
    fn apply_fail(&mut self, chip: Coord3) -> (Option<u32>, usize) {
        let victim = self.rack.cluster.occupancy().owner(chip).map(|s| s.0);
        self.rack.cluster.occupancy_mut().fail_chip(chip);
        let (w, t) = chip_to_tile(&self.rack.cluster, chip);
        self.rack.fabric.wafer_mut(w).fail_tile(t);
        let mut spliced = 0;
        if let Some(v) = victim {
            if let Some(rec) = self.jobs.get_mut(&v) {
                let handles = std::mem::take(&mut rec.handles);
                let mut kept = Vec::with_capacity(handles.len());
                for h in handles {
                    let terminates = match h {
                        FabricCircuit::Wafer(wid, cid) => {
                            wid == w && self.rack.fabric.wafer(wid).circuits_at(t).contains(&cid)
                        }
                        FabricCircuit::Cross(cid) => self
                            .rack
                            .fabric
                            .cross_circuit(cid)
                            .is_some_and(|c| c.src == (w, t) || c.dst == (w, t)),
                    };
                    if terminates {
                        let _ = self.rack.fabric.teardown_handle(h);
                        spliced += 1;
                    } else {
                        kept.push(h);
                    }
                }
                rec.handles = kept;
            }
        }
        (victim, spliced)
    }

    /// Splice `replacement` into `victim`'s broken ring around `chip`.
    /// Atomic (a failed attempt changes no circuit state) and journal-free;
    /// callers journal.
    fn apply_repair(
        &mut self,
        chip: Coord3,
        victim: u32,
        replacement: Coord3,
    ) -> Result<RepairOutcome, String> {
        let slice = match self.jobs.get(&victim) {
            Some(r) => Slice::new(victim, r.slice.origin, r.slice.extent),
            None => return Err(format!("victim job {victim} not live")),
        };
        let report =
            optical_repair(&mut self.rack, &slice, chip, replacement).map_err(|e| e.to_string())?;
        self.reserved.insert(replacement);
        if let Some(rec) = self.jobs.get_mut(&victim) {
            rec.handles.extend(report.handles.iter().copied());
            rec.spares.push(replacement);
        }
        Ok(RepairOutcome {
            circuits: report.circuits,
            // Tenant chips disturbed by the repair all sit on the failed
            // chip's own server: the spare was free and pass-through wafers
            // never terminate circuits — the paper's 1-server blast radius.
            blast_servers: 1,
            servers_touched: report.servers_touched,
            setup: report.setup,
        })
    }

    /// Remove a tenant and every resource it holds. True if it was live.
    fn apply_evict(&mut self, job: u32) -> bool {
        match self.jobs.remove(&job) {
            Some(rec) => {
                for h in rec.handles.into_iter().rev() {
                    let _ = self.rack.fabric.teardown_handle(h);
                }
                self.rack.cluster.occupancy_mut().remove(SliceId(job));
                for s in rec.spares {
                    self.reserved.remove(&s);
                }
                true
            }
            None => false,
        }
    }

    /// Replay a `Deny { ProgramFailed }`: re-run the failed attempt so the
    /// wafer's reconfiguration and circuit-id counters advance exactly as
    /// they did live, then release the slice again.
    fn apply_deny_program(&mut self, seq: u64, job: u32, shape: Shape3) -> Result<(), FabricError> {
        let slice = self
            .rack
            .cluster
            .occupancy_mut()
            .place_best_fit(job, shape)
            .map_err(|e| replay_diverged(seq, format!("denied job placed differently: {e:?}")))?;
        let plan = ring_plan(&self.rack.cluster, &slice, self.lanes);
        let outcome = program_planned(&mut self.rack.fabric, &plan, &mut self.plans);
        self.rack.cluster.occupancy_mut().remove(SliceId(job));
        match outcome {
            Err(_) => Ok(()),
            Ok(handles) => {
                for h in handles.into_iter().rev() {
                    let _ = self.rack.fabric.teardown_handle(h);
                }
                Err(replay_diverged(
                    seq,
                    "programming succeeded on replay but was denied live".into(),
                ))
            }
        }
    }

    /// Replay a `Reject`: re-run the failed non-final attempt so wafer
    /// counters advance as they did live, verify the failure reproduces the
    /// journaled reason code, and stage the pairing check for the record's
    /// `Rollback`.
    fn apply_reject(
        &mut self,
        seq: u64,
        job: u32,
        shape: Shape3,
        attempt: u32,
        code: &str,
    ) -> Result<(), FabricError> {
        if let Some((j, a, _)) = self.pending_rollback {
            return Err(replay_diverged(
                seq,
                format!("reject while rollback of job {j} attempt {a} still pending"),
            ));
        }
        if self.shape_infeasible(shape) {
            // Live admission rejected this shape before touching the
            // fabric; replay does the same, so there is nothing to re-run.
            if code != INFEASIBLE_CODE {
                return Err(replay_diverged(
                    seq,
                    format!(
                        "infeasible shape journaled with code {code}, expected {INFEASIBLE_CODE}"
                    ),
                ));
            }
            self.pending_rollback = Some((job, attempt, 0));
            return Ok(());
        }
        let slice = self
            .rack
            .cluster
            .occupancy_mut()
            .place_best_fit(job, shape)
            .map_err(|e| replay_diverged(seq, format!("rejected job placed differently: {e:?}")))?;
        let plan = ring_plan(&self.rack.cluster, &slice, self.lanes);
        let outcome = program_planned(&mut self.rack.fabric, &plan, &mut self.plans);
        self.rack.cluster.occupancy_mut().remove(SliceId(job));
        match outcome {
            Err(failure) => {
                let live = failure.error.root_code();
                if live != code {
                    return Err(replay_diverged(
                        seq,
                        format!("reject reason diverged: replay {live}, journal {code}"),
                    ));
                }
                self.pending_rollback = Some((job, attempt, failure.rolled_back));
                Ok(())
            }
            Ok(handles) => {
                for h in handles.into_iter().rev() {
                    let _ = self.rack.fabric.teardown_handle(h);
                }
                Err(replay_diverged(
                    seq,
                    "programming succeeded on replay but was rejected live".into(),
                ))
            }
        }
    }

    /// Apply one journal record to this state (replay path).
    fn apply_record(&mut self, r: &Record) -> Result<(), FabricError> {
        let diverged = |what: String| replay_diverged(r.seq, what);
        match &r.entry {
            JournalEntry::Admit {
                job,
                origin,
                extent,
            } => {
                self.rack
                    .cluster
                    .occupancy_mut()
                    .place(Slice::new(*job, *origin, *extent))
                    .map_err(|e| diverged(format!("admit placement rejected: {e:?}")))?;
                self.jobs.insert(
                    *job,
                    JobRecord {
                        slice: Slice::new(*job, *origin, *extent),
                        handles: Vec::new(),
                        spares: Vec::new(),
                    },
                );
                Ok(())
            }
            JournalEntry::Program { job, circuits, .. } => {
                let slice = match self.jobs.get(job) {
                    Some(rec) => Slice::new(*job, rec.slice.origin, rec.slice.extent),
                    None => return Err(diverged(format!("program for unknown job {job}"))),
                };
                let plan = ring_plan(&self.rack.cluster, &slice, self.lanes);
                match program_planned(&mut self.rack.fabric, &plan, &mut self.plans)
                    .map_err(|f| f.error)
                {
                    Ok(handles) if handles.len() == *circuits => {
                        if let Some(rec) = self.jobs.get_mut(job) {
                            rec.handles = handles;
                        }
                        Ok(())
                    }
                    Ok(handles) => Err(diverged(format!(
                        "programmed {} circuits, journal says {circuits}",
                        handles.len()
                    ))),
                    Err(e) => Err(diverged(format!("programming failed on replay: {e}"))),
                }
            }
            JournalEntry::Reconfigure { .. } => Ok(()),
            // Pod-level record: legs are admitted per-domain as ordinary
            // `Admit` records in each shard journal; the stitch record only
            // exists in the pod journal and carries no per-domain state.
            JournalEntry::MultiGroupAdmit { .. } => Ok(()),
            JournalEntry::Deny { job, shape, reason } => match reason {
                DenyReason::QueueTimeout => Ok(()),
                DenyReason::ProgramFailed => self.apply_deny_program(r.seq, *job, *shape),
            },
            JournalEntry::Reject {
                job,
                shape,
                attempt,
                code,
            } => self.apply_reject(r.seq, *job, *shape, *attempt, code),
            JournalEntry::Rollback {
                job,
                attempt,
                circuits,
            } => match self.pending_rollback.take() {
                Some((j, a, c)) if j == *job && a == *attempt && c == *circuits => Ok(()),
                Some((j, a, c)) => Err(diverged(format!(
                    "rollback mismatch: journal job {job} attempt {attempt} \
                     circuits {circuits}, replay job {j} attempt {a} circuits {c}"
                ))),
                None => Err(diverged("rollback without a preceding reject".to_string())),
            },
            JournalEntry::Fail {
                incident,
                chip,
                victim,
                spliced,
            } => {
                if *incident != self.incidents.len() as u64 {
                    return Err(diverged(format!(
                        "incident {incident} out of order (expected {})",
                        self.incidents.len()
                    )));
                }
                let (v, s) = self.apply_fail(*chip);
                if v != *victim || s != *spliced {
                    return Err(diverged(format!(
                        "failure outcome diverged: victim {v:?} spliced {s}, \
                         journal says {victim:?} / {spliced}"
                    )));
                }
                self.incidents.push(IncidentRecord {
                    incident: *incident,
                    chip: *chip,
                    victim: v,
                    spliced: s,
                    repair: None,
                    repair_error: None,
                });
                Ok(())
            }
            JournalEntry::Repair {
                incident,
                replacement,
                circuits,
                ..
            } => {
                let idx = *incident as usize;
                let (chip, victim) = match self.incidents.get(idx) {
                    Some(i) => (i.chip, i.victim),
                    None => return Err(diverged(format!("repair of unknown incident {incident}"))),
                };
                let v = victim
                    .ok_or_else(|| diverged("repair of a victimless incident".to_string()))?;
                match self.apply_repair(chip, v, *replacement) {
                    Ok(out) if out.circuits == *circuits => {
                        if let Some(i) = self.incidents.get_mut(idx) {
                            i.repair = Some(out);
                        }
                        Ok(())
                    }
                    Ok(out) => Err(diverged(format!(
                        "repair made {} circuits, journal says {circuits}",
                        out.circuits
                    ))),
                    Err(e) => Err(diverged(format!("repair failed on replay: {e}"))),
                }
            }
            JournalEntry::RepairFailed {
                incident,
                replacement,
                ..
            } => {
                let idx = *incident as usize;
                let (chip, victim) = match self.incidents.get(idx) {
                    Some(i) => (i.chip, i.victim),
                    None => {
                        return Err(diverged(format!(
                            "failed repair of unknown incident {incident}"
                        )))
                    }
                };
                let v = victim
                    .ok_or_else(|| diverged("repair of a victimless incident".to_string()))?;
                match self.apply_repair(chip, v, *replacement) {
                    Ok(_) => Err(diverged(
                        "repair succeeded on replay but failed live".to_string(),
                    )),
                    Err(e) => {
                        if let Some(i) = self.incidents.get_mut(idx) {
                            i.repair_error = Some(e);
                        }
                        Ok(())
                    }
                }
            }
            JournalEntry::Evict { job } => {
                if self.apply_evict(*job) {
                    Ok(())
                } else {
                    Err(diverged(format!("evict of unknown job {job}")))
                }
            }
            JournalEntry::Snapshot { fingerprint } => {
                // The record commits to the state after every earlier
                // record; replay must have reproduced it bit-exactly here.
                // This is the invariant verify CTL406 audits end-to-end.
                let fp = self.fingerprint();
                if fp == *fingerprint {
                    Ok(())
                } else {
                    Err(diverged(format!(
                        "snapshot fingerprint diverged: replayed state {fp:#018x}, \
                         journal committed {fingerprint:#018x}"
                    )))
                }
            }
        }
    }
}

/// Instantaneous fabric gauges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Fraction of chips owned by tenants.
    pub occupancy: f64,
    /// Live circuits, fabric-wide (intra-wafer + cross-wafer handles).
    pub circuits: usize,
    /// Cumulative MZI reconfigurations, fabric-wide.
    pub reconfigs: u64,
    /// Aggregate circuit bandwidth, Gb/s.
    pub aggregate_gbps: f64,
}

/// A replay-divergence fault anchored at journal sequence `seq`.
fn replay_diverged(seq: u64, what: String) -> FabricError {
    FabricError::new(CtrlFault::ReplayDiverged { seq, what })
}

/// Rebuild the final fabric state by replaying `journal` against a fresh
/// rack. The replayed state's own journal stays empty; determinism is
/// asserted by comparing [`FabricState::telemetry`] snapshots (and tested
/// property-style in `tests/properties.rs`). A record the fresh fabric
/// cannot reproduce yields a [`CtrlFault::ReplayDiverged`] fault.
pub fn replay(journal: &Journal) -> Result<FabricState, FabricError> {
    if journal.base_seq() != 0 {
        return Err(replay_diverged(
            journal.base_seq(),
            format!(
                "journal was compacted to seq {}; replay from scratch needs the \
                 full record stream — use replay_from with the matching snapshot",
                journal.base_seq()
            ),
        ));
    }
    let h = *journal.header();
    let mut st = FabricState::new(h.racks, h.lanes, h.seed);
    for r in journal.records() {
        st.apply_record(r)?;
    }
    if let Some((j, a, _)) = st.pending_rollback {
        return Err(replay_diverged(
            journal.len() as u64,
            format!("journal ended with rollback of job {j} attempt {a} pending"),
        ));
    }
    Ok(st)
}

/// Delta replay: restore `snap` and fold only the journal tail above the
/// snapshot watermark. Cost is O(tail), not O(journal) — this is what makes
/// crash-restart of long campaigns cheap.
///
/// `journal` may be the uninterrupted original or a compacted journal whose
/// base is at (or below) the snapshot's sequence number; records at or below
/// `snap.seq` are skipped (the snapshot already embodies them). The restored
/// state re-verifies the snapshot fingerprint, and any later `Snapshot`
/// record in the tail re-checks state equality (CTL406 semantics).
pub fn replay_from(snap: &FabricSnapshot, journal: &Journal) -> Result<FabricState, FabricError> {
    let mut st = snap.restore()?;
    if *journal.header() != snap.header {
        return Err(replay_diverged(
            snap.seq,
            "journal header does not match the snapshot's campaign binding".to_string(),
        ));
    }
    let base = journal.base_seq();
    if base > snap.seq {
        return Err(replay_diverged(
            base,
            format!(
                "journal compacted past the snapshot: base seq {base} > snapshot seq {}",
                snap.seq
            ),
        ));
    }
    // `records()` yields the retained tail starting at `base`; skip the
    // prefix the snapshot already covers (including the Snapshot record
    // itself, which restore() has re-pushed onto the resumed journal).
    for (i, r) in journal.records().iter().enumerate() {
        let seq = base + i as u64;
        if seq <= snap.seq {
            continue;
        }
        st.apply_record(r)?;
    }
    if let Some((j, a, _)) = st.pending_rollback {
        return Err(replay_diverged(
            journal.len() as u64,
            format!("journal ended with rollback of job {j} attempt {a} pending"),
        ));
    }
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_program_evict_roundtrip() {
        let mut st = FabricState::new(1, 2, 0);
        let t0 = SimTime::ZERO;
        match st.admit(t0, 0, Shape3::new(2, 2, 1)) {
            Admission::Admitted { setup } => {
                assert!((setup.as_micros_f64() - 3.7).abs() < 1e-9);
            }
            other => panic!("expected admission, got {other:?}"),
        }
        assert_eq!(st.live_jobs(), 1);
        assert_eq!(st.journal().len(), 3, "admit + program + reconfigure");
        let busy = st.utilization();
        assert!(busy.circuits > 0);
        assert!(busy.occupancy > 0.0);
        st.evict(t0 + SimDuration::from_secs(1), 0);
        assert_eq!(st.live_jobs(), 0);
        let idle = st.utilization();
        assert_eq!(idle.circuits, 0);
        assert_eq!(idle.occupancy, 0.0);
    }

    #[test]
    fn failure_repairs_with_single_server_blast_radius() {
        let mut st = FabricState::new(1, 2, 0);
        assert!(matches!(
            st.admit(SimTime::ZERO, 0, Shape3::new(4, 2, 1)),
            Admission::Admitted { .. }
        ));
        let rec = match st.inject_failure(SimTime::from_ps(1)) {
            Some(r) => r.clone(),
            None => panic!("an owned chip exists; failure must inject"),
        };
        assert!(rec.victim.is_some());
        assert!(rec.spliced > 0, "ring circuits terminate on every chip");
        let rep = match rec.repair {
            Some(r) => r,
            None => panic!("spares are free; repair must succeed"),
        };
        assert_eq!(rep.blast_servers, 1, "paper §4.2: blast radius 1 server");
        assert_eq!(rep.servers_touched, 2, "victim's server + spare's server");
        assert!((rep.setup.as_micros_f64() - 3.7).abs() < 1e-9);
    }

    #[test]
    fn replay_reproduces_final_state() {
        let mut st = FabricState::new(1, 2, 0);
        let mut t = SimTime::ZERO;
        for (job, shape) in [(0u32, Shape3::new(4, 2, 1)), (1, Shape3::new(2, 2, 2))] {
            assert!(matches!(
                st.admit(t, job, shape),
                Admission::Admitted { .. }
            ));
            t += SimDuration::from_secs(10);
        }
        st.inject_failure(t);
        t += SimDuration::from_secs(10);
        st.evict(t, 1);
        let replayed = match replay(st.journal()) {
            Ok(r) => r,
            Err(e) => panic!("replay diverged: {e}"),
        };
        assert_eq!(replayed.telemetry(), st.telemetry());
        assert_eq!(replayed.live_jobs(), st.live_jobs());
        assert_eq!(replayed.incidents().len(), st.incidents().len());
    }
}
