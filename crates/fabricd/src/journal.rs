//! Append-only command journal.
//!
//! Every decision the control plane takes — admit, deny, program,
//! reconfigure, fail, repair, evict — is recorded here in execution order.
//! The journal is the system of record for two properties the paper's
//! control story needs:
//!
//! 1. **Determinism**: two runs from the same seed must take byte-identical
//!    decision sequences, so the journal carries a canonical encoding and a
//!    64-bit FNV-1a [`Journal::hash`] over it.
//! 2. **Replayability**: the journal holds enough information (header seed
//!    and geometry, plus per-entry slice placements and spare choices) to
//!    rebuild the final fabric state on a fresh wafer — see
//!    [`crate::state::replay`].
//!
//! Entries are never mutated or removed; [`Journal::push`] assigns
//! monotonic sequence numbers. [`Journal::to_json`] dumps the whole log as
//! hand-rolled JSON (the workspace is offline and carries no serde).

use desim::SimTime;
use topo::{Coord3, Shape3};

/// Immutable run parameters recorded at journal creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// TPUv4 racks in the photonic fabric (16 servers each).
    pub racks: usize,
    /// Wavelength lanes per tenant ring circuit.
    pub lanes: usize,
    /// Arrival-stream seed.
    pub seed: u64,
    /// Chip-grid shape of the cluster the journal's slices live in.
    pub shape: Shape3,
}

/// Why an admission was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// The job waited in the admission queue past its deadline without a
    /// slice ever becoming free.
    QueueTimeout,
    /// A slice was free but its ring circuits could not be programmed
    /// (waveguide, lane, or fiber exhaustion); the slice was released.
    ProgramFailed,
}

impl DenyReason {
    fn canon(self) -> &'static str {
        match self {
            DenyReason::QueueTimeout => "timeout",
            DenyReason::ProgramFailed => "program-failed",
        }
    }
}

/// One journaled control-plane decision.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// A job was granted the slice at `origin` with `extent`.
    Admit {
        /// Job id (doubles as the slice id).
        job: u32,
        /// Slice origin chip.
        origin: Coord3,
        /// Slice extent.
        extent: Shape3,
    },
    /// A job was turned away.
    Deny {
        /// Job id.
        job: u32,
        /// The shape it asked for (needed to replay failed programming).
        shape: Shape3,
        /// Why.
        reason: DenyReason,
    },
    /// The job's ring circuits were programmed atomically.
    Program {
        /// Job id.
        job: u32,
        /// Circuits established (intra-wafer + cross-wafer).
        circuits: usize,
        /// Per-wafer edge-disjoint batches executed.
        batches: usize,
        /// Cross-wafer circuits established.
        cross: usize,
    },
    /// The MZI mesh settled after a programming batch.
    Reconfigure {
        /// Job whose circuits triggered the reconfiguration.
        job: u32,
        /// Settling time, microseconds (3.7 µs per the paper).
        micros: f64,
    },
    /// A chip failed; its terminating circuits were spliced out.
    Fail {
        /// Incident id (dense, starting at 0).
        incident: u64,
        /// The failed chip.
        chip: Coord3,
        /// The tenant owning the chip, if any.
        victim: Option<u32>,
        /// Circuits torn down because they terminated on the failed chip.
        spliced: usize,
    },
    /// An incident was repaired by splicing in a spare chip optically.
    Repair {
        /// The incident being repaired (must be journaled earlier).
        incident: u64,
        /// The spare chip spliced in.
        replacement: Coord3,
        /// Repair circuits established.
        circuits: usize,
        /// Servers whose wafers terminate repair circuits.
        servers_touched: usize,
        /// Servers whose *tenant* chips were disturbed — the paper's blast
        /// radius (1: only the failed chip's own server).
        blast_servers: usize,
    },
    /// A repair was attempted and rolled back.
    RepairFailed {
        /// The incident (must be journaled earlier).
        incident: u64,
        /// The spare that could not be spliced in.
        replacement: Coord3,
        /// The circuit error, rendered.
        error: String,
    },
    /// A non-final programming attempt was rejected: the plan was
    /// infeasible or conflicted with live circuits, the slice was released,
    /// and the job re-enters the retry queue with bounded backoff. `code`
    /// is the machine-readable root-cause reason (see
    /// `lightpath::fault::CODES`; audited by verify CTL403).
    Reject {
        /// Job id.
        job: u32,
        /// The shape it asked for (needed to replay the failed attempt).
        shape: Shape3,
        /// Zero-based attempt number (0 = first try).
        attempt: u32,
        /// Machine-readable reason code of the root cause.
        code: &'static str,
    },
    /// The partial circuits of a rejected attempt were rolled back
    /// atomically. Always paired with the immediately preceding `Reject`
    /// for the same job and attempt (audited by verify CTL404).
    Rollback {
        /// Job id.
        job: u32,
        /// Attempt number, matching the originating `Reject`.
        attempt: u32,
        /// Circuits that had been established and were torn down.
        circuits: usize,
    },
    /// A job departed; its circuits and slice were released.
    Evict {
        /// Job id.
        job: u32,
    },
    /// A canonical state snapshot was captured. The fingerprint commits to
    /// the full control-plane state *after* applying every record with a
    /// smaller sequence number; delta replay restores the serialized state
    /// stored alongside the journal and folds only records above this
    /// record's `seq`. Replay verifies the fingerprint at every snapshot
    /// record it crosses (audited by verify CTL406), and compaction may
    /// truncate strictly below it (audited by CTL407).
    Snapshot {
        /// FNV-1a fingerprint of the canonical state serialization.
        fingerprint: u64,
    },
    /// A pod-level cross-group admission: one job split into per-group
    /// legs stitched over the rack-face OCS banks. The legs' `Admit`
    /// records appear separately (each in-band of its group); this record
    /// binds them into one atomic admission and carries the stitch-port
    /// assignment on every crossed rack face. Pod-journal only — domain
    /// replay treats it as a no-op (audited by verify CTL408).
    MultiGroupAdmit {
        /// Pod-global job id.
        job: u32,
        /// The job's requested extent (legs partition its Z axis).
        extent: Shape3,
        /// Per-group legs, in consecutive ascending group order.
        legs: Vec<StitchLegRecord>,
        /// Stitch-port assignments, boundary-major: for each of the
        /// `legs.len() - 1` crossed rack faces, one port index per chip
        /// of the job's X×Y cross-section.
        ports: Vec<u32>,
    },
}

/// One leg of a [`JournalEntry::MultiGroupAdmit`], in pod coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StitchLegRecord {
    /// Leg slice id (high-bit namespaced; never a trace job id).
    pub leg: u32,
    /// Rack group the leg landed in.
    pub group: u64,
    /// Leg origin, pod coordinates.
    pub origin: Coord3,
    /// Leg extent (same X/Y as the job, a Z-slab of its extent).
    pub extent: Shape3,
}

impl StitchLegRecord {
    fn canon(&self) -> String {
        format!(
            "{}@g{}:{}+{}",
            self.leg, self.group, self.origin, self.extent
        )
    }
}

impl JournalEntry {
    fn canon(&self) -> String {
        match self {
            JournalEntry::Admit {
                job,
                origin,
                extent,
            } => {
                format!("admit job={job} origin={origin} extent={extent}")
            }
            JournalEntry::Deny { job, shape, reason } => {
                format!("deny job={job} shape={shape} reason={}", reason.canon())
            }
            JournalEntry::Program {
                job,
                circuits,
                batches,
                cross,
            } => {
                format!("program job={job} circuits={circuits} batches={batches} cross={cross}")
            }
            JournalEntry::Reconfigure { job, micros } => {
                format!("reconfigure job={job} micros={micros:.3}")
            }
            JournalEntry::Fail {
                incident,
                chip,
                victim,
                spliced,
            } => {
                let v = victim.map_or("-".to_string(), |v| v.to_string());
                format!("fail incident={incident} chip={chip} victim={v} spliced={spliced}")
            }
            JournalEntry::Repair {
                incident,
                replacement,
                circuits,
                servers_touched,
                blast_servers,
            } => format!(
                "repair incident={incident} replacement={replacement} circuits={circuits} \
                 servers={servers_touched} blast={blast_servers}"
            ),
            JournalEntry::RepairFailed {
                incident,
                replacement,
                error,
            } => {
                format!("repair-failed incident={incident} replacement={replacement} error={error}")
            }
            JournalEntry::Reject {
                job,
                shape,
                attempt,
                code,
            } => {
                format!("reject job={job} shape={shape} attempt={attempt} code={code}")
            }
            JournalEntry::Rollback {
                job,
                attempt,
                circuits,
            } => {
                format!("rollback job={job} attempt={attempt} circuits={circuits}")
            }
            JournalEntry::Evict { job } => format!("evict job={job}"),
            JournalEntry::Snapshot { fingerprint } => {
                format!("snapshot fingerprint={fingerprint:#018x}")
            }
            JournalEntry::MultiGroupAdmit {
                job,
                extent,
                legs,
                ports,
            } => {
                let legs: Vec<String> = legs.iter().map(|l| l.canon()).collect();
                let ports: Vec<String> = ports.iter().map(|p| p.to_string()).collect();
                format!(
                    "multi-admit job={job} extent={extent} legs=[{}] ports=[{}]",
                    legs.join(";"),
                    ports.join(",")
                )
            }
        }
    }

    /// The record kind's canonical name (the first token of its canon line).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEntry::Admit { .. } => "admit",
            JournalEntry::Deny { .. } => "deny",
            JournalEntry::Program { .. } => "program",
            JournalEntry::Reconfigure { .. } => "reconfigure",
            JournalEntry::Fail { .. } => "fail",
            JournalEntry::Repair { .. } => "repair",
            JournalEntry::RepairFailed { .. } => "repair-failed",
            JournalEntry::Reject { .. } => "reject",
            JournalEntry::Rollback { .. } => "rollback",
            JournalEntry::Evict { .. } => "evict",
            JournalEntry::Snapshot { .. } => "snapshot",
            JournalEntry::MultiGroupAdmit { .. } => "multi-admit",
        }
    }
}

/// One record: a sequence number, the simulated instant, and the decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Monotonic sequence number, dense from 0.
    pub seq: u64,
    /// When the decision was taken.
    pub at: SimTime,
    /// The decision.
    pub entry: JournalEntry,
}

impl Record {
    /// Canonical single-line encoding; hashing and goldens key off this.
    pub fn canon(&self) -> String {
        format!(
            "seq={} t={}ps {}",
            self.seq,
            self.at.as_ps(),
            self.entry.canon()
        )
    }
}

/// The append-only command journal.
///
/// A journal is logically the full record stream from sequence 0; after
/// [`compact_to`](Journal::compact_to) (or when resumed from a snapshot via
/// [`with_base`](Journal::with_base)) only the tail above the snapshot
/// watermark is *retained*, with the hash contribution of the truncated
/// prefix folded into `base_fnv`. [`hash`](Journal::hash) and
/// [`len`](Journal::len) therefore report identical values before and
/// after compaction — truncation is a storage optimization, never an
/// observable history rewrite.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    header: JournalHeader,
    records: Vec<Record>,
    /// Sequence number of the first retained record (0 = nothing
    /// compacted; the full history is present).
    base_seq: u64,
    /// Running FNV-1a state over the canonical header plus every
    /// compacted-away record, i.e. the hash fold up to (but excluding)
    /// record `base_seq`.
    base_fnv: u64,
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// The header's canonical line (the first hash-fold contribution).
fn canon_header(h: &JournalHeader) -> String {
    format!(
        "journal racks={} lanes={} seed={} shape={}",
        h.racks, h.lanes, h.seed, h.shape
    )
}

impl Journal {
    /// An empty journal for a run described by `header`.
    pub fn new(header: JournalHeader) -> Self {
        let base_fnv = fnv1a(FNV_OFFSET, canon_header(&header).as_bytes());
        Journal {
            header,
            records: Vec::new(),
            base_seq: 0,
            base_fnv,
        }
    }

    /// A journal resuming at sequence `base_seq` with the hash fold of the
    /// (absent) prefix already at `base_fnv` — the crash-restart
    /// constructor. A run resumed this way appends records at exactly the
    /// sequence numbers and hash-chain positions the uninterrupted run
    /// would have used, so its final [`hash`](Self::hash) is bit-identical
    /// to an uninterrupted run's.
    pub fn with_base(header: JournalHeader, base_seq: u64, base_fnv: u64) -> Self {
        Journal {
            header,
            records: Vec::new(),
            base_seq,
            base_fnv,
        }
    }

    /// The run parameters.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Sequence number of the first retained record; 0 when the full
    /// history is present.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The hash fold over the canonical header and all records below
    /// [`base_seq`](Self::base_seq).
    pub fn base_fnv(&self) -> u64 {
        self.base_fnv
    }

    /// Sequence number the next [`push`](Self::push) will assign.
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.records.len() as u64
    }

    /// Append a decision at simulated instant `at`; returns its sequence
    /// number.
    pub fn push(&mut self, at: SimTime, entry: JournalEntry) -> u64 {
        let seq = self.next_seq();
        self.records.push(Record { seq, at, entry });
        seq
    }

    /// Retained records, in append order. After compaction this is the
    /// tail from [`base_seq`](Self::base_seq) on.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// *Logical* number of records, counting compacted-away ones — the
    /// value is invariant under [`compact_to`](Self::compact_to), so
    /// fingerprints built over `len()` survive compaction.
    pub fn len(&self) -> usize {
        self.base_seq as usize + self.records.len()
    }

    /// True when nothing has been journaled (including before the base).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained record with `seq < watermark`, folding its hash
    /// contribution into the base so [`hash`](Self::hash) and
    /// [`len`](Self::len) are unchanged. Downward-only and audited: the
    /// watermark must land exactly on a retained [`JournalEntry::Snapshot`]
    /// record (which becomes the first retained record), because records
    /// above a snapshot are still needed for delta replay and must never be
    /// eaten. Returns the number of records dropped.
    pub fn compact_to(&mut self, watermark: u64) -> Result<usize, String> {
        if watermark < self.base_seq {
            return Err(format!(
                "compact_to: watermark {watermark} below base_seq {} (compaction is downward-only)",
                self.base_seq
            ));
        }
        let keep_from = (watermark - self.base_seq) as usize;
        if keep_from > self.records.len() {
            return Err(format!(
                "compact_to: watermark {watermark} beyond next_seq {}",
                self.next_seq()
            ));
        }
        match self.records.get(keep_from) {
            Some(Record {
                entry: JournalEntry::Snapshot { .. },
                ..
            }) => {}
            _ => {
                return Err(format!(
                    "compact_to: watermark {watermark} is not a snapshot record"
                ));
            }
        }
        for r in self.records.iter().take(keep_from) {
            self.base_fnv = fnv1a(self.base_fnv, b"\n");
            self.base_fnv = fnv1a(self.base_fnv, r.canon().as_bytes());
        }
        self.records.drain(..keep_from);
        self.base_seq = watermark;
        Ok(keep_from)
    }

    /// 64-bit FNV-1a over the canonical encoding of the header and every
    /// record (compacted-away ones included, via the folded base state).
    /// Two runs are decision-identical iff their hashes agree.
    pub fn hash(&self) -> u64 {
        let mut h = self.base_fnv;
        for r in &self.records {
            h = fnv1a(h, b"\n");
            h = fnv1a(h, r.canon().as_bytes());
        }
        h
    }

    /// Dump the journal as JSON (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let h = &self.header;
        let mut out = String::with_capacity(64 + self.records.len() * 96);
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"racks\": {},\n", h.racks));
        out.push_str(&format!("  \"lanes\": {},\n", h.lanes));
        out.push_str(&format!("  \"seed\": {},\n", h.seed));
        out.push_str(&format!(
            "  \"shape\": [{}, {}, {}],\n",
            h.shape.extent(topo::Dim::X),
            h.shape.extent(topo::Dim::Y),
            h.shape.extent(topo::Dim::Z)
        ));
        out.push_str(&format!("  \"hash\": \"{:#018x}\",\n", self.hash()));
        if self.base_seq > 0 {
            // Only compacted journals carry base fields, so uncompacted
            // dumps stay byte-identical to the pre-snapshot format (and to
            // the committed goldens).
            out.push_str(&format!("  \"base_seq\": {},\n", self.base_seq));
            out.push_str(&format!("  \"base_fnv\": \"{:#018x}\",\n", self.base_fnv));
        }
        out.push_str("  \"entries\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&record_json(r));
            out.push_str(if i + 1 < self.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn coord_json(c: Coord3) -> String {
    let [x, y, z] = c.p;
    format!("[{}, {}, {}]", x, y, z)
}

fn shape_json(s: Shape3) -> String {
    format!(
        "[{}, {}, {}]",
        s.extent(topo::Dim::X),
        s.extent(topo::Dim::Y),
        s.extent(topo::Dim::Z)
    )
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn record_json(r: &Record) -> String {
    let common = format!(
        "\"seq\": {}, \"t_ps\": {}, \"kind\": \"{}\"",
        r.seq,
        r.at.as_ps(),
        r.entry.kind()
    );
    let rest = match &r.entry {
        JournalEntry::Admit {
            job,
            origin,
            extent,
        } => format!(
            ", \"job\": {job}, \"origin\": {}, \"extent\": {}",
            coord_json(*origin),
            shape_json(*extent)
        ),
        JournalEntry::Deny { job, shape, reason } => format!(
            ", \"job\": {job}, \"shape\": {}, \"reason\": \"{}\"",
            shape_json(*shape),
            reason.canon()
        ),
        JournalEntry::Program {
            job,
            circuits,
            batches,
            cross,
        } => format!(
            ", \"job\": {job}, \"circuits\": {circuits}, \"batches\": {batches}, \
             \"cross\": {cross}"
        ),
        JournalEntry::Reconfigure { job, micros } => {
            format!(", \"job\": {job}, \"micros\": {micros:.3}")
        }
        JournalEntry::Fail {
            incident,
            chip,
            victim,
            spliced,
        } => format!(
            ", \"incident\": {incident}, \"chip\": {}, \"victim\": {}, \"spliced\": {spliced}",
            coord_json(*chip),
            victim.map_or("null".to_string(), |v| v.to_string())
        ),
        JournalEntry::Repair {
            incident,
            replacement,
            circuits,
            servers_touched,
            blast_servers,
        } => format!(
            ", \"incident\": {incident}, \"replacement\": {}, \"circuits\": {circuits}, \
             \"servers_touched\": {servers_touched}, \"blast_servers\": {blast_servers}",
            coord_json(*replacement)
        ),
        JournalEntry::RepairFailed {
            incident,
            replacement,
            error,
        } => format!(
            ", \"incident\": {incident}, \"replacement\": {}, \"error\": \"{}\"",
            coord_json(*replacement),
            escape_json(error)
        ),
        JournalEntry::Reject {
            job,
            shape,
            attempt,
            code,
        } => format!(
            ", \"job\": {job}, \"shape\": {}, \"attempt\": {attempt}, \"code\": \"{code}\"",
            shape_json(*shape)
        ),
        JournalEntry::Rollback {
            job,
            attempt,
            circuits,
        } => format!(", \"job\": {job}, \"attempt\": {attempt}, \"circuits\": {circuits}"),
        JournalEntry::Evict { job } => format!(", \"job\": {job}"),
        JournalEntry::Snapshot { fingerprint } => {
            format!(", \"fingerprint\": \"{fingerprint:#018x}\"")
        }
        JournalEntry::MultiGroupAdmit {
            job,
            extent,
            legs,
            ports,
        } => {
            let legs: Vec<String> = legs
                .iter()
                .map(|l| {
                    format!(
                        "{{\"leg\": {}, \"group\": {}, \"origin\": {}, \"extent\": {}}}",
                        l.leg,
                        l.group,
                        coord_json(l.origin),
                        shape_json(l.extent)
                    )
                })
                .collect();
            let ports: Vec<String> = ports.iter().map(|p| p.to_string()).collect();
            format!(
                ", \"job\": {job}, \"extent\": {}, \"legs\": [{}], \"ports\": [{}]",
                shape_json(*extent),
                legs.join(", "),
                ports.join(", ")
            )
        }
    };
    format!("{{{common}{rest}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            racks: 1,
            lanes: 2,
            seed: 7,
            shape: Shape3::rack_4x4x4(),
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let mut j = Journal::new(header());
        assert!(j.is_empty());
        let s0 = j.push(
            SimTime::ZERO,
            JournalEntry::Admit {
                job: 0,
                origin: Coord3::new(0, 0, 0),
                extent: Shape3::new(2, 2, 1),
            },
        );
        let s1 = j.push(SimTime::from_ps(5), JournalEntry::Evict { job: 0 });
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(j.len(), 2);
        assert_eq!(j.records()[1].seq, 1);
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let mut a = Journal::new(header());
        let mut b = Journal::new(header());
        for j in [&mut a, &mut b] {
            j.push(
                SimTime::ZERO,
                JournalEntry::Admit {
                    job: 3,
                    origin: Coord3::new(0, 0, 0),
                    extent: Shape3::new(4, 2, 1),
                },
            );
        }
        assert_eq!(a.hash(), b.hash());
        b.push(SimTime::from_ps(1), JournalEntry::Evict { job: 3 });
        assert_ne!(a.hash(), b.hash());
        // Header differences hash differently too.
        let c = Journal::new(JournalHeader {
            seed: 8,
            ..header()
        });
        assert_ne!(Journal::new(header()).hash(), c.hash());
    }

    #[test]
    fn reject_and_rollback_canon_and_json_are_stable() {
        let mut j = Journal::new(header());
        j.push(
            SimTime::from_ps(10),
            JournalEntry::Reject {
                job: 4,
                shape: Shape3::new(4, 2, 1),
                attempt: 1,
                code: "circuit/insufficient-tx-lanes",
            },
        );
        j.push(
            SimTime::from_ps(10),
            JournalEntry::Rollback {
                job: 4,
                attempt: 1,
                circuits: 3,
            },
        );
        let canons: Vec<String> = j.records().iter().map(|r| r.canon()).collect();
        assert_eq!(
            canons[0],
            "seq=0 t=10ps reject job=4 shape=4x2x1 attempt=1 code=circuit/insufficient-tx-lanes"
        );
        assert_eq!(
            canons[1],
            "seq=1 t=10ps rollback job=4 attempt=1 circuits=3"
        );
        let json = j.to_json();
        assert!(json.contains("\"kind\": \"reject\""), "{json}");
        assert!(
            json.contains("\"code\": \"circuit/insufficient-tx-lanes\""),
            "{json}"
        );
        assert!(json.contains("\"kind\": \"rollback\""), "{json}");
        assert!(json.contains("\"circuits\": 3"), "{json}");
    }

    #[test]
    fn multi_group_admit_canon_and_json_are_stable() {
        let mut j = Journal::new(header());
        j.push(
            SimTime::from_ps(20),
            JournalEntry::MultiGroupAdmit {
                job: 9,
                extent: Shape3::new(4, 4, 4),
                legs: vec![
                    StitchLegRecord {
                        leg: 0x8000_0090,
                        group: 1,
                        origin: Coord3::new(0, 0, 4),
                        extent: Shape3::new(4, 4, 2),
                    },
                    StitchLegRecord {
                        leg: 0x8000_0091,
                        group: 2,
                        origin: Coord3::new(0, 0, 8),
                        extent: Shape3::new(4, 4, 2),
                    },
                ],
                ports: vec![0, 1, 2],
            },
        );
        let canon = j.records().iter().map(|r| r.canon()).collect::<Vec<_>>();
        assert_eq!(
            canon.first().map(String::as_str),
            Some(
                "seq=0 t=20ps multi-admit job=9 extent=4x4x4 \
                 legs=[2147483792@g1:[0,0,4]+4x4x2;2147483793@g2:[0,0,8]+4x4x2] ports=[0,1,2]"
            )
        );
        let json = j.to_json();
        assert!(json.contains("\"kind\": \"multi-admit\""), "{json}");
        assert!(json.contains("\"legs\": [{\"leg\": 2147483792"), "{json}");
        assert!(json.contains("\"ports\": [0, 1, 2]"), "{json}");
    }

    #[test]
    fn compaction_preserves_hash_and_logical_len() {
        let mut j = Journal::new(header());
        for job in 0..4 {
            j.push(
                SimTime::from_ps(job as u64 * 10),
                JournalEntry::Admit {
                    job,
                    origin: Coord3::new(0, 0, 0),
                    extent: Shape3::new(2, 2, 1),
                },
            );
        }
        let snap_seq = j.push(
            SimTime::from_ps(50),
            JournalEntry::Snapshot {
                fingerprint: 0xdead_beef,
            },
        );
        j.push(SimTime::from_ps(60), JournalEntry::Evict { job: 0 });
        let full_hash = j.hash();
        let full_len = j.len();

        let dropped = j.compact_to(snap_seq).expect("compact at snapshot");
        assert_eq!(dropped, 4);
        assert_eq!(j.hash(), full_hash, "hash survives compaction");
        assert_eq!(j.len(), full_len, "logical length survives compaction");
        assert_eq!(j.base_seq(), snap_seq);
        assert_eq!(j.records().len(), 2, "snapshot + evict retained");
        assert!(matches!(
            j.records().first().map(|r| &r.entry),
            Some(JournalEntry::Snapshot { .. })
        ));
        // Appending after compaction continues the chain identically.
        j.push(SimTime::from_ps(70), JournalEntry::Evict { job: 1 });
        assert_eq!(j.records().last().map(|r| r.seq), Some(snap_seq + 2));

        // Downward-only: re-compacting below base is rejected.
        assert!(j.compact_to(snap_seq - 1).is_err());
        // Watermarks must land on snapshot records.
        assert!(j.compact_to(snap_seq + 1).is_err());
    }

    #[test]
    fn with_base_resumes_the_hash_chain() {
        let mut full = Journal::new(header());
        full.push(SimTime::from_ps(1), JournalEntry::Evict { job: 0 });
        let mid_fnv = full.hash();
        let mid_seq = full.next_seq();
        full.push(SimTime::from_ps(2), JournalEntry::Evict { job: 1 });

        let mut resumed = Journal::with_base(header(), mid_seq, mid_fnv);
        let seq = resumed.push(SimTime::from_ps(2), JournalEntry::Evict { job: 1 });
        assert_eq!(seq, mid_seq);
        assert_eq!(resumed.hash(), full.hash());
        assert_eq!(resumed.len(), full.len());
    }

    #[test]
    fn json_dump_is_well_formed() {
        let mut j = Journal::new(header());
        j.push(
            SimTime::from_ps(42),
            JournalEntry::Fail {
                incident: 0,
                chip: Coord3::new(1, 1, 1),
                victim: Some(2),
                spliced: 2,
            },
        );
        j.push(
            SimTime::from_ps(43),
            JournalEntry::RepairFailed {
                incident: 0,
                replacement: Coord3::new(0, 0, 3),
                error: "say \"no\"\n".into(),
            },
        );
        let json = j.to_json();
        assert!(json.contains("\"kind\": \"fail\""), "{json}");
        assert!(json.contains("\"victim\": 2"), "{json}");
        assert!(json.contains("\\\"no\\\"\\n"), "{json}");
        // Balanced braces/brackets (crude well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "{json}"
            );
        }
    }
}
