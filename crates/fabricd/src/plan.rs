//! Circuit planning: from an admitted slice to programmable demands.
//!
//! An admitted tenant runs ring collectives over its slice (§4.1), so the
//! control plane programs one circuit per directed ring hop along the
//! slice's snake order. Hops whose endpoints share a server become
//! intra-wafer demands, grouped per wafer and executed through
//! [`route::allocate_non_overlapping`] — the atomic, mutually
//! edge-disjoint batch primitive. Hops crossing servers become cross-wafer
//! circuits over the fiber plant. [`program`] commits the whole plan
//! atomically: any establishment error rolls back everything this plan
//! placed, so admission control sees exact all-or-nothing semantics.

use collectives::snake_order;
use lightpath::{CtrlFault, Fabric, FabricCircuit, FabricError};
use resilience::chip_to_tile;
use route::{allocate_non_overlapping_with, Demand, Searcher};
use std::collections::BTreeMap;
use topo::{Cluster, Slice};

/// The circuits a slice's ring needs, split by execution mechanism.
#[derive(Debug, Clone)]
pub struct CircuitPlan {
    /// Intra-wafer demands, grouped per wafer in wafer-id order. Each
    /// group is established as one atomic edge-disjoint batch.
    pub batches: Vec<(lightpath::WaferId, Vec<Demand>)>,
    /// Cross-wafer hops `(src, dst, lanes)`, in ring order.
    pub cross: Vec<(
        (lightpath::WaferId, lightpath::TileCoord),
        (lightpath::WaferId, lightpath::TileCoord),
        usize,
    )>,
}

impl CircuitPlan {
    /// Total circuits the plan will establish.
    pub fn circuits(&self) -> usize {
        self.batches.iter().map(|(_, d)| d.len()).sum::<usize>() + self.cross.len()
    }
}

/// A failed plan commit: the structured fault plus how many circuits this
/// call had already placed (and rolled back) before hitting it. The count
/// lets the control plane journal an honest `Rollback` record.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramFailure {
    /// What went wrong, as a workspace fault chain — the outer frame is
    /// [`CtrlFault::ProgramBatch`] or [`CtrlFault::ProgramCross`] and the
    /// source is the underlying route or circuit fault.
    pub error: FabricError,
    /// Circuits established by this plan and torn down again.
    pub rolled_back: usize,
}

/// Plan the ring circuits for `slice`: one circuit per directed snake-order
/// hop (including the wraparound), `lanes` wavelengths each. A 1-chip slice
/// needs no circuits and yields an empty plan.
pub fn ring_plan(cluster: &Cluster, slice: &Slice, lanes: usize) -> CircuitPlan {
    let order = snake_order(slice);
    let mut batches: BTreeMap<lightpath::WaferId, Vec<Demand>> = BTreeMap::new();
    let mut cross = Vec::new();
    if order.len() >= 2 {
        for i in 0..order.len() {
            let a = order[i];
            let b = order[(i + 1) % order.len()];
            let (wa, ta) = chip_to_tile(cluster, a);
            let (wb, tb) = chip_to_tile(cluster, b);
            if wa == wb {
                batches
                    .entry(wa)
                    .or_default()
                    .push(Demand::new(ta, tb, lanes));
            } else {
                cross.push(((wa, ta), (wb, tb), lanes));
            }
        }
    }
    CircuitPlan {
        batches: batches.into_iter().collect(),
        cross,
    }
}

/// Execute a plan atomically: per-wafer edge-disjoint batches first, then
/// cross-wafer circuits in ring order. On any error every circuit this call
/// established is torn down (in reverse) before the error is returned.
pub fn program(fabric: &mut Fabric, plan: &CircuitPlan) -> Result<Vec<FabricCircuit>, FabricError> {
    program_with(fabric, plan, &mut Searcher::new())
}

/// [`program`] with a caller-provided routing scratch: the daemon holds one
/// [`Searcher`] across every plan it commits, so steady-state programming
/// allocates nothing per search.
pub fn program_with(
    fabric: &mut Fabric,
    plan: &CircuitPlan,
    searcher: &mut Searcher,
) -> Result<Vec<FabricCircuit>, FabricError> {
    program_counted(fabric, plan, searcher).map_err(|f| f.error)
}

/// [`program_with`], but a failure also reports how many circuits were
/// placed and rolled back before the faulting step — the admission path
/// journals that count in its `Rollback` record.
pub fn program_counted(
    fabric: &mut Fabric,
    plan: &CircuitPlan,
    searcher: &mut Searcher,
) -> Result<Vec<FabricCircuit>, ProgramFailure> {
    let mut handles: Vec<FabricCircuit> = Vec::new();
    let rollback = |fabric: &mut Fabric, handles: Vec<FabricCircuit>| -> usize {
        let n = handles.len();
        for h in handles.into_iter().rev() {
            let _ = fabric.teardown_handle(h);
        }
        n
    };
    for (w, demands) in &plan.batches {
        match allocate_non_overlapping_with(fabric.wafer_mut(*w), demands, searcher) {
            Ok(ids) => handles.extend(ids.into_iter().map(|id| FabricCircuit::Wafer(*w, id))),
            Err(e) => {
                let rolled_back = rollback(fabric, handles);
                return Err(ProgramFailure {
                    error: FabricError::caused_by(CtrlFault::ProgramBatch { wafer: w.0 }, e),
                    rolled_back,
                });
            }
        }
    }
    for (i, &(src, dst, lanes)) in plan.cross.iter().enumerate() {
        match fabric.establish_cross(src, dst, lanes) {
            Ok((id, _)) => handles.push(FabricCircuit::Cross(id)),
            Err(e) => {
                let rolled_back = rollback(fabric, handles);
                return Err(ProgramFailure {
                    error: FabricError::caused_by(CtrlFault::ProgramCross { index: i }, e.into()),
                    rolled_back,
                });
            }
        }
    }
    Ok(handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience::PhotonicRack;
    use topo::{Coord3, Shape3};

    #[test]
    fn one_chip_slice_plans_nothing() {
        let rack = PhotonicRack::new(1);
        let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(1, 1, 1));
        let plan = ring_plan(&rack.cluster, &slice, 2);
        assert_eq!(plan.circuits(), 0);
    }

    #[test]
    fn ring_plan_covers_every_hop_once() {
        let rack = PhotonicRack::new(1);
        // 4×2×1 = 8 chips spanning two servers: 8 directed ring hops.
        let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
        let plan = ring_plan(&rack.cluster, &slice, 2);
        assert_eq!(plan.circuits(), 8);
        assert!(!plan.cross.is_empty(), "slice spans servers");
        assert!(!plan.batches.is_empty(), "servers hold internal hops");
    }

    #[test]
    fn program_is_atomic_under_exhaustion() {
        let mut rack = PhotonicRack::new(1);
        // Saturate one server's SerDes: a 2-chip ring at 16 λ consumes
        // every tx and rx lane on both of its tiles.
        let blocker = Slice::new(1, Coord3::new(2, 0, 0), Shape3::new(2, 1, 1));
        let plan_blocker = ring_plan(&rack.cluster, &blocker, 16);
        assert!(program(&mut rack.fabric, &plan_blocker).is_ok());
        let count = |rack: &PhotonicRack| -> Vec<usize> {
            (0..rack.fabric.wafer_count())
                .map(|w| rack.fabric.wafer(lightpath::WaferId(w)).circuits().count())
                .collect()
        };
        let before = count(&rack);
        let cross_before = rack.fabric.cross_circuits().count();
        // A wider ring shares the saturated chips: its batch on the fresh
        // wafer establishes first, then the saturated wafer's batch fails
        // — everything already placed must be rolled back.
        let wide = Slice::new(2, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
        let plan_wide = ring_plan(&rack.cluster, &wide, 16);
        assert!(plan_wide.batches.len() > 1, "spans both wafers");
        assert!(program(&mut rack.fabric, &plan_wide).is_err());
        assert_eq!(
            count(&rack),
            before,
            "failed programming left circuits behind"
        );
        assert_eq!(rack.fabric.cross_circuits().count(), cross_before);
    }

    #[test]
    fn program_establishes_the_planned_count() {
        let mut rack = PhotonicRack::new(1);
        let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(2, 2, 1));
        let plan = ring_plan(&rack.cluster, &slice, 2);
        assert_eq!(plan.circuits(), 4);
        match program(&mut rack.fabric, &plan) {
            Ok(handles) => assert_eq!(handles.len(), 4),
            Err(e) => panic!("programming a lone 2x2x1 ring failed: {e}"),
        }
    }
}
