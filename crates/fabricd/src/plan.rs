//! Circuit planning: from an admitted slice to programmable demands.
//!
//! An admitted tenant runs ring collectives over its slice (§4.1), so the
//! control plane programs one circuit per directed ring hop along the
//! slice's snake order. Hops whose endpoints share a server become
//! intra-wafer demands, grouped per wafer and executed through
//! [`route::allocate_non_overlapping`] — the atomic, mutually
//! edge-disjoint batch primitive. Hops crossing servers become cross-wafer
//! circuits over the fiber plant. [`program`] commits the whole plan
//! atomically: any establishment error rolls back everything this plan
//! placed, so admission control sees exact all-or-nothing semantics.

use collectives::snake_order;
use desim::SimDuration;
use lightpath::{
    CircuitError, CrossCircuitId, CrossPlan, CtrlFault, Fabric, FabricCircuit, FabricError,
    TileCoord, WaferId,
};
use resilience::chip_to_tile;
use route::{allocate_non_overlapping_with, Demand, PlanLibrary, PlanStats, Searcher, StampAudit};
use std::collections::{BTreeMap, VecDeque};
use topo::{Cluster, Slice};

/// The circuits a slice's ring needs, split by execution mechanism.
#[derive(Debug, Clone)]
pub struct CircuitPlan {
    /// Intra-wafer demands, grouped per wafer in wafer-id order. Each
    /// group is established as one atomic edge-disjoint batch.
    pub batches: Vec<(lightpath::WaferId, Vec<Demand>)>,
    /// Cross-wafer hops `(src, dst, lanes)`, in ring order.
    pub cross: Vec<(
        (lightpath::WaferId, lightpath::TileCoord),
        (lightpath::WaferId, lightpath::TileCoord),
        usize,
    )>,
}

impl CircuitPlan {
    /// Total circuits the plan will establish.
    pub fn circuits(&self) -> usize {
        self.batches.iter().map(|(_, d)| d.len()).sum::<usize>() + self.cross.len()
    }
}

/// Bound on cached cross-wafer plans (FIFO eviction).
const CROSS_PLAN_CAPACITY: usize = 256;

/// Cross-wafer plan cache counters. Telemetry only — never journaled or
/// fingerprinted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossPlanStats {
    /// Cross circuits established by stamping a cached [`CrossPlan`].
    pub hits: u64,
    /// Cross circuits established fresh (and captured for next time).
    pub misses: u64,
    /// Stamps refused because a witness or the fiber route drifted; the
    /// circuit was then established fresh and re-captured.
    pub fallbacks: u64,
    /// Plans dropped by the FIFO capacity bound.
    pub evictions: u64,
}

/// Identity of a cross-wafer hop: endpoints and lane count.
type CrossKey = ((usize, u8, u8), (usize, u8, u8), usize);

fn cross_key(src: (WaferId, TileCoord), dst: (WaferId, TileCoord), lanes: usize) -> CrossKey {
    (
        (src.0 .0, src.1.row, src.1.col),
        (dst.0 .0, dst.1.row, dst.1.col),
        lanes,
    )
}

/// The routing scratch and plan caches a control plane holds across every
/// plan it commits: one reusable A* [`Searcher`] (so retried and replayed
/// programs never allocate a fresh scratch per call), the intra-wafer
/// [`PlanLibrary`] of relocatable batch templates, and a FIFO cache of
/// captured [`CrossPlan`]s. All caches are pure accelerators: a warm and a
/// cold engine produce byte-identical fabric state, which is why none of
/// this is journaled, snapshotted, or fingerprinted.
#[derive(Debug, Clone)]
pub struct PlanEngine {
    searcher: Searcher,
    library: PlanLibrary,
    cross: BTreeMap<CrossKey, CrossPlan>,
    cross_order: VecDeque<CrossKey>,
    cross_stats: CrossPlanStats,
}

impl Default for PlanEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanEngine {
    /// A cold engine: empty caches, empty scratch.
    pub fn new() -> Self {
        PlanEngine {
            searcher: Searcher::new(),
            library: PlanLibrary::new(),
            cross: BTreeMap::new(),
            cross_order: VecDeque::new(),
            cross_stats: CrossPlanStats::default(),
        }
    }

    /// Intra-wafer plan-library counters.
    pub fn plan_stats(&self) -> PlanStats {
        self.library.stats()
    }

    /// Cross-wafer plan cache counters.
    pub fn cross_stats(&self) -> CrossPlanStats {
        self.cross_stats
    }

    /// Recent stamped-batch audit records (boundary contracts), for
    /// verify rule RTE501.
    pub fn audit(&self) -> StampAudit {
        self.library.audit()
    }

    /// Plan-library instances currently resident.
    pub fn resident_instances(&self) -> usize {
        self.library.instance_count()
    }

    /// Cross-wafer plans currently resident.
    pub fn resident_cross_plans(&self) -> usize {
        self.cross.len()
    }

    /// Establish one cross-wafer circuit, stamping a cached plan when its
    /// witnesses still hold and falling back to (and re-capturing) a fresh
    /// establish otherwise.
    fn establish_cross(
        &mut self,
        fabric: &mut Fabric,
        src: (WaferId, TileCoord),
        dst: (WaferId, TileCoord),
        lanes: usize,
    ) -> Result<(CrossCircuitId, SimDuration), CircuitError> {
        let key = cross_key(src, dst, lanes);
        if let Some(plan) = self.cross.get(&key) {
            // An error out of a stamp is exactly the error a fresh
            // establish would raise (the witnesses pin the same paths), so
            // it propagates rather than falling back.
            match fabric.stamp_cross(plan)? {
                Some(done) => {
                    self.cross_stats.hits += 1;
                    return Ok(done);
                }
                None => self.cross_stats.fallbacks += 1,
            }
        }
        self.cross_stats.misses += 1;
        let (id, setup, plan) = fabric.establish_cross_captured(src, dst, lanes)?;
        if self.cross.insert(key, plan).is_none() {
            self.cross_order.push_back(key);
            while self.cross_order.len() > CROSS_PLAN_CAPACITY {
                if let Some(old) = self.cross_order.pop_front() {
                    if self.cross.remove(&old).is_some() {
                        self.cross_stats.evictions += 1;
                    }
                }
            }
        }
        Ok((id, setup))
    }
}

/// A failed plan commit: the structured fault plus how many circuits this
/// call had already placed (and rolled back) before hitting it. The count
/// lets the control plane journal an honest `Rollback` record.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramFailure {
    /// What went wrong, as a workspace fault chain — the outer frame is
    /// [`CtrlFault::ProgramBatch`] or [`CtrlFault::ProgramCross`] and the
    /// source is the underlying route or circuit fault.
    pub error: FabricError,
    /// Circuits established by this plan and torn down again.
    pub rolled_back: usize,
}

/// Plan the ring circuits for `slice`: one circuit per directed snake-order
/// hop (including the wraparound), `lanes` wavelengths each. A 1-chip slice
/// needs no circuits and yields an empty plan.
pub fn ring_plan(cluster: &Cluster, slice: &Slice, lanes: usize) -> CircuitPlan {
    let order = snake_order(slice);
    let mut batches: BTreeMap<lightpath::WaferId, Vec<Demand>> = BTreeMap::new();
    let mut cross = Vec::new();
    if order.len() >= 2 {
        for i in 0..order.len() {
            let a = order[i];
            let b = order[(i + 1) % order.len()];
            let (wa, ta) = chip_to_tile(cluster, a);
            let (wb, tb) = chip_to_tile(cluster, b);
            if wa == wb {
                batches
                    .entry(wa)
                    .or_default()
                    .push(Demand::new(ta, tb, lanes));
            } else {
                cross.push(((wa, ta), (wb, tb), lanes));
            }
        }
    }
    CircuitPlan {
        batches: batches.into_iter().collect(),
        cross,
    }
}

/// Execute a plan atomically: per-wafer edge-disjoint batches first, then
/// cross-wafer circuits in ring order. On any error every circuit this call
/// established is torn down (in reverse) before the error is returned.
pub fn program(fabric: &mut Fabric, plan: &CircuitPlan) -> Result<Vec<FabricCircuit>, FabricError> {
    program_with(fabric, plan, &mut Searcher::new())
}

/// [`program`] with a caller-provided routing scratch: the daemon holds one
/// [`Searcher`] across every plan it commits, so steady-state programming
/// allocates nothing per search.
pub fn program_with(
    fabric: &mut Fabric,
    plan: &CircuitPlan,
    searcher: &mut Searcher,
) -> Result<Vec<FabricCircuit>, FabricError> {
    program_counted(fabric, plan, searcher).map_err(|f| f.error)
}

/// [`program_with`], but a failure also reports how many circuits were
/// placed and rolled back before the faulting step — the admission path
/// journals that count in its `Rollback` record.
pub fn program_counted(
    fabric: &mut Fabric,
    plan: &CircuitPlan,
    searcher: &mut Searcher,
) -> Result<Vec<FabricCircuit>, ProgramFailure> {
    let mut handles: Vec<FabricCircuit> = Vec::new();
    let rollback = |fabric: &mut Fabric, handles: Vec<FabricCircuit>| -> usize {
        let n = handles.len();
        for h in handles.into_iter().rev() {
            let _ = fabric.teardown_handle(h);
        }
        n
    };
    for (w, demands) in &plan.batches {
        match allocate_non_overlapping_with(fabric.wafer_mut(*w), demands, searcher) {
            Ok(ids) => handles.extend(ids.into_iter().map(|id| FabricCircuit::Wafer(*w, id))),
            Err(e) => {
                let rolled_back = rollback(fabric, handles);
                return Err(ProgramFailure {
                    error: FabricError::caused_by(CtrlFault::ProgramBatch { wafer: w.0 }, e),
                    rolled_back,
                });
            }
        }
    }
    for (i, &(src, dst, lanes)) in plan.cross.iter().enumerate() {
        match fabric.establish_cross(src, dst, lanes) {
            Ok((id, _)) => handles.push(FabricCircuit::Cross(id)),
            Err(e) => {
                let rolled_back = rollback(fabric, handles);
                return Err(ProgramFailure {
                    error: FabricError::caused_by(CtrlFault::ProgramCross { index: i }, e.into()),
                    rolled_back,
                });
            }
        }
    }
    Ok(handles)
}

/// [`program_counted`] through a [`PlanEngine`]: per-wafer batches are
/// admitted via the plan library (translate + collision-check + stamp,
/// falling back to fresh A* on contract mismatch or cache miss) and
/// cross-wafer hops via the cross-plan cache. Results, errors, rollback
/// behaviour, and every byte of fabric state are identical to
/// [`program_counted`] — the engine only removes redundant search and
/// link-budget work.
pub fn program_planned(
    fabric: &mut Fabric,
    plan: &CircuitPlan,
    engine: &mut PlanEngine,
) -> Result<Vec<FabricCircuit>, ProgramFailure> {
    let mut handles: Vec<FabricCircuit> = Vec::new();
    let rollback = |fabric: &mut Fabric, handles: Vec<FabricCircuit>| -> usize {
        let n = handles.len();
        for h in handles.into_iter().rev() {
            let _ = fabric.teardown_handle(h);
        }
        n
    };
    for (w, demands) in &plan.batches {
        match engine
            .library
            .stamp_or_route(fabric.wafer_mut(*w), demands, &mut engine.searcher)
        {
            Ok(ids) => handles.extend(ids.into_iter().map(|id| FabricCircuit::Wafer(*w, id))),
            Err(e) => {
                let rolled_back = rollback(fabric, handles);
                return Err(ProgramFailure {
                    error: FabricError::caused_by(CtrlFault::ProgramBatch { wafer: w.0 }, e),
                    rolled_back,
                });
            }
        }
    }
    for (i, &(src, dst, lanes)) in plan.cross.iter().enumerate() {
        match engine.establish_cross(fabric, src, dst, lanes) {
            Ok((id, _)) => handles.push(FabricCircuit::Cross(id)),
            Err(e) => {
                let rolled_back = rollback(fabric, handles);
                return Err(ProgramFailure {
                    error: FabricError::caused_by(CtrlFault::ProgramCross { index: i }, e.into()),
                    rolled_back,
                });
            }
        }
    }
    Ok(handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience::PhotonicRack;
    use topo::{Coord3, Shape3};

    #[test]
    fn one_chip_slice_plans_nothing() {
        let rack = PhotonicRack::new(1);
        let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(1, 1, 1));
        let plan = ring_plan(&rack.cluster, &slice, 2);
        assert_eq!(plan.circuits(), 0);
    }

    #[test]
    fn ring_plan_covers_every_hop_once() {
        let rack = PhotonicRack::new(1);
        // 4×2×1 = 8 chips spanning two servers: 8 directed ring hops.
        let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
        let plan = ring_plan(&rack.cluster, &slice, 2);
        assert_eq!(plan.circuits(), 8);
        assert!(!plan.cross.is_empty(), "slice spans servers");
        assert!(!plan.batches.is_empty(), "servers hold internal hops");
    }

    #[test]
    fn program_is_atomic_under_exhaustion() {
        let mut rack = PhotonicRack::new(1);
        // Saturate one server's SerDes: a 2-chip ring at 16 λ consumes
        // every tx and rx lane on both of its tiles.
        let blocker = Slice::new(1, Coord3::new(2, 0, 0), Shape3::new(2, 1, 1));
        let plan_blocker = ring_plan(&rack.cluster, &blocker, 16);
        assert!(program(&mut rack.fabric, &plan_blocker).is_ok());
        let count = |rack: &PhotonicRack| -> Vec<usize> {
            (0..rack.fabric.wafer_count())
                .map(|w| rack.fabric.wafer(lightpath::WaferId(w)).circuits().count())
                .collect()
        };
        let before = count(&rack);
        let cross_before = rack.fabric.cross_circuits().count();
        // A wider ring shares the saturated chips: its batch on the fresh
        // wafer establishes first, then the saturated wafer's batch fails
        // — everything already placed must be rolled back.
        let wide = Slice::new(2, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
        let plan_wide = ring_plan(&rack.cluster, &wide, 16);
        assert!(plan_wide.batches.len() > 1, "spans both wafers");
        assert!(program(&mut rack.fabric, &plan_wide).is_err());
        assert_eq!(
            count(&rack),
            before,
            "failed programming left circuits behind"
        );
        assert_eq!(rack.fabric.cross_circuits().count(), cross_before);
    }

    /// Legacy oracle for the plan engine: programming the same ring plans
    /// through a warm [`PlanEngine`] must leave the fabric byte-identical
    /// to the scratch-routed path, cross-wafer circuits included.
    #[test]
    fn planned_program_equals_scratch_program_bit_for_bit() {
        let snap = |rack: &PhotonicRack| -> String {
            let mut w = desim::SnapWriter::new();
            rack.fabric.write_snap(&mut w);
            w.finish()
        };
        let mut scratch_rack = PhotonicRack::new(1);
        let mut planned_rack = PhotonicRack::new(1);
        let mut searcher = Searcher::new();
        let mut engine = PlanEngine::new();
        // 4×2×1 spans two servers: intra-wafer batches + cross hops. Three
        // cycles so the second and third run against a warm engine.
        let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
        for cycle in 0..3 {
            let plan = ring_plan(&scratch_rack.cluster, &slice, 2);
            let a = program_with(&mut scratch_rack.fabric, &plan, &mut searcher)
                .unwrap_or_else(|e| panic!("scratch cycle {cycle}: {e}"));
            let b = program_planned(&mut planned_rack.fabric, &plan, &mut engine)
                .unwrap_or_else(|f| panic!("planned cycle {cycle}: {}", f.error));
            assert_eq!(a, b, "cycle {cycle}: handles diverged");
            assert_eq!(snap(&scratch_rack), snap(&planned_rack), "cycle {cycle}");
            for h in a.iter().rev() {
                scratch_rack.fabric.teardown_handle(*h).unwrap();
            }
            for h in b.iter().rev() {
                planned_rack.fabric.teardown_handle(*h).unwrap();
            }
        }
        let stats = engine.plan_stats();
        assert!(stats.hits >= 2, "warm cycles must stamp: {stats:?}");
        let cross = engine.cross_stats();
        assert!(
            cross.hits >= 2,
            "warm cycles must stamp cross plans: {cross:?}"
        );
    }

    #[test]
    fn program_establishes_the_planned_count() {
        let mut rack = PhotonicRack::new(1);
        let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(2, 2, 1));
        let plan = ring_plan(&rack.cluster, &slice, 2);
        assert_eq!(plan.circuits(), 4);
        match program(&mut rack.fabric, &plan) {
            Ok(handles) => assert_eq!(handles.len(), 4),
            Err(e) => panic!("programming a lone 2x2x1 ring failed: {e}"),
        }
    }
}
