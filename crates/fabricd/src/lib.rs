//! fabricd — a deterministic control plane for the server-scale photonic
//! fabric.
//!
//! The paper argues the fabric's value comes from *operability*: slices are
//! carved on demand, circuits reprogram in 3.7 µs, and a failed chip is
//! spliced out with a 1-server blast radius. This crate is the daemon that
//! exercises those claims end to end:
//!
//! - **Admission** ([`state`], [`ctrl`]): Poisson job arrivals from
//!   [`workloads`] are placed with the best-fit slice allocator and queued
//!   (with timeout) when the fabric is full.
//! - **Circuit programming** ([`plan`]): an admitted slice's ring
//!   collective becomes per-wafer atomic edge-disjoint batches plus
//!   cross-wafer fiber circuits, committed all-or-nothing.
//! - **Repair** ([`state`]): injected chip failures are spliced around via
//!   [`resilience::optical_repair`], with blast radius accounted per
//!   incident.
//! - **Journal** ([`journal`]): every decision is an append-only record;
//!   replaying the journal against a fresh rack reproduces the live
//!   fabric's telemetry bit for bit, and the FNV-1a journal hash is the
//!   determinism fingerprint (same seed ⇒ same hash).
//! - **Metrics** ([`metrics`]): counters, admission-wait histogram, and
//!   sampled gauge time-series over [`desim::stats`].
//!
//! The `spsim ctrl` subcommand drives [`ctrl::run_scenario`] and prints the
//! journal, hash, and metrics summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctrl;
pub mod journal;
pub mod metrics;
pub mod plan;
pub mod report;
pub mod snapshot;
pub mod state;

pub use ctrl::{
    resume_campaign, run_campaign, run_scenario, CampaignOptions, CampaignOutcome, CtrlConfig,
    CtrlOutcome, CtrlSnapshot,
};
pub use journal::{DenyReason, Journal, JournalEntry, JournalHeader, Record, StitchLegRecord};
pub use metrics::{Metrics, RouteTelemetry};
pub use plan::{
    program, program_counted, program_planned, program_with, ring_plan, CircuitPlan,
    CrossPlanStats, PlanEngine, ProgramFailure,
};
pub use report::{
    bench_config, compare_ctrl_baseline, run_ctrl_bench, CtrlBenchReport, MIN_CTRL_PERF_RATIO,
};
pub use snapshot::FabricSnapshot;
pub use state::{
    replay, replay_from, Admission, FabricState, IncidentRecord, JobRecord, RepairOutcome,
    Utilization,
};
