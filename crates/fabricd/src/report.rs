//! `BENCH_ctrl.json`: the committed control-plane benchmark baseline.
//!
//! Same contract as `BENCH_pod.json`: no serde in the workspace, so the
//! report is a flat hand-rolled JSON object plus a tolerant extractor
//! that reads back exactly what [`CtrlBenchReport::to_json`] writes.
//! `cargo xtask lint` re-runs the ctrl smoke campaign and gates on it:
//!
//! * **determinism, exact** — state fingerprint, journal hash, logical
//!   record count, snapshot count, and the tail-replay record count all
//!   match the baseline bit for bit;
//! * **delta replay is O(tail)** — the records folded by
//!   [`replay_from`](crate::replay_from) are structurally fewer than a
//!   full replay's (asserted at bench time, pinned in the baseline);
//! * **throughput floor** — admissions/sec may not regress below
//!   [`MIN_CTRL_PERF_RATIO`] × baseline, and tail-replay latency may not
//!   exceed baseline / [`MIN_CTRL_PERF_RATIO`].

use crate::ctrl::{run_campaign, CampaignOptions, CtrlConfig};
use crate::state::{replay, replay_from};
use desim::SimDuration;

/// Throughput may not drop below this fraction of the baseline (and
/// tail-replay latency may not exceed `baseline / ratio`).
pub const MIN_CTRL_PERF_RATIO: f64 = 0.1;

/// The committed-baseline bench configuration. `cargo xtask lint` and
/// `spsim ctrl --campaign --write-baseline` must drive the *same*
/// campaign bit for bit, so both call this instead of hand-rolling a
/// config.
pub fn bench_config() -> (CtrlConfig, SimDuration) {
    (
        CtrlConfig {
            jobs: 48,
            seed: 7,
            failures: 2,
            ..CtrlConfig::default()
        },
        SimDuration::from_secs(600),
    )
}

/// The control-plane benchmark summary that is serialized, committed,
/// and gated on.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlBenchReport {
    /// Jobs in the campaign's arrival trace.
    pub jobs: u64,
    /// Snapshot cadence in simulated seconds.
    pub snapshot_every_s: u64,
    /// Snapshots captured over the campaign.
    pub snapshots: u64,
    /// Final state fingerprint, hex with 0x prefix.
    pub fingerprint: String,
    /// Journal hash, hex with 0x prefix.
    pub journal_hash: String,
    /// Logical journal records (compaction-invariant).
    pub journal_records: u64,
    /// Jobs admitted over the campaign.
    pub admissions: u64,
    /// Wall-clock seconds of the campaign (informational).
    pub wall_s: f64,
    /// Admissions per wall-clock second — the gated throughput.
    pub admissions_per_sec: f64,
    /// Records a from-scratch replay folds (the whole journal).
    pub replay_full_records: u64,
    /// Records a delta replay folds from the bench snapshot (the tail).
    pub replay_tail_records: u64,
    /// Wall-clock milliseconds of the from-scratch replay (informational).
    pub replay_full_ms: f64,
    /// Wall-clock milliseconds of the delta replay — the gated latency.
    pub replay_tail_ms: f64,
}

/// Run the ctrl benchmark: drive a snapshotted campaign, then time a
/// from-scratch replay against a delta replay from a mid-stream snapshot,
/// verifying both reproduce the live state's fingerprint.
pub fn run_ctrl_bench(
    cfg: &CtrlConfig,
    snapshot_every: SimDuration,
) -> Result<CtrlBenchReport, String> {
    // detlint: allow(DET002) — wall-clock feeds throughput/latency
    // telemetry only; every simulated output is a pure function of the
    // config.
    let started = std::time::Instant::now();
    let out = run_campaign(
        cfg,
        &CampaignOptions {
            snapshot_every: Some(snapshot_every),
            ..CampaignOptions::default()
        },
    )?;
    let wall_s = started.elapsed().as_secs_f64();

    let journal = out.state.journal();
    let live_fp = out.state.fingerprint();
    // A quiesced campaign's *final* snapshot trails its last journaled
    // decision, so delta replay from it would fold nothing. Bench from the
    // three-quarter-point snapshot instead: that is the shape of a real
    // crash-restart — a snapshot mid-stream plus a genuine journal tail.
    let snap = out
        .snapshots
        .get(out.snapshots.len().saturating_sub(1) * 3 / 4)
        .ok_or_else(|| "campaign captured no snapshots; raise jobs or lower cadence".to_string())?;

    let full_started = std::time::Instant::now(); // detlint: allow(DET002) wall-clock bench timing
    let full = replay(journal).map_err(|e| format!("full replay failed: {e}"))?;
    let replay_full_ms = full_started.elapsed().as_secs_f64() * 1e3;
    if full.fingerprint() != live_fp {
        return Err("full replay diverged from the live state".to_string());
    }

    let tail_started = std::time::Instant::now(); // detlint: allow(DET002) wall-clock bench timing
    let tail =
        replay_from(&snap.fabric, journal).map_err(|e| format!("delta replay failed: {e}"))?;
    let replay_tail_ms = tail_started.elapsed().as_secs_f64() * 1e3;
    if tail.fingerprint() != live_fp {
        return Err("delta replay diverged from the live state".to_string());
    }

    let replay_full_records = journal.len() as u64;
    let replay_tail_records = replay_full_records.saturating_sub(snap.fabric.seq + 1);
    if replay_tail_records >= replay_full_records {
        return Err(format!(
            "delta replay folded {replay_tail_records} of {replay_full_records} records — \
             not O(tail)"
        ));
    }

    let admissions = out.metrics.counter("jobs.admitted");
    let admissions_per_sec = if wall_s > 0.0 {
        admissions as f64 / wall_s
    } else {
        0.0
    };

    Ok(CtrlBenchReport {
        jobs: cfg.jobs as u64,
        snapshot_every_s: snapshot_every.as_ps() / desim::PS_PER_S,
        snapshots: out.snapshots.len() as u64,
        fingerprint: format!("{live_fp:#018x}"),
        journal_hash: format!("{:#018x}", journal.hash()),
        journal_records: replay_full_records,
        admissions,
        wall_s,
        admissions_per_sec,
        replay_full_records,
        replay_tail_records,
        replay_full_ms,
        replay_tail_ms,
    })
}

impl CtrlBenchReport {
    /// Serialize to the committed JSON form (stable key order). Floats use
    /// Rust's shortest round-trip form so `parse(to_json(r)) == r`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"jobs\": {},\n  \"snapshot_every_s\": {},\n  \"snapshots\": {},\n  \
             \"fingerprint\": \"{}\",\n  \"journal_hash\": \"{}\",\n  \
             \"journal_records\": {},\n  \"admissions\": {},\n  \"wall_s\": {},\n  \
             \"admissions_per_sec\": {},\n  \"replay_full_records\": {},\n  \
             \"replay_tail_records\": {},\n  \"replay_full_ms\": {},\n  \
             \"replay_tail_ms\": {}\n}}\n",
            self.jobs,
            self.snapshot_every_s,
            self.snapshots,
            self.fingerprint,
            self.journal_hash,
            self.journal_records,
            self.admissions,
            self.wall_s,
            self.admissions_per_sec,
            self.replay_full_records,
            self.replay_tail_records,
            self.replay_full_ms,
            self.replay_tail_ms,
        )
    }

    /// Parse the JSON form produced by [`to_json`](Self::to_json).
    pub fn parse(text: &str) -> Result<CtrlBenchReport, String> {
        Ok(CtrlBenchReport {
            jobs: json_u64(text, "jobs")?,
            snapshot_every_s: json_u64(text, "snapshot_every_s")?,
            snapshots: json_u64(text, "snapshots")?,
            fingerprint: json_str(text, "fingerprint")?,
            journal_hash: json_str(text, "journal_hash")?,
            journal_records: json_u64(text, "journal_records")?,
            admissions: json_u64(text, "admissions")?,
            wall_s: json_f64(text, "wall_s")?,
            admissions_per_sec: json_f64(text, "admissions_per_sec")?,
            replay_full_records: json_u64(text, "replay_full_records")?,
            replay_tail_records: json_u64(text, "replay_tail_records")?,
            replay_full_ms: json_f64(text, "replay_full_ms")?,
            replay_tail_ms: json_f64(text, "replay_tail_ms")?,
        })
    }
}

/// Compare a fresh run against the committed baseline. Returns one
/// message per violated gate; empty means the baseline holds. `wall_s`
/// and the replay wall-clock figures of the *baseline run* are recorded
/// for context; latency is gated with the same headroom ratio as
/// throughput.
pub fn compare_ctrl_baseline(current: &CtrlBenchReport, baseline: &CtrlBenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, cur, base) in [
        ("jobs", current.jobs, baseline.jobs),
        (
            "snapshot_every_s",
            current.snapshot_every_s,
            baseline.snapshot_every_s,
        ),
        ("snapshots", current.snapshots, baseline.snapshots),
        (
            "journal_records",
            current.journal_records,
            baseline.journal_records,
        ),
        ("admissions", current.admissions, baseline.admissions),
        (
            "replay_full_records",
            current.replay_full_records,
            baseline.replay_full_records,
        ),
        (
            "replay_tail_records",
            current.replay_tail_records,
            baseline.replay_tail_records,
        ),
    ] {
        if cur != base {
            failures.push(format!("{name} {cur} != baseline {base}"));
        }
    }
    if current.fingerprint != baseline.fingerprint {
        failures.push(format!(
            "fingerprint {} != baseline {} — a control-plane output changed; if intended, \
             regenerate with `spsim ctrl --campaign --write-baseline BENCH_ctrl.json`",
            current.fingerprint, baseline.fingerprint
        ));
    }
    if current.journal_hash != baseline.journal_hash {
        failures.push(format!(
            "journal hash {} != baseline {}",
            current.journal_hash, baseline.journal_hash
        ));
    }
    let floor = baseline.admissions_per_sec * MIN_CTRL_PERF_RATIO;
    if current.admissions_per_sec < floor {
        failures.push(format!(
            "throughput {:.0} admissions/s is below {:.0} ({}x of baseline {:.0})",
            current.admissions_per_sec, floor, MIN_CTRL_PERF_RATIO, baseline.admissions_per_sec
        ));
    }
    if baseline.replay_tail_ms > 0.0 {
        let ceiling = baseline.replay_tail_ms / MIN_CTRL_PERF_RATIO;
        if current.replay_tail_ms > ceiling {
            failures.push(format!(
                "delta-replay latency {:.3} ms exceeds {:.3} ms (baseline {:.3} ms / {})",
                current.replay_tail_ms, ceiling, baseline.replay_tail_ms, MIN_CTRL_PERF_RATIO
            ));
        }
    }
    failures
}

// ------------------------------------------------- tiny JSON extraction --
// Index-free (slice-by-get): fabricd is pinned at zero detlint findings.

/// The raw text after `"key":`, up to the value's end (`,`, `}` or EOL).
fn json_raw<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let needle = format!("\"{key}\"");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("missing key \"{key}\""))?;
    let rest = text.get(at + needle.len()..).unwrap_or_default();
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("no ':' after \"{key}\""))?
        .trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Ok(rest.get(..end).unwrap_or(rest).trim())
}

fn json_str(text: &str, key: &str) -> Result<String, String> {
    let raw = json_raw(text, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("\"{key}\" is not a string: {raw}"))
}

fn json_u64(text: &str, key: &str) -> Result<u64, String> {
    let raw = json_raw(text, key)?;
    raw.parse()
        .map_err(|_| format!("\"{key}\" is not a u64: {raw}"))
}

fn json_f64(text: &str, key: &str) -> Result<f64, String> {
    let raw = json_raw(text, key)?;
    raw.parse()
        .map_err(|_| format!("\"{key}\" is not an f64: {raw}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CtrlBenchReport {
        CtrlBenchReport {
            jobs: 48,
            snapshot_every_s: 600,
            snapshots: 9,
            fingerprint: "0x00000000deadbeef".into(),
            journal_hash: "0x00000000cafef00d".into(),
            journal_records: 321,
            admissions: 44,
            wall_s: 0.25,
            admissions_per_sec: 176.0,
            replay_full_records: 321,
            replay_tail_records: 17,
            replay_full_ms: 4.0,
            replay_tail_ms: 0.5,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let parsed = match CtrlBenchReport::parse(&r.to_json()) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_missing_keys() {
        assert!(CtrlBenchReport::parse("{}").is_err());
        assert!(CtrlBenchReport::parse("{\"jobs\": 48}").is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = report();
        assert!(compare_ctrl_baseline(&r, &r).is_empty());
    }

    #[test]
    fn determinism_drift_fails_the_gate() {
        let baseline = report();
        let mut current = report();
        current.fingerprint = "0x0000000000000001".into();
        current.journal_hash = "0x0000000000000002".into();
        current.replay_tail_records = 18;
        let failures = compare_ctrl_baseline(&current, &baseline);
        assert_eq!(failures.len(), 3, "{failures:?}");
    }

    #[test]
    fn slowdown_fails_but_noise_passes() {
        let baseline = report();
        let mut slow = report();
        slow.admissions_per_sec = baseline.admissions_per_sec * 0.05;
        slow.replay_tail_ms = baseline.replay_tail_ms * 20.0;
        assert_eq!(compare_ctrl_baseline(&slow, &baseline).len(), 2);
        let mut noisy = report();
        noisy.admissions_per_sec = baseline.admissions_per_sec * 0.5;
        noisy.replay_tail_ms = baseline.replay_tail_ms * 2.0;
        noisy.wall_s = baseline.wall_s * 3.0;
        assert!(compare_ctrl_baseline(&noisy, &baseline).is_empty());
    }

    #[test]
    fn bench_runs_and_its_report_round_trips() {
        let cfg = CtrlConfig {
            jobs: 12,
            ..CtrlConfig::default()
        };
        let r = match run_ctrl_bench(&cfg, SimDuration::from_secs(600)) {
            Ok(r) => r,
            Err(e) => panic!("bench failed: {e}"),
        };
        assert!(r.snapshots > 0);
        assert!(r.replay_tail_records < r.replay_full_records, "O(tail)");
        let parsed = match CtrlBenchReport::parse(&r.to_json()) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(parsed, r);
    }
}
