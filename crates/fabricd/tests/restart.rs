//! The replay-equivalence harness pinning the snapshot/compaction/restart
//! contract:
//!
//! 1. For any seed, campaign length, and snapshot cadence, restoring the
//!    latest snapshot and folding only the journal tail reproduces the
//!    from-scratch replay bit for bit — same state fingerprint, same
//!    journal hash, same logical record count — with or without journal
//!    compaction.
//! 2. Crashing a campaign at an arbitrary event and restarting from the
//!    last snapshot yields a final state bit-identical to the
//!    uninterrupted run's.

use desim::SimDuration;
use fabricd::{replay, replay_from, resume_campaign, run_campaign, CampaignOptions, CtrlConfig};
use proptest::prelude::*;
use workloads::ArrivalParams;

fn config(seed: u64, jobs: usize, failures: usize, interarrival_s: u64) -> CtrlConfig {
    CtrlConfig {
        jobs,
        seed,
        failures,
        arrivals: ArrivalParams {
            mean_interarrival: SimDuration::from_secs(interarrival_s),
            ..ArrivalParams::default()
        },
        ..CtrlConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite 1 (ctrl half): snapshot-restore + tail replay is
    /// bit-identical to a full from-scratch replay, for random seeds,
    /// campaign lengths, and snapshot intervals, compacted or not.
    #[test]
    fn delta_replay_matches_full_replay(
        seed in 0u64..1_000,
        jobs in 2usize..14,
        failures in 0usize..3,
        interarrival in 30u64..600,
        every_s in 120u64..1_200,
        compact in any::<bool>(),
    ) {
        let cfg = config(seed, jobs, failures, interarrival);
        let opts = CampaignOptions {
            snapshot_every: Some(SimDuration::from_secs(every_s)),
            compact,
            crash_after_events: None,
        };
        let out = run_campaign(&cfg, &opts).map_err(TestCaseError::Fail)?;
        let journal = out.state.journal();
        let live_fp = out.state.fingerprint();

        if let Some(snap) = out.snapshots.last() {
            // Delta replay: restore the snapshot, fold only the tail. The
            // state fingerprint (occupancy, fabric, jobs, incidents,
            // reservations) must match the live run's bit for bit; the
            // restored journal resumes the chain exactly at the snapshot
            // watermark (replayed journals are reconstructions, so their
            // hash equivalence is pinned by the live-resume test below).
            let tail = replay_from(&snap.fabric, journal)
                .map_err(|e| TestCaseError::Fail(e.to_string()))?;
            prop_assert_eq!(tail.fingerprint(), live_fp);
            prop_assert_eq!(tail.journal().next_seq(), snap.fabric.seq + 1);
            prop_assert_eq!(tail.journal().base_fnv(), snap.fabric.base_fnv);

            // Full replay only exists for uncompacted journals; when it
            // does, it must agree with the delta replay bit for bit.
            if !compact {
                let full = replay(journal)
                    .map_err(|e| TestCaseError::Fail(e.to_string()))?;
                prop_assert_eq!(full.fingerprint(), live_fp);
            } else {
                prop_assert!(journal.base_seq() > 0, "compaction happened");
                prop_assert!(replay(journal).is_err(), "full replay rejects a compacted journal");
            }
        }
    }

    /// Satellite 2 (ctrl half): kill the campaign at a random event count,
    /// restart from the latest snapshot, and the resumed run's final
    /// fingerprint, journal hash, horizon, and metrics equal the
    /// uninterrupted run's.
    #[test]
    fn crash_restart_matches_uninterrupted_run(
        seed in 0u64..1_000,
        jobs in 2usize..14,
        failures in 0usize..3,
        every_s in 120u64..900,
        crash_frac in 0.1f64..0.9,
        compact in any::<bool>(),
    ) {
        let cfg = config(seed, jobs, failures, 120);
        let opts = CampaignOptions {
            snapshot_every: Some(SimDuration::from_secs(every_s)),
            compact,
            crash_after_events: None,
        };
        let full = run_campaign(&cfg, &opts).map_err(TestCaseError::Fail)?;
        prop_assume!(full.events_executed >= 2);

        let crash_at = ((full.events_executed as f64 * crash_frac) as u64).max(1);
        let crashed = run_campaign(&cfg, &CampaignOptions {
            crash_after_events: Some(crash_at),
            ..opts
        }).map_err(TestCaseError::Fail)?;

        if crashed.crashed {
            // Only restartable if a snapshot landed before the crash;
            // otherwise a fresh run IS the restart, which `full` covers.
            if let Some(snap) = crashed.snapshots.last() {
                let resumed = resume_campaign(snap, &CampaignOptions {
                    crash_after_events: None,
                    ..opts
                }).map_err(TestCaseError::Fail)?;
                prop_assert!(!resumed.crashed);
                prop_assert_eq!(resumed.state.fingerprint(), full.state.fingerprint());
                prop_assert_eq!(resumed.state.journal().hash(), full.state.journal().hash());
                prop_assert_eq!(resumed.state.journal().len(), full.state.journal().len());
                prop_assert_eq!(resumed.horizon, full.horizon);
                prop_assert_eq!(resumed.metrics.summary(), full.metrics.summary());
                prop_assert_eq!(
                    resumed.metrics.rejection_report_json(),
                    full.metrics.rejection_report_json()
                );
            }
        } else {
            // The campaign drained before the crash point; the "crashed"
            // run is simply the full run.
            prop_assert_eq!(crashed.state.fingerprint(), full.state.fingerprint());
        }
    }
}
