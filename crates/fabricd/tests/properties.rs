//! Property tests of the control plane's determinism contract:
//!
//! 1. Running the same scenario twice produces bit-identical journals
//!    (same FNV-1a hash), whatever the seed or load mix.
//! 2. Replaying a journal against a fresh rack reproduces the live run's
//!    final per-wafer telemetry exactly — occupancy histograms, free-lane
//!    counts, reconfiguration counters and all.

use desim::SimDuration;
use fabricd::{replay, run_scenario, CtrlConfig};
use proptest::prelude::*;
use workloads::ArrivalParams;

fn config(seed: u64, jobs: usize, failures: usize, interarrival_s: u64) -> CtrlConfig {
    CtrlConfig {
        jobs,
        seed,
        failures,
        arrivals: ArrivalParams {
            mean_interarrival: SimDuration::from_secs(interarrival_s),
            ..ArrivalParams::default()
        },
        ..CtrlConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_yields_identical_journal_hashes(
        seed in 0u64..1_000,
        jobs in 1usize..16,
        failures in 0usize..3,
        interarrival in 10u64..600,
    ) {
        let cfg = config(seed, jobs, failures, interarrival);
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        prop_assert_eq!(a.state.journal().hash(), b.state.journal().hash());
        prop_assert_eq!(a.state.journal().len(), b.state.journal().len());
    }

    #[test]
    fn replay_reconstructs_the_live_telemetry(
        seed in 0u64..1_000,
        jobs in 1usize..12,
        failures in 0usize..2,
    ) {
        let cfg = config(seed, jobs, failures, 120);
        let live = run_scenario(&cfg);
        let replayed = match replay(live.state.journal()) {
            Ok(st) => st,
            Err(e) => return Err(TestCaseError::Fail(format!("replay diverged: {e}"))),
        };
        prop_assert_eq!(replayed.telemetry(), live.state.telemetry());
        prop_assert_eq!(replayed.live_jobs(), live.state.live_jobs());
        prop_assert_eq!(replayed.incidents().len(), live.state.incidents().len());
    }
}

/// The ISSUE's end-to-end acceptance scenario, pinned deterministically: a
/// single injected chip failure on a busy fabric is repaired optically with
/// a blast radius of exactly one server.
#[test]
fn acceptance_single_failure_blast_radius_one_server() {
    let out = run_scenario(&CtrlConfig::default());
    let repairs: Vec<_> = out
        .state
        .incidents()
        .iter()
        .filter_map(|i| i.repair)
        .collect();
    assert!(
        !repairs.is_empty(),
        "default scenario must repair a failure"
    );
    for rep in &repairs {
        assert_eq!(rep.blast_servers, 1, "paper claim: 1-server blast radius");
        assert!((rep.setup.as_micros_f64() - 3.7).abs() < 1e-9);
    }
    // And the journal round-trips even through the repair path.
    let replayed = match replay(out.state.journal()) {
        Ok(st) => st,
        Err(e) => panic!("replay diverged: {e}"),
    };
    assert_eq!(replayed.telemetry(), out.state.telemetry());
}
