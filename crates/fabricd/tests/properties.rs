//! Property tests of the control plane's determinism contract:
//!
//! 1. Running the same scenario twice produces bit-identical journals
//!    (same FNV-1a hash), whatever the seed or load mix.
//! 2. Replaying a journal against a fresh rack reproduces the live run's
//!    final per-wafer telemetry exactly — occupancy histograms, free-lane
//!    counts, reconfiguration counters and all.

use desim::{SimDuration, SimTime};
use fabricd::{replay, run_scenario, Admission, CtrlConfig, FabricState};
use proptest::prelude::*;
use topo::Shape3;
use workloads::ArrivalParams;

fn config(seed: u64, jobs: usize, failures: usize, interarrival_s: u64) -> CtrlConfig {
    CtrlConfig {
        jobs,
        seed,
        failures,
        arrivals: ArrivalParams {
            mean_interarrival: SimDuration::from_secs(interarrival_s),
            ..ArrivalParams::default()
        },
        ..CtrlConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_yields_identical_journal_hashes(
        seed in 0u64..1_000,
        jobs in 1usize..16,
        failures in 0usize..3,
        interarrival in 10u64..600,
    ) {
        let cfg = config(seed, jobs, failures, interarrival);
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        prop_assert_eq!(a.state.journal().hash(), b.state.journal().hash());
        prop_assert_eq!(a.state.journal().len(), b.state.journal().len());
    }

    #[test]
    fn replay_reconstructs_the_live_telemetry(
        seed in 0u64..1_000,
        jobs in 1usize..12,
        failures in 0usize..2,
    ) {
        let cfg = config(seed, jobs, failures, 120);
        let live = run_scenario(&cfg);
        let replayed = match replay(live.state.journal()) {
            Ok(st) => st,
            Err(e) => return Err(TestCaseError::Fail(format!("replay diverged: {e}"))),
        };
        prop_assert_eq!(replayed.telemetry(), live.state.telemetry());
        prop_assert_eq!(replayed.live_jobs(), live.state.live_jobs());
        prop_assert_eq!(replayed.incidents().len(), live.state.incidents().len());
    }

    /// Fault campaigns — injected failures, programming retries, and
    /// periodic infeasible plans — never panic, are run-to-run
    /// deterministic, and their journals (now carrying `Reject` +
    /// `Rollback` pairs) still replay bit-for-bit.
    #[test]
    fn fault_campaigns_replay_cleanly(
        seed in 0u64..500,
        jobs in 1usize..14,
        failures in 0usize..3,
        retries in 0u32..3,
        infeasible_every in 0usize..6,
    ) {
        let cfg = CtrlConfig {
            program_retries: retries,
            infeasible_every,
            ..config(seed, jobs, failures, 120)
        };
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        prop_assert_eq!(a.state.journal().hash(), b.state.journal().hash());
        let replayed = match replay(a.state.journal()) {
            Ok(st) => st,
            Err(e) => return Err(TestCaseError::Fail(format!("replay diverged: {e}"))),
        };
        prop_assert_eq!(replayed.telemetry(), a.state.telemetry());
    }

    /// A rejected (infeasible) plan is a perfect no-op on the fabric:
    /// telemetry and utilization gauges stay bit-identical, the journal
    /// grows by exactly its Reject + Rollback pair, the rejection is
    /// journaled deterministically (identical fingerprints across two
    /// identical histories), and the journal still replays cleanly.
    #[test]
    fn rejected_plans_leave_state_bit_identical(
        seed in 0u64..200,
        feasible in 1usize..6,
        dx in 1usize..4,
        dy in 0usize..4,
        dz in 0usize..4,
    ) {
        let build = |with_reject: bool| {
            let mut st = FabricState::new(1, 2, seed);
            for j in 0..feasible {
                let _ = st.admit(SimTime::ZERO, j as u32, Shape3::new(2, 2, 1));
            }
            if with_reject {
                let torus = st.rack().cluster.occupancy().shape();
                let shape = Shape3::new(
                    torus.dims[0] + dx,
                    torus.dims[1] + dy,
                    torus.dims[2] + dz,
                );
                let admission = st.admit_retryable(SimTime::ZERO, 99, shape, 0, false);
                return (st, Some(admission));
            }
            (st, None)
        };
        let (clean, _) = build(false);
        let (st, admission) = build(true);
        match admission {
            Some(Admission::Infeasible { error }) => {
                prop_assert_eq!(error.root_code(), "topo/out-of-bounds");
            }
            other => {
                return Err(TestCaseError::Fail(
                    format!("expected Infeasible, got {other:?}"),
                ))
            }
        }
        // The fabric is untouched by the rejection...
        prop_assert_eq!(st.telemetry(), clean.telemetry());
        prop_assert_eq!(st.utilization(), clean.utilization());
        prop_assert_eq!(st.live_jobs(), clean.live_jobs());
        // ...the journal grew by exactly the Reject + Rollback pair,
        // deterministically (same history → same fingerprint)...
        prop_assert_eq!(st.journal().len(), clean.journal().len() + 2);
        let (again, _) = build(true);
        prop_assert_eq!(st.journal().hash(), again.journal().hash());
        // ...and a journal carrying the rejection still replays exactly.
        let replayed = match replay(st.journal()) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::Fail(format!("replay diverged: {e}"))),
        };
        prop_assert_eq!(replayed.telemetry(), st.telemetry());
    }
}

/// The ISSUE's end-to-end acceptance scenario, pinned deterministically: a
/// single injected chip failure on a busy fabric is repaired optically with
/// a blast radius of exactly one server.
#[test]
fn acceptance_single_failure_blast_radius_one_server() {
    let out = run_scenario(&CtrlConfig::default());
    let repairs: Vec<_> = out
        .state
        .incidents()
        .iter()
        .filter_map(|i| i.repair)
        .collect();
    assert!(
        !repairs.is_empty(),
        "default scenario must repair a failure"
    );
    for rep in &repairs {
        assert_eq!(rep.blast_servers, 1, "paper claim: 1-server blast radius");
        assert!((rep.setup.as_micros_f64() - 3.7).abs() < 1e-9);
    }
    // And the journal round-trips even through the repair path.
    let replayed = match replay(out.state.journal()) {
        Ok(st) => st,
        Err(e) => panic!("replay diverged: {e}"),
    };
    assert_eq!(replayed.telemetry(), out.state.telemetry());
}
