//! The circuit-switched host stack (§5): how a host should drive its one
//! optical circuit when the 3.7 µs reconfiguration is the dominant cost.
//!
//! ```text
//! cargo run --example host_stack
//! ```

use server_photonics::desim::{SimDuration, SimRng, SimTime};
use server_photonics::hostnet::{simulate, CircuitPolicy, HostParams, Message, PeerId};

fn main() {
    let params = HostParams::default();
    println!(
        "host transmitter: {} circuit, {} re-point latency\n",
        params.rate, params.reconfig
    );

    // A scattered RPC-like workload: 2000 messages across 8 peers with
    // log-uniform sizes.
    let mut rng = SimRng::seed_from_u64(7);
    let mut workload: Vec<Message> = (0..2000)
        .map(|i| Message {
            dst: PeerId(rng.gen_range_u64(8) as u32),
            bytes: 10f64.powf(rng.gen_range_f64(2.0, 6.0)) as u64,
            enqueued: SimTime::ZERO + SimDuration::from_ns(200) * i as u64,
        })
        .collect();
    workload.sort_by_key(|m| m.enqueued);

    println!(
        "{:<22} {:>14} {:>11} {:>12} {:>12}",
        "policy", "mean latency", "reconfigs", "goodput", "makespan"
    );
    let policies: Vec<(&str, CircuitPolicy)> = vec![
        ("per-message", CircuitPolicy::PerMessage),
        ("hold-open", CircuitPolicy::HoldOpen),
        (
            "batch 64kB / 20us",
            CircuitPolicy::Batch {
                threshold_bytes: 64 * 1024,
                max_delay: SimDuration::from_us(20),
            },
        ),
        (
            "batch 1MB / 200us",
            CircuitPolicy::Batch {
                threshold_bytes: 1024 * 1024,
                max_delay: SimDuration::from_us(200),
            },
        ),
    ];
    for (label, policy) in policies {
        let r = simulate(policy, params, &workload);
        println!(
            "{:<22} {:>11.1} us {:>11} {:>7.1} Gbps {:>12}",
            label,
            r.latency.mean() * 1e6,
            r.reconfigs,
            r.goodput_gbps,
            r.makespan.to_string(),
        );
    }
    println!(
        "\nBatching trades queueing delay for reconfiguration amortization — \
         \nthe §5 trade-off between the 3.7 µs circuit setup and end-to-end \
         \nperformance, measured instead of asserted."
    );
}
