//! Quickstart: build a LIGHTPATH wafer, light up a circuit, and see the
//! three §3 capabilities — dedicated bandwidth, microsecond
//! reconfiguration, and a closing optical budget.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use server_photonics::lightpath::{CircuitRequest, TileCoord, Wafer, WaferConfig};

fn main() {
    // The commercial part: 32 tiles, 16 lasers × 224 Gb/s each.
    let mut wafer = Wafer::new(WaferConfig::lightpath_32());
    println!(
        "fabricated a {}x{} LIGHTPATH wafer ({} tiles, {} waveguides/bus)",
        wafer.config().rows,
        wafer.config().cols,
        wafer.config().tiles(),
        wafer.edge_capacity(),
    );

    // A full-bandwidth circuit between opposite corners of the wafer.
    let src = TileCoord::new(0, 0);
    let dst = TileCoord::new(3, 7);
    let report = wafer
        .establish(CircuitRequest::new(src, dst, 16))
        .expect("corner-to-corner circuit");
    let ckt = wafer.circuit(report.id).expect("just established");

    println!("\ncircuit {src} -> {dst}:");
    println!("  path          : {}", ckt.path);
    println!(
        "  bandwidth     : {} ({} wavelengths)",
        ckt.bandwidth,
        ckt.lambdas.len()
    );
    println!("  setup latency : {} (MZI reconfiguration)", report.setup);
    println!("  rx power      : {}", report.link.received);
    println!("  sensitivity   : {}", report.link.sensitivity);
    println!(
        "  margin        : {} (budget closes: {})",
        report.link.margin,
        report.link.closes()
    );
    println!("  BER           : {:.2e}", report.link.ber);

    // Dedicated waveguides: every bus along the path carries exactly this
    // circuit, so it is contention-free by construction.
    let max_load = ckt.path.edges().map(|e| wafer.edge_used(e)).max().unwrap();
    println!("  bus occupancy : {max_load} circuit(s) per bus on the path");

    // Redirect: tear down and point the same 16 wavelengths elsewhere.
    wafer.teardown(report.id).expect("teardown");
    let elsewhere = wafer
        .establish(CircuitRequest::new(src, TileCoord::new(0, 1), 16))
        .expect("redirected circuit");
    println!(
        "\nredirected all 16 wavelengths to a neighbour in {} — this is the \
         bandwidth-steering primitive behind the paper's section 4.1",
        elsewhere.setup
    );
}
