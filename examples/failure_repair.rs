//! Shrinking the blast radius (§4.2): reproduce the Fig 6a failure, show
//! that no electrical in-place repair exists, then splice the spare in
//! optically (Fig 7) and compare blast radii.
//!
//! ```text
//! cargo run --example failure_repair
//! ```

use server_photonics::resilience::{
    analyze, blast_radius, fig6a, optical_repair, PhotonicRack, RepairPolicy,
};
use server_photonics::topo::Cluster;

fn main() {
    let scenario = fig6a();
    println!(
        "rack packed with {} slices; chip {} of {} failed; {} free chips remain\n",
        scenario.occ.slices().count(),
        scenario.failed,
        scenario.victim,
        scenario.free.len()
    );

    // Electrical in-place repair: evaluate every free chip.
    let analysis = analyze(&scenario.occ, &scenario.victim, scenario.failed);
    println!("electrical in-place repair:");
    for a in analysis.attempts.iter().take(4) {
        println!(
            "  spare {}: {} foreign chips on the repair paths, {} self-shared links -> {}",
            a.free_chip,
            a.foreign_traversals.len(),
            a.self_congested_links,
            if a.clean { "CLEAN" } else { "congested" }
        );
    }
    println!(
        "  ... {} candidates total, {} congestion-free (the paper's claim: 0)\n",
        analysis.attempts.len(),
        analysis.clean_options
    );

    // Optical repair over the photonic rack (Fig 7).
    let mut rack = PhotonicRack::new(1);
    let spare = scenario.free[0];
    let report = optical_repair(&mut rack, &scenario.victim, scenario.failed, spare)
        .expect("optical repair");
    println!(
        "optical repair: spliced spare {} in with {} dedicated circuits, ready in {}",
        spare, report.circuits, report.setup
    );
    println!(
        "  reconnected ring neighbours: {:?}",
        report
            .neighbours
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
    );

    // Blast radius comparison.
    let cluster = Cluster::tpu_v4(2);
    let migration = blast_radius(
        RepairPolicy::RackMigration,
        &cluster,
        &scenario.victim,
        scenario.failed,
        0,
    );
    let optical = blast_radius(
        RepairPolicy::OpticalCircuits,
        &cluster,
        &scenario.victim,
        scenario.failed,
        analysis.clean_options,
    );
    println!("\nblast radius of this single chip failure:");
    println!(
        "  TPUv4 rack migration : {} chips across {} servers",
        migration.chips_disturbed, migration.servers_disturbed
    );
    println!(
        "  optical circuits     : {} chips across {} servers  ({}x smaller)",
        optical.chips_disturbed,
        optical.servers_disturbed,
        migration.chips_disturbed / optical.chips_disturbed
    );
}
