//! Dynamic circuits for MoE inference (§5): the gating function picks new
//! experts every batch, so circuits must chase it. Sweep the warm-circuit
//! budget and compare control planes for the resulting reconfiguration
//! storm.
//!
//! ```text
//! cargo run --example moe_inference
//! ```

use server_photonics::route::{
    central_setup, decentralized_setup, run_moe, ControlParams, MoeParams,
};

fn main() {
    // Mixtral-style gating: 16 experts, top-2, Zipf-skewed popularity.
    let base = MoeParams {
        experts: 16,
        top_k: 2,
        batches: 50_000,
        ..MoeParams::default()
    };
    println!(
        "MoE inference: {} experts, top-{}, {} batches",
        base.experts, base.top_k, base.batches
    );
    println!(
        "\n{:<16} {:>12} {:>12} {:>14} {:>10}",
        "live circuits", "changes", "hit rate", "reconfig time", "overhead"
    );
    for cache in [2, 4, 8, 16] {
        let r = run_moe(
            &MoeParams {
                max_live_circuits: cache,
                ..base
            },
            42,
        );
        println!(
            "{:<16} {:>12} {:>11.1}% {:>14} {:>9.2}%",
            cache,
            r.circuit_changes,
            r.hit_rate * 100.0,
            r.reconfig_time.to_string(),
            r.reconfig_fraction * 100.0
        );
    }
    println!(
        "\nKeeping circuits to popular experts warm amortizes the 3.7 µs MZI \
         \nreconfiguration; with all 16 experts warm the gating never stalls."
    );

    // Control-plane choice matters at scale (§5's decentralized argument).
    let params = ControlParams::default();
    println!(
        "\ncircuit-setup control plane (4x8 wafer grid):\n{:<10} {:>16} {:>18}",
        "requests", "central mean", "decentralized mean"
    );
    for n in [8usize, 64, 256] {
        let reqs: Vec<_> = (0..n)
            .map(|i| ((0u8, (i % 8) as u8), (3u8, ((i + 5) % 8) as u8)))
            .collect();
        let c = central_setup(4, 8, &reqs, &params);
        let d = decentralized_setup(4, 8, &reqs, 1_000, &params);
        println!(
            "{:<10} {:>16} {:>18}",
            n,
            c.mean_latency.to_string(),
            d.mean_latency.to_string()
        );
    }
    println!("\nA serialized controller scanning global waveguide state falls behind\nquickly; hop-local decisions keep setup latency flat.");
}
