//! Bandwidth redirection (§4.1): run the same gradient AllReduce on a
//! sub-rack slice under the electrical torus and under photonic
//! redirection, and watch the Table 1 / Fig 5c effect on a real model's
//! training step.
//!
//! ```text
//! cargo run --example bandwidth_redirection
//! ```

use server_photonics::collectives::{CostParams, Mode};
use server_photonics::desim::SimDuration;
use server_photonics::topo::{Coord3, Shape3, Slice};
use server_photonics::workloads::{by_name, CollectiveStrategy, TrainingJob};

fn main() {
    let rack = Shape3::rack_4x4x4();
    let params = CostParams::default();

    // The paper's Slice-1: a 4×2×1 inference-scale slice that can only run
    // its X ring congestion-free on the electrical torus.
    let slice = Slice::new(1, Coord3::new(0, 0, 0), Shape3::new(4, 2, 1));
    println!(
        "slice {} — electrical utilization {:.0}%, optical {:.0}%\n",
        slice,
        slice.utilization_electrical(rack) * 100.0,
        slice.utilization_optical() * 100.0
    );

    println!(
        "{:<14} {:>14} {:>14} {:>9} {:>10}",
        "model", "electrical", "optical", "speedup", "comm(opt)"
    );
    for name in ["resnet50", "gpt2-xl", "llama-70b"] {
        let model = by_name(name).expect("catalogue model");
        let job = TrainingJob {
            model,
            slice,
            compute: SimDuration::from_ms(25),
            iterations: 1,
            strategy: CollectiveStrategy::SingleRing,
        };
        let elec = job.timing(Mode::Electrical, rack, &params);
        let opt = job.timing(Mode::OpticalFullSteer, rack, &params);
        println!(
            "{:<14} {:>14} {:>14} {:>8.2}x {:>9.1}%",
            name,
            elec.comm_per_iter.to_string(),
            opt.comm_per_iter.to_string(),
            elec.comm_per_iter.as_secs_f64() / opt.comm_per_iter.as_secs_f64(),
            opt.comm_fraction * 100.0,
        );
    }

    println!(
        "\nThe ~3x communication speedup is Table 1's (N-N/p)(3β) vs (N-N/p)(β): \
         \nthe MZI switches steer all 16 wavelengths into the active ring, at the \
         \ncost of one 3.7 µs reconfiguration per collective."
    );
}
