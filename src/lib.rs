//! # server-photonics
//!
//! Facade crate for the `server-photonics` workspace: a simulation and
//! algorithms library reproducing *"A case for server-scale photonic
//! connectivity"* (HotNets '24). Re-exports every sub-crate under one roof so
//! examples and downstream users need a single dependency.
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the system
//! inventory and experiment index.

#![forbid(unsafe_code)]

pub use collectives;
pub use desim;
pub use detlint;
pub use fabricd;
pub use hostnet;
pub use lightpath;
pub use phy;
pub use pod;
pub use resilience;
pub use route;
pub use sweep;
pub use topo;
pub use workloads;
