//! `spsim` — drive the server-photonics simulator from the command line.
//!
//! ```text
//! spsim wafer [--rows 4] [--cols 8]
//! spsim collective [--slice 4x2x1] [--bytes 8e9] [--mode electrical|optical-split|optical-steer] [--algo ring|bucket|alltoall]
//! spsim repair [--spare 3,3,3] [--bytes 1e9]
//! spsim placement [--jobs 500] [--seed 7]
//! spsim hoststack [--messages 2000] [--bytes 4096] [--peers 8]
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use server_photonics::collectives::{
    all_to_all, bucket_reduce_scatter, execute, ring_reduce_scatter, snake_order, CostParams, Mode,
};
use server_photonics::desim::{SimDuration, SimRng, SimTime};
use server_photonics::fabricd::{self, CampaignOptions, CtrlConfig, CtrlSnapshot};
use server_photonics::hostnet::{self, CircuitPolicy, HostParams, Message, PeerId};
use server_photonics::lightpath::{CircuitRequest, FabricError, TileCoord, Wafer, WaferConfig};
use server_photonics::pod::{self, PodBenchReport, PodConfig, PodOptions, PodSnapshot};
use server_photonics::resilience::{
    analyze, fig6a, measure_interference, optical_repair, PhotonicRack,
};
use server_photonics::sweep::{
    outcome_to_json, route_bench, run_route_bench, run_sweep, BenchReport, GridSpec,
};
use server_photonics::topo::{Coord3, Shape3, Slice, Torus};
use server_photonics::workloads::{generate, simulate as simulate_placement, ArrivalParams};

/// Minimal `--key value` parser: everything after the subcommand.
struct Args(BTreeMap<String, String>);

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut map = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(k) = it.next() {
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{k}'"));
            };
            let Some(v) = it.next() else {
                return Err(format!("--{key} needs a value"));
            };
            map.insert(key.to_string(), v.clone());
        }
        Ok(Args(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.0.get(key).cloned().unwrap_or_else(|| default.into())
    }
}

fn parse_shape(s: &str) -> Result<Shape3, String> {
    let parts: Vec<&str> = s.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("shape '{s}' must look like 4x2x1"));
    }
    let dims: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse()).collect();
    let dims = dims.map_err(|_| format!("shape '{s}' has non-numeric extents"))?;
    match dims.as_slice() {
        [x, y, z] => Ok(Shape3::new(*x, *y, *z)),
        _ => Err(format!("shape '{s}' must look like 4x2x1")),
    }
}

fn parse_coord(s: &str) -> Result<Coord3, String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("coordinate '{s}' must look like 3,3,3"));
    }
    let v: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse()).collect();
    let v = v.map_err(|_| format!("coordinate '{s}' has non-numeric parts"))?;
    match v.as_slice() {
        [x, y, z] => Ok(Coord3::new(*x, *y, *z)),
        _ => Err(format!("coordinate '{s}' must look like 3,3,3")),
    }
}

fn cmd_wafer(args: &Args) -> Result<(), String> {
    let rows: u8 = args.get("rows", 4)?;
    let cols: u8 = args.get("cols", 8)?;
    let mut wafer = Wafer::new(WaferConfig {
        rows,
        cols,
        ..WaferConfig::default()
    });
    println!(
        "fabricated {rows}x{cols} wafer: {} tiles, {} waveguides/bus, 16λ × 224 Gb/s per tile",
        wafer.config().tiles(),
        wafer.edge_capacity()
    );
    // Light up a demo circuit between opposite corners.
    let src = TileCoord::new(0, 0);
    let dst = TileCoord::new(rows - 1, cols - 1);
    let rep = wafer
        .establish(CircuitRequest::new(src, dst, 16))
        .map_err(|e| e.to_string())?;
    let ckt = wafer
        .circuit(rep.id)
        .ok_or_else(|| "circuit vanished right after establish".to_string())?;
    println!("corner circuit {src}->{dst}: {}", ckt.path);
    println!(
        "  bandwidth {}  setup {}  margin {}  BER {:.1e}",
        ckt.bandwidth, rep.setup, rep.link.margin, rep.link.ber
    );
    let t = wafer.telemetry();
    println!(
        "telemetry: {} circuits, {:.1} Gb/s aggregate, tx lanes {:.1}%, mean bus occupancy {:.3}",
        t.circuits,
        t.aggregate_gbps,
        t.tx_lane_utilization * 100.0,
        t.mean_edge_occupancy
    );
    Ok(())
}

fn cmd_collective(args: &Args) -> Result<(), String> {
    let shape = parse_shape(&args.get_str("slice", "4x2x1"))?;
    let bytes: f64 = args.get("bytes", 8e9)?;
    let mode = match args.get_str("mode", "optical-steer").as_str() {
        "electrical" => Mode::Electrical,
        "optical-split" => Mode::OpticalStaticSplit,
        "optical-steer" => Mode::OpticalFullSteer,
        other => return Err(format!("unknown mode '{other}'")),
    };
    let algo = args.get_str("algo", "ring");
    let rack = Shape3::rack_4x4x4();
    let params = CostParams::default();
    let torus = Torus::new(rack);
    let slice = Slice::new(1, Coord3::new(0, 0, 0), shape);
    if !slice.fits(rack) {
        return Err(format!("slice {shape} does not fit the 4x4x4 rack"));
    }
    let schedule = match algo.as_str() {
        "ring" => ring_reduce_scatter(&snake_order(&slice), bytes, mode, rack, &torus, &params),
        "bucket" => {
            let dims = slice.active_dims();
            if dims.is_empty() {
                return Err("slice has no dimension with extent > 1".into());
            }
            bucket_reduce_scatter(&slice, &dims, bytes, mode, rack, &torus, &params)
        }
        "alltoall" => all_to_all(&snake_order(&slice), bytes, mode, rack, &torus, &params),
        other => return Err(format!("unknown algo '{other}'")),
    };
    let sym = schedule.symbolic_cost(&params);
    let report = execute(&schedule, &params);
    println!(
        "{algo} on slice {shape} ({} chips), N = {bytes:.3e} B, {mode:?}",
        slice.chips()
    );
    println!("  symbolic : {sym}");
    println!(
        "  measured : {}  ({} rounds, {} congested, max link load {})",
        report.total, report.rounds, report.congested_rounds, report.max_link_load
    );
    Ok(())
}

fn cmd_repair(args: &Args) -> Result<(), String> {
    let spare = parse_coord(&args.get_str("spare", "3,3,3"))?;
    let bytes: f64 = args.get("bytes", 1e9)?;
    let scenario = fig6a();
    println!(
        "Fig 6a scenario: {} failed in {}, {} spares free",
        scenario.failed,
        scenario.victim,
        scenario.free.len()
    );
    let a = analyze(&scenario.occ, &scenario.victim, scenario.failed);
    println!(
        "electrical in-place repair: {} / {} candidates congestion-free",
        a.clean_options,
        a.attempts.len()
    );
    let i = measure_interference(&scenario, spare, bytes, bytes);
    println!(
        "surviving-ring slowdown if forced electrically: {:.2}x (optical: {:.2}x)",
        i.electrical_slowdown, i.optical_slowdown
    );
    let mut rack = PhotonicRack::new(1);
    let r = optical_repair(&mut rack, &scenario.victim, scenario.failed, spare)
        .map_err(|e| e.to_string())?;
    println!(
        "optical repair: {} circuits to {} neighbours, ready in {}",
        r.circuits,
        r.neighbours.len(),
        r.setup
    );
    Ok(())
}

fn cmd_placement(args: &Args) -> Result<(), String> {
    let jobs: usize = args.get("jobs", 500)?;
    let seed: u64 = args.get("seed", 7)?;
    let stream = generate(jobs, &ArrivalParams::default(), seed);
    let r = simulate_placement(Shape3::rack_4x4x4(), &stream);
    println!("placement of {jobs} jobs (seed {seed}) over {}", r.horizon);
    println!("  accepted {} / rejected {}", r.accepted, r.rejected);
    println!(
        "  mean occupancy          : {:.0}%",
        r.mean_occupancy * 100.0
    );
    println!(
        "  electrical utilization  : {:.0}%",
        r.mean_electrical_utilization * 100.0
    );
    println!(
        "  optical utilization     : {:.0}%",
        r.mean_optical_utilization * 100.0
    );
    Ok(())
}

/// Render a [`FabricError`] chain for operators: one line per layer hop
/// with the registered reason code and the entities that hop touches, so
/// a nonzero exit carries a machine-greppable fault trace, not prose.
fn render_fault(e: &FabricError) -> String {
    let mut out = String::from("fault chain (outermost first):");
    let mut cur = Some(e);
    while let Some(err) = cur {
        let hop = FabricError {
            kind: err.kind.clone(),
            source: None,
        };
        out.push_str(&format!(
            "\n  [{:?}] {}: {}",
            hop.layer(),
            hop.code(),
            hop.kind
        ));
        let entities = hop.entities();
        if !entities.is_empty() {
            let list: Vec<String> = entities.iter().map(|en| en.to_string()).collect();
            out.push_str(&format!("\n        entities: {}", list.join(", ")));
        }
        cur = err.source.as_deref();
    }
    out.push_str(&format!("\n  root code: {}", e.root_code()));
    out
}

fn ctrl_config(args: &Args) -> Result<CtrlConfig, String> {
    Ok(CtrlConfig {
        racks: args.get("racks", 1)?,
        lanes: args.get("lanes", 2)?,
        jobs: args.get("jobs", 12)?,
        seed: args.get("seed", 7)?,
        failures: args.get("failures", 1)?,
        queue_timeout: SimDuration::from_secs(args.get("timeout-s", 1_800)?),
        program_retries: args.get("retries", 0)?,
        retry_backoff: SimDuration::from_us(args.get("backoff-us", 100_000)?),
        infeasible_every: args.get("infeasible-every", 0)?,
        ..CtrlConfig::default()
    })
}

/// `spsim ctrl --campaign`: the snapshotted campaign driver. Runs (or
/// `--restart-from` resumes) a campaign with periodic [`CtrlSnapshot`]s,
/// optionally compacting the journal to each snapshot watermark, then
/// proves delta replay from the last snapshot reproduces the live
/// fingerprint. `--crash-after N` kills the run after N events so the
/// written `--snapshot-out` artifact exercises a real restart.
fn cmd_ctrl_campaign(args: &Args) -> Result<(), String> {
    if let Some(path) = args.0.get("write-baseline") {
        let (cfg, every) = fabricd::bench_config();
        let report = fabricd::run_ctrl_bench(&cfg, every)?;
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "ctrl bench: {} admissions at {:.0}/s, delta replay {} of {} records in {:.3} ms",
            report.admissions,
            report.admissions_per_sec,
            report.replay_tail_records,
            report.replay_full_records,
            report.replay_tail_ms
        );
        println!("  baseline written to {path}");
        return Ok(());
    }

    let every_s: u64 = args.get("snapshot-every", 600)?;
    let crash_after: u64 = args.get("crash-after", 0)?;
    let opts = CampaignOptions {
        snapshot_every: (every_s > 0).then(|| SimDuration::from_secs(every_s)),
        compact: args.get_str("compact", "false") == "true",
        crash_after_events: (crash_after > 0).then_some(crash_after),
    };

    let out = if let Some(path) = args.0.get("restart-from") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let snap = CtrlSnapshot::parse(&text)?;
        println!(
            "restarting from snapshot at {} (journal seq {})",
            snap.fabric.at, snap.fabric.seq
        );
        fabricd::resume_campaign(&snap, &opts)?
    } else {
        fabricd::run_campaign(&ctrl_config(args)?, &opts)?
    };

    let journal = out.state.journal();
    println!(
        "campaign: {} events to {}, {} snapshot(s) every {every_s}s{}",
        out.events_executed,
        out.horizon,
        out.snapshots.len(),
        if out.crashed { " — CRASHED" } else { "" }
    );
    println!(
        "  journal: {} logical records ({} retained, base seq {}), hash {:#018x}",
        journal.len(),
        journal.records().len(),
        journal.base_seq(),
        journal.hash()
    );
    println!("  state fingerprint: {:#018x}", out.state.fingerprint());

    if let Some(path) = args.0.get("snapshot-out") {
        let snap = out
            .snapshots
            .last()
            .ok_or_else(|| "no snapshot captured; set --snapshot-every".to_string())?;
        std::fs::write(path, snap.to_text()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  snapshot (seq {}) written to {path}", snap.fabric.seq);
    }

    // Prove the restart path on every invocation: delta replay from the
    // last snapshot must land on the live fingerprint.
    if let Some(snap) = out.snapshots.last() {
        let tail = fabricd::replay_from(&snap.fabric, journal).map_err(|e| render_fault(&e))?;
        let identical = tail.fingerprint() == out.state.fingerprint();
        println!(
            "  delta replay from seq {}: {}",
            snap.fabric.seq,
            if identical {
                "IDENTICAL (bit-for-bit)"
            } else {
                "DIVERGED"
            }
        );
        if !identical {
            return Err("delta replay diverged from live state".into());
        }
    }
    print!("{}", out.metrics.summary());
    print!("{}", fabricd::RouteTelemetry::of(&out.state).summary());
    Ok(())
}

fn cmd_ctrl(args: &Args) -> Result<(), String> {
    if args.get_str("campaign", "false") == "true"
        || args.0.contains_key("restart-from")
        || args.0.contains_key("write-baseline")
    {
        return cmd_ctrl_campaign(args);
    }
    let cfg = ctrl_config(args)?;
    let out = fabricd::run_scenario(&cfg);
    let journal = out.state.journal();
    println!(
        "fabricd: {} jobs (seed {}) on {} rack(s), {} lanes/circuit, {} failure(s) injected",
        cfg.jobs, cfg.seed, cfg.racks, cfg.lanes, cfg.failures
    );
    println!(
        "journal: {} records, hash {:#018x}, horizon {}",
        journal.len(),
        journal.hash(),
        out.horizon
    );
    for inc in out.state.incidents() {
        match (&inc.repair, &inc.repair_error) {
            (Some(rep), _) => println!(
                "incident {}: chip {} failed (tenant {:?}, {} circuits spliced) — repaired \
                 optically with {} circuits in {}, blast radius {} server(s)",
                inc.incident,
                inc.chip,
                inc.victim,
                inc.spliced,
                rep.circuits,
                rep.setup,
                rep.blast_servers
            ),
            (None, Some(e)) => println!(
                "incident {}: chip {} failed — repair FAILED: {e}",
                inc.incident, inc.chip
            ),
            (None, None) => println!(
                "incident {}: chip {} failed — no repair attempted (no victim or no spare)",
                inc.incident, inc.chip
            ),
        }
    }
    print!("{}", out.metrics.summary());
    let route = fabricd::RouteTelemetry::of(&out.state);
    print!("{}", route.summary());
    if let Some(path) = args.0.get("report") {
        // Splice the route-telemetry object into the rejection report so
        // `--report` stays one JSON artifact: drop the closing brace,
        // append `"route"`, close again. Rejection keys are untouched
        // (CI greps the artifact for specific fault codes).
        let mut report = out.metrics.rejection_report_json();
        let trimmed = report.trim_end().to_string();
        if let Some(body) = trimmed.strip_suffix('}') {
            report = format!("{},\n  \"route\": {}\n}}\n", body.trim_end(), route.json(2));
        }
        std::fs::write(path, report).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("rejection report written to {path}");
    }
    // Replay the journal against a fresh rack and prove determinism. A
    // divergence exits nonzero with the structured fault chain rendered.
    let replayed = fabricd::replay(journal).map_err(|e| render_fault(&e))?;
    let identical = replayed.telemetry() == out.state.telemetry();
    println!(
        "replay: {} records -> telemetry {}",
        journal.len(),
        if identical {
            "IDENTICAL (bit-for-bit)"
        } else {
            "DIVERGED"
        }
    );
    if !identical {
        return Err("replay diverged from live telemetry".into());
    }
    if let Some(path) = args.0.get("dump-journal") {
        std::fs::write(path, journal.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("journal dumped to {path}");
    }
    Ok(())
}

fn cmd_hoststack(args: &Args) -> Result<(), String> {
    let messages: usize = args.get("messages", 2000)?;
    let bytes: u64 = args.get("bytes", 4096)?;
    let peers: u32 = args.get("peers", 8)?;
    let mut rng = SimRng::seed_from_u64(args.get("seed", 7)?);
    let mut workload: Vec<Message> = (0..messages)
        .map(|i| Message {
            dst: PeerId(rng.gen_range_u64(peers as u64) as u32),
            bytes,
            enqueued: SimTime::ZERO + SimDuration::from_ns(200) * i as u64,
        })
        .collect();
    workload.sort_by_key(|m| m.enqueued);
    println!("{messages} x {bytes} B to {peers} peers:");
    for (label, policy) in [
        ("per-message", CircuitPolicy::PerMessage),
        ("hold-open", CircuitPolicy::HoldOpen),
        (
            "batch-256k/50us",
            CircuitPolicy::Batch {
                threshold_bytes: 256 * 1024,
                max_delay: SimDuration::from_us(50),
            },
        ),
    ] {
        let r = hostnet::simulate(policy, HostParams::default(), &workload);
        println!(
            "  {label:<16} mean {:>9.1}us  p99 {:>9.1}us  reconfigs {:>6}  goodput {:>8.1} Gbps",
            r.latency.mean() * 1e6,
            r.p99_latency_s * 1e6,
            r.reconfigs,
            r.goodput_gbps
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let grid_name = args.get_str("grid", "smoke");
    let workers: usize = args.get("workers", 4)?;
    let seed: u64 = args.get("seed", 42)?;
    let grid = GridSpec::by_name(&grid_name, seed)
        .ok_or_else(|| format!("unknown grid '{grid_name}' (try smoke or full)"))?;
    println!(
        "sweep: grid '{grid_name}' ({} scenarios, base seed {seed}), {workers} worker(s)",
        grid.len()
    );

    // Sequential reference first, then the parallel run under test.
    let sequential = run_sweep(&grid, 1);
    let parallel = run_sweep(&grid, workers);
    println!(
        "  sequential: {:#018x} in {:.3}s ({:.0} events/s)",
        sequential.fingerprint,
        sequential.wall.as_secs_f64(),
        sequential.events_per_sec()
    );
    println!(
        "  parallel  : {:#018x} in {:.3}s ({:.0} events/s, {} workers)",
        parallel.fingerprint,
        parallel.wall.as_secs_f64(),
        parallel.events_per_sec(),
        parallel.workers
    );
    if parallel.fingerprint != sequential.fingerprint {
        return Err(format!(
            "DETERMINISM VIOLATION: {}-worker fingerprint {:#018x} != sequential {:#018x}",
            parallel.workers, parallel.fingerprint, sequential.fingerprint
        ));
    }
    println!("  fingerprints IDENTICAL (parallel == sequential, bit for bit)");
    let m = &parallel.merged;
    println!(
        "  merged: {} stitch samples (mean {:.3} dB), {} admission waits, \
         {} collectives (mean {:.1} us), {} churn probes (mean {:.2} hops)",
        m.stitch_loss_db.count(),
        m.stitch_loss_db.stats().mean(),
        m.admission_wait_s.count(),
        m.collective_us.count(),
        m.collective_us.mean(),
        m.churn_hops.count(),
        m.churn_hops.mean()
    );
    let seq_wall = sequential.wall.as_secs_f64();
    let bench = BenchReport::from_runs(&parallel, seq_wall);
    println!("  speedup vs 1 worker: {:.2}x", bench.speedup_vs_1);
    if let Some(path) = args.0.get("json") {
        let artifact = outcome_to_json(&parallel, seq_wall);
        std::fs::write(path, artifact).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  report written to {path}");
    }
    if let Some(path) = args.0.get("write-baseline") {
        std::fs::write(path, bench.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  baseline written to {path}");
    }
    Ok(())
}

/// `spsim pod` — the sharded 4096-chip pod simulation. Always runs the
/// 1-shard reference first, then the requested shard count, and exits
/// nonzero if their fingerprints or journals differ: the worker-count
/// invariance the pod crate promises is asserted on every invocation,
/// not just in tests.
fn cmd_pod(args: &Args) -> Result<(), String> {
    let policy_name = args.get_str("policy", "greedy");
    let policy = pod::PolicyKind::parse(&policy_name).ok_or_else(|| {
        format!("unknown placement policy '{policy_name}' (try greedy, frag, or stitch)")
    })?;
    let cfg = PodConfig {
        chips: args.get("chips", pod::POD_CHIPS)?,
        lanes: args.get("lanes", 2)?,
        seed: args.get("seed", 7)?,
        jobs: args.get("jobs", 256)?,
        failures: args.get("failures", 8)?,
        epoch: SimDuration::from_secs(args.get("epoch-s", 600)?),
        max_epochs: args.get("epochs", 0)?,
        queue_timeout: SimDuration::from_secs(args.get("timeout-s", 1_800)?),
        policy,
        ..PodConfig::default()
    };
    let shards: usize = args.get("shards", 4)?;
    let crash_after: u64 = args.get("crash-after", 0)?;
    let opts = PodOptions {
        snapshot_every: args.get("snapshot-every", 0)?,
        compact: args.get_str("compact", "false") == "true",
        crash_after_epochs: (crash_after > 0).then_some(crash_after),
    };

    // `--restart-from` resumes a crashed campaign from its snapshot
    // artifact; there is no 1-shard reference to compare against (the
    // resume IS the other half of the equivalence, asserted in tests and
    // by the `ctrl-restart-smoke` CI job against the uninterrupted run).
    if let Some(path) = args.0.get("restart-from") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let snap = PodSnapshot::parse(&text)?;
        println!(
            "restarting pod from snapshot at epoch {} (journal seq {})",
            snap.epoch, snap.journal_next_seq
        );
        let run = pod::resume_pod(
            &snap,
            shards,
            &PodOptions {
                crash_after_epochs: None,
                ..opts
            },
        )?;
        println!(
            "  resumed to epoch {} ({} events): fingerprint {:#018x}, journal {:#018x} \
             ({} logical records)",
            run.epochs,
            run.events,
            run.fingerprint,
            run.journal.hash(),
            run.journal.len()
        );
        print!("{}", run.metrics.summary());
        print!("{}", run.route.summary());
        if let Some(out) = args.0.get("json") {
            let bench = PodBenchReport::from_outcome(&run, snap.config.jobs);
            std::fs::write(out, bench.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("  report written to {out}");
        }
        return Ok(());
    }

    let reference = pod::run_pod_with(&cfg, 1, &opts)?;
    let run = pod::run_pod_with(&cfg, shards, &opts)?;
    println!(
        "pod: {} chips in {} rack-group domain(s), {} jobs, {} failure(s), seed {}, policy {}",
        cfg.chips,
        run.groups,
        cfg.jobs,
        cfg.failures,
        cfg.seed,
        run.policy.name()
    );
    println!(
        "  1 shard  : {:#018x} in {:.3}s ({:.0} events/s)",
        reference.fingerprint, reference.wall_s, reference.events_per_sec
    );
    println!(
        "  {} shards : {:#018x} in {:.3}s ({:.0} events/s)",
        run.shards, run.fingerprint, run.wall_s, run.events_per_sec
    );
    if run.fingerprint != reference.fingerprint || run.journal.hash() != reference.journal.hash() {
        return Err(format!(
            "DETERMINISM VIOLATION: {}-shard run (fingerprint {:#018x}, journal {:#018x}) \
             != 1-shard reference (fingerprint {:#018x}, journal {:#018x})",
            run.shards,
            run.fingerprint,
            run.journal.hash(),
            reference.fingerprint,
            reference.journal.hash()
        ));
    }
    println!("  fingerprints IDENTICAL (sharded == sequential, bit for bit)");
    if run.snapshots != reference.snapshots {
        return Err(format!(
            "DETERMINISM VIOLATION: {}-shard snapshot stream != 1-shard reference",
            run.shards
        ));
    }
    if opts.snapshot_every > 0 {
        println!(
            "  snapshots: {} captured every {} epoch(s){}{}",
            run.snapshots.len(),
            opts.snapshot_every,
            if opts.compact {
                ", journal compacted to each watermark"
            } else {
                ""
            },
            if run.crashed { " — CRASHED" } else { "" }
        );
    }
    if let Some(path) = args.0.get("snapshot-out") {
        let snap = run
            .snapshots
            .last()
            .ok_or_else(|| "no snapshot captured; set --snapshot-every".to_string())?;
        std::fs::write(path, snap.to_text()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  snapshot (epoch {}) written to {path}", snap.epoch);
    }
    println!(
        "  journal: {} records, hash {:#018x}, {} epochs to {}, {} delegations",
        run.journal.len(),
        run.journal.hash(),
        run.epochs,
        run.horizon,
        run.delegations
    );
    println!(
        "  placement: mean occupancy {:.1}%, mean fragmentation {:.3}, \
         {} stitched job(s) ({} legs, {} rollbacks)",
        run.occ_mean * 100.0,
        run.frag_mean,
        run.metrics.counter("jobs.stitched"),
        run.metrics.counter("stitch.legs"),
        run.metrics.counter("stitch.rollbacks")
    );
    print!("{}", run.metrics.summary());
    print!("{}", run.route.summary());
    let bench = PodBenchReport::from_outcome(&run, cfg.jobs);
    if let Some(path) = args.0.get("json") {
        std::fs::write(path, bench.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  report written to {path}");
    }
    if let Some(path) = args.0.get("write-baseline") {
        std::fs::write(path, bench.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  baseline written to {path}");
    }
    if let Some(path) = args.0.get("dump-journal") {
        std::fs::write(path, run.journal.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  journal dumped to {path}");
    }
    Ok(())
}

/// `spsim routebench` — the routing micro-benchmark. `--stamped` gates the
/// fresh run against the committed `BENCH_route.json` (exact fingerprints,
/// rate floors, and the release-build requirement that warm plan-library
/// stamping beats scratch programming by ≥10×), exiting nonzero on any
/// violated gate — the CI `plan-smoke` entry point.
fn cmd_routebench(args: &Args) -> Result<(), String> {
    let searches: u64 = args.get("searches", route_bench::DEFAULT_SEARCHES)?;
    let batches: u64 = args.get("batches", route_bench::DEFAULT_BATCHES)?;
    let report = run_route_bench(searches, batches);
    println!(
        "routebench: {} searches + {} ring batches (scratch, then stamped) on a loaded 4x8 wafer",
        report.searches, report.batches
    );
    println!("  fingerprint : {}", report.fingerprint);
    println!(
        "  paths/sec   : {:.0}   batches/sec: {:.0}   ({:.3}s wall)",
        report.paths_per_sec, report.batches_per_sec, report.wall_s
    );
    println!(
        "  stamped     : {:.0} plans/sec ({:.1}x scratch), fingerprint {}",
        report.stamped_plans_per_sec,
        if report.batches_per_sec > 0.0 {
            report.stamped_plans_per_sec / report.batches_per_sec
        } else {
            0.0
        },
        report.stamped_fingerprint
    );
    if args.get_str("stamped", "false") == "true" {
        let path = args.get_str("baseline", "BENCH_route.json");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = route_bench::RouteBenchReport::parse(&text)?;
        let failures = route_bench::compare_route_baseline(&report, &baseline);
        for f in &failures {
            eprintln!("  GATE {f}");
        }
        if !failures.is_empty() {
            return Err(format!(
                "routebench: {} baseline gate(s) violated against {path}",
                failures.len()
            ));
        }
        println!("  baseline {path} holds (fingerprints exact, rates above floor)");
    }
    if let Some(path) = args.0.get("write-baseline") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  baseline written to {path}");
    }
    Ok(())
}

/// `spsim detlint` — run the workspace determinism/panic-freedom analyzer
/// from the main binary (same engine as `cargo xtask detlint`). `--paths`
/// takes comma-separated substring filters; `--check-file` lints a single
/// file as production code; `--json true` prints the machine-readable
/// report instead of text.
fn cmd_detlint(args: &Args) -> Result<(), String> {
    let root = std::path::PathBuf::from(args.get_str("root", "."));
    let json = args.get_str("json", "false") == "true";
    let cfg = detlint::load_config(&root)?;
    if let Some(file) = args.0.get("check-file") {
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let findings = detlint::lint_source("adhoc", file, &text, &cfg, false);
        for f in &findings {
            println!("{f}");
        }
        let active = findings
            .iter()
            .filter(|f| f.status == detlint::Status::Active)
            .count();
        if active > 0 {
            return Err(format!("detlint: {active} active finding(s) in {file}"));
        }
        return Ok(());
    }
    let filters: Vec<String> = args
        .0
        .get("paths")
        .map(|p| p.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let report = detlint::lint_workspace(&root, &cfg, &filters);
    if json {
        print!("{}", report.to_json());
    } else {
        println!(
            "detlint: {} crates, {} files, {} finding(s)",
            report.crates,
            report.files,
            report.findings.len()
        );
        for f in &report.findings {
            println!("  {f}");
        }
        for b in &report.baselines {
            println!(
                "  baseline {}: {} {} site(s), ceiling {}",
                b.krate,
                b.count,
                b.rule.code(),
                b.ceiling
            );
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        if !json {
            for f in &report.failures {
                eprintln!("  FAIL {f}");
            }
        }
        Err(format!("detlint: {} failure(s)", report.failures.len()))
    }
}

const USAGE: &str = "spsim — server-scale photonics simulator

USAGE:
  spsim wafer      [--rows 4] [--cols 8]
  spsim collective [--slice 4x2x1] [--bytes 8e9] [--mode electrical|optical-split|optical-steer] [--algo ring|bucket|alltoall]
  spsim repair     [--spare 3,3,3] [--bytes 1e9]
  spsim placement  [--jobs 500] [--seed 7]
  spsim hoststack  [--messages 2000] [--bytes 4096] [--peers 8] [--seed 7]
  spsim ctrl       [--jobs 12] [--seed 7] [--racks 1] [--lanes 2] [--failures 1] [--timeout-s 1800]
                   [--retries 0] [--backoff-us 100000] [--infeasible-every 0] [--report rejections.json]
                   [--dump-journal out.json]
  spsim ctrl --campaign
                   [--snapshot-every 600] [--compact] [--crash-after N] [--snapshot-out snap.txt]
                   [--restart-from snap.txt] [--write-baseline BENCH_ctrl.json]
  spsim sweep      [--grid smoke|full|churn|placement] [--workers 4] [--seed 42] [--json out.json] [--write-baseline BENCH_sweep.json]
                   (--smoke expands to --grid smoke --workers 2;
                    --grid placement compares greedy|frag|stitch per arrival trace)
  spsim pod        [--chips 4096] [--shards 4] [--seed 7] [--jobs 256] [--failures 8] [--epochs 0]
                   [--policy greedy|frag|stitch] [--epoch-s 600] [--lanes 2] [--timeout-s 1800] [--json out.json]
                   [--snapshot-every E] [--compact] [--crash-after N] [--snapshot-out snap.txt]
                   [--restart-from snap.txt]
                   [--write-baseline BENCH_pod.json] [--dump-journal out.json]
                   (--smoke expands to --chips 4096 --epochs 2 --shards 4)
  spsim routebench [--searches 200000] [--batches 2000] [--write-baseline BENCH_route.json]
                   [--stamped [--baseline BENCH_route.json]]
                   (--stamped gates the run against the committed baseline, incl. the
                    >=10x stamped-vs-scratch speedup in release builds)
  spsim detlint    [--paths crates/route,rwa.rs] [--check-file some.rs] [--json true] [--root .]
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    };
    // `sweep --smoke` is CI sugar for the small-grid 2-worker run, and
    // `--campaign`/`--compact` are bare switches; expand both before the
    // generic --key value parser sees them.
    let raw = argv.get(1..).unwrap_or_default();
    let mut rest: Vec<String> = Vec::with_capacity(raw.len() + 4);
    let mut it = raw.iter().peekable();
    while let Some(a) = it.next() {
        if cmd == "sweep" && a == "--smoke" {
            rest.extend(
                ["--grid", "smoke", "--workers", "2"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        } else if cmd == "pod" && a == "--smoke" {
            // The CI gate: the full 4096-chip pod, two epoch windows,
            // shards=1 vs shards=4 fingerprint equality.
            rest.extend(
                ["--chips", "4096", "--epochs", "2", "--shards", "4"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        } else if (cmd == "ctrl" || cmd == "pod" || cmd == "routebench")
            && (a == "--campaign" || a == "--compact" || a == "--stamped")
            && it.peek().is_none_or(|n| n.starts_with("--"))
        {
            rest.push(a.clone());
            rest.push("true".to_string());
        } else {
            rest.push(a.clone());
        }
    }
    let result = Args::parse(&rest).and_then(|args| match cmd.as_str() {
        "wafer" => cmd_wafer(&args),
        "collective" => cmd_collective(&args),
        "repair" => cmd_repair(&args),
        "placement" => cmd_placement(&args),
        "hoststack" => cmd_hoststack(&args),
        "ctrl" => cmd_ctrl(&args),
        "sweep" => cmd_sweep(&args),
        "pod" => cmd_pod(&args),
        "routebench" => cmd_routebench(&args),
        "detlint" => cmd_detlint(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_key_values() {
        let raw: Vec<String> = ["--rows", "4", "--cols", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse(&raw).unwrap();
        assert_eq!(a.get::<u8>("rows", 0).unwrap(), 4);
        assert_eq!(a.get::<u8>("cols", 0).unwrap(), 8);
        assert_eq!(a.get::<u8>("missing", 7).unwrap(), 7);
        assert_eq!(a.get_str("mode", "ring"), "ring");
    }

    #[test]
    fn args_reject_malformed() {
        let raw: Vec<String> = ["rows", "4"].iter().map(|s| s.to_string()).collect();
        assert!(Args::parse(&raw).is_err());
        let raw: Vec<String> = ["--rows"].iter().map(|s| s.to_string()).collect();
        assert!(Args::parse(&raw).is_err());
        let raw: Vec<String> = ["--rows", "x"].iter().map(|s| s.to_string()).collect();
        let a = Args::parse(&raw).unwrap();
        assert!(a.get::<u8>("rows", 0).is_err());
    }

    #[test]
    fn render_fault_shows_codes_and_entities() {
        use server_photonics::lightpath::{CircuitFault, CtrlFault};
        let root = FabricError::new(CircuitFault::InsufficientTxLanes {
            tile: TileCoord::new(1, 2),
            requested: 8,
            free: 3,
        });
        let top = FabricError::caused_by(CtrlFault::ProgramBatch { wafer: 0 }, root);
        let text = render_fault(&top);
        assert!(text.contains("ctrl/program-batch"));
        assert!(text.contains("circuit/insufficient-tx-lanes"));
        assert!(text.contains("tile (1,2)") || text.contains("tile "));
        assert!(text.ends_with("root code: circuit/insufficient-tx-lanes"));
    }

    #[test]
    fn shapes_and_coords_parse() {
        assert_eq!(parse_shape("4x2x1").unwrap(), Shape3::new(4, 2, 1));
        assert!(parse_shape("4x2").is_err());
        assert!(parse_shape("axbxc").is_err());
        assert_eq!(parse_coord("3,3,3").unwrap(), Coord3::new(3, 3, 3));
        assert!(parse_coord("3,3").is_err());
    }
}
